//! What "no cache coherence" actually means — and how Hare's protocol
//! hides it.
//!
//! This example pokes at the simulated hardware directly (the `nccmem`
//! substrate) and then shows the same scenario through Hare's POSIX API,
//! where the close-to-open protocol makes it invisible.
//!
//! ```sh
//! cargo run --example stale_cache
//! ```

use fsapi::{Mode, OpenFlags, ProcFs, ProcHandle, System};
use hare::{HareConfig, HareSystem};
use nccmem::{BlockId, Dram, PrivateCache};

fn main() {
    // ---- Layer 1: the raw hardware -------------------------------------
    println!("== raw non-coherent hardware ==");
    let dram = Dram::new(4);
    let mut cache_a = PrivateCache::new(8); // core A's private cache
    let mut cache_b = PrivateCache::new(8); // core B's private cache
    let blk = BlockId(0);

    // Both cores read the block: each now holds a private copy.
    let mut buf = [0u8; 5];
    cache_a.read(&dram, blk, 0, &mut buf);
    cache_b.read(&dram, blk, 0, &mut buf);

    // Core A writes. The write sits dirty in A's private cache.
    cache_a.write(&dram, blk, 0, b"fresh");

    // Core B still reads stale zeros: no hardware coherence.
    cache_b.read(&dram, blk, 0, &mut buf);
    println!("core B sees {buf:?} after core A wrote b\"fresh\" (stale!)");

    // The software protocol: A writes back, B invalidates.
    cache_a.writeback(&dram, blk);
    cache_b.invalidate(blk);
    cache_b.read(&dram, blk, 0, &mut buf);
    println!(
        "after write-back + invalidate, core B sees {:?}",
        std::str::from_utf8(&buf).unwrap()
    );

    // ---- Layer 2: the same hardware behind Hare's POSIX API -------------
    println!("\n== through Hare's close-to-open protocol ==");
    let sys = HareSystem::start(HareConfig::timeshare(2));
    let writer = sys.start_proc();

    fsapi::write_file(&writer, "/shared.dat", b"version-1").unwrap();

    // A reader process on the other core caches the file...
    let join = writer
        .spawn(Box::new(|reader: &hare::HareProc| {
            let v1 = fsapi::read_to_vec(reader, "/shared.dat").unwrap();
            println!(
                "reader (core {}): {:?}",
                reader.core(),
                String::from_utf8_lossy(&v1)
            );
            0
        }))
        .unwrap();
    join.wait();

    // ...the writer rewrites it (write + close = write-back)...
    let fd = writer
        .open(
            "/shared.dat",
            OpenFlags::WRONLY | OpenFlags::TRUNC,
            Mode::default(),
        )
        .unwrap();
    writer.write(fd, b"version-2").unwrap();
    writer.close(fd).unwrap();

    // ...and a fresh open on the other core (open = invalidate) is
    // guaranteed to see the last close's data. No stale reads, ever —
    // the client library ran the invalidate/write-back protocol for us.
    let join = writer
        .spawn(Box::new(|reader: &hare::HareProc| {
            let v2 = fsapi::read_to_vec(reader, "/shared.dat").unwrap();
            assert_eq!(v2, b"version-2");
            println!(
                "reader (core {}): {:?}",
                reader.core(),
                String::from_utf8_lossy(&v2)
            );
            0
        }))
        .unwrap();
    join.wait();

    drop(writer);
    sys.shutdown();
    println!("close-to-open consistency held.");
}
