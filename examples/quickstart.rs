//! Quickstart: boot a Hare machine, run POSIX file operations from
//! processes on different cores, and observe close-to-open consistency and
//! orphan-file semantics at work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs, ProcHandle, System};
use hare::{HareConfig, HareSystem};

fn main() {
    // A 4-core machine in the paper's timeshare configuration: a file
    // server and a scheduling server on every core, applications anywhere.
    let sys = HareSystem::start(HareConfig::timeshare(4));
    let shell = sys.start_proc();

    // Create a distributed directory: its entries are hashed across all
    // four file servers, so concurrent creates in it do not serialize.
    shell
        .mkdir_opts("/project", Mode::default(), MkdirOpts::DISTRIBUTED)
        .expect("mkdir");

    // Write a file; close() writes dirty private-cache blocks back to the
    // shared DRAM (close-to-open consistency, paper §3.2).
    fsapi::write_file(&shell, "/project/notes.txt", b"hello from core 0\n").expect("write");

    // Run a child process on another core (remote execution, paper §3.5).
    // It opens the file; open() invalidates its core's private cache for
    // the file's blocks, so it observes the writer's data.
    let join = shell
        .spawn(Box::new(|child: &hare::HareProc| {
            let data = fsapi::read_to_vec(child, "/project/notes.txt").expect("read");
            println!(
                "child on core {} read {:?}",
                child.core(),
                String::from_utf8_lossy(&data).trim()
            );
            // Append a line and hand the file back.
            let fd = child
                .open(
                    "/project/notes.txt",
                    OpenFlags::WRONLY | OpenFlags::APPEND,
                    Mode::default(),
                )
                .expect("open");
            child
                .write(fd, format!("hello from core {}\n", child.core()).as_bytes())
                .expect("append");
            child.close(fd).expect("close");
            0
        }))
        .expect("spawn");
    assert_eq!(join.wait(), 0);

    let both = fsapi::read_to_vec(&shell, "/project/notes.txt").expect("reread");
    println!("final contents:\n{}", String::from_utf8_lossy(&both));

    // Orphan semantics: data stays readable through an open descriptor
    // after the file is unlinked (paper §3.4).
    let fd = shell
        .open("/project/notes.txt", OpenFlags::RDONLY, Mode::default())
        .expect("open");
    shell.unlink("/project/notes.txt").expect("unlink");
    assert_eq!(shell.stat("/project/notes.txt").unwrap_err(), Errno::ENOENT);
    let mut buf = [0u8; 8];
    let n = shell.read(fd, &mut buf).expect("read unlinked");
    println!("read {n} bytes from the unlinked file through the open fd");
    shell.close(fd).expect("close");

    println!(
        "virtual time consumed: {:.1} microseconds",
        vtime::cycles_to_ns(sys.elapsed_cycles()) as f64 / 1000.0
    );
    drop(shell);
    sys.shutdown();
}
