//! A multi-core mail server on Hare (the sv6 mailbench scenario the paper
//! benchmarks, §5.2).
//!
//! Delivery agents on different cores write messages into a *shared,
//! distributed* spool directory and rename them atomically into per-user
//! maildir mailboxes — the create/fsync/rename/unlink mix that stresses
//! Hare's sharded directories and invalidation protocol. A pickup process
//! concurrently polls mailboxes and consumes messages.
//!
//! ```sh
//! cargo run --example mail_server
//! ```

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs, ProcHandle, System};
use hare::{HareConfig, HareSystem};

const AGENTS: usize = 4;
const MSGS_PER_AGENT: usize = 10;
const USERS: usize = 3;

fn main() {
    let sys = HareSystem::start(HareConfig::timeshare(8));
    let main_proc = sys.start_proc();

    // Maildir layout: a shared spool plus one mailbox per user, all
    // distributed so concurrent deliveries do not serialize.
    fsapi::mkdir_p(&main_proc, "/mail/tmp", MkdirOpts::DISTRIBUTED).unwrap();
    for u in 0..USERS {
        fsapi::mkdir_p(
            &main_proc,
            &format!("/mail/user{u}/new"),
            MkdirOpts::DISTRIBUTED,
        )
        .unwrap();
    }

    // Delivery agents.
    let mut joins = Vec::new();
    for a in 0..AGENTS {
        joins.push(
            main_proc
                .spawn(Box::new(move |agent: &hare::HareProc| {
                    for m in 0..MSGS_PER_AGENT {
                        let user = (a + m) % USERS;
                        let tmp = format!("/mail/tmp/a{a}m{m}");
                        let body = format!(
                            "From: agent{a}@core{}\nTo: user{user}\n\nmessage {m}\n",
                            agent.core()
                        );
                        // Deliver the maildir way: write + fsync + rename.
                        let fd = agent
                            .open(
                                &tmp,
                                OpenFlags::CREAT | OpenFlags::WRONLY | OpenFlags::EXCL,
                                Mode::default(),
                            )
                            .unwrap();
                        agent.write(fd, body.as_bytes()).unwrap();
                        agent.fsync(fd).unwrap();
                        agent.close(fd).unwrap();
                        agent
                            .rename(&tmp, &format!("/mail/user{user}/new/a{a}m{m}"))
                            .unwrap();
                    }
                    0
                }))
                .unwrap(),
        );
    }

    // A pickup daemon drains mailboxes while deliveries are in flight.
    let pickup = main_proc
        .spawn(Box::new(|d: &hare::HareProc| {
            let expect = AGENTS * MSGS_PER_AGENT;
            let mut picked = 0;
            while picked < expect {
                for u in 0..USERS {
                    let inbox = format!("/mail/user{u}/new");
                    for e in d.readdir(&inbox).unwrap() {
                        let path = format!("{inbox}/{}", e.name);
                        match fsapi::read_to_vec(d, &path) {
                            Ok(msg) => {
                                assert!(msg.starts_with(b"From: agent"));
                                match d.unlink(&path) {
                                    Ok(()) | Err(Errno::ENOENT) => picked += 1,
                                    Err(e) => panic!("unlink: {e}"),
                                }
                            }
                            // Lost a race with... nobody here, but a real
                            // pickup tolerates concurrent consumers.
                            Err(Errno::ENOENT) => {}
                            Err(e) => panic!("read: {e}"),
                        }
                    }
                }
                std::thread::yield_now();
            }
            picked as i32
        }))
        .unwrap();

    for j in joins {
        assert_eq!(j.wait(), 0);
    }
    let picked = pickup.wait();
    println!(
        "delivered {} messages from {AGENTS} agents, picked up {picked}",
        AGENTS * MSGS_PER_AGENT
    );
    for u in 0..USERS {
        let left = main_proc.readdir(&format!("/mail/user{u}/new")).unwrap();
        assert!(left.is_empty(), "mailbox {u} drained");
    }
    println!(
        "virtual time: {:.2} ms",
        vtime::cycles_to_ns(sys.elapsed_cycles()) as f64 / 1e6
    );
    drop(main_proc);
    sys.shutdown();
}
