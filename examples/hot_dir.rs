//! A skewed mail-spool workload that triggers the dynamic placement
//! subsystem: every delivery agent hammers one *centralized* spool
//! directory, pinning a single file server while the rest of the machine
//! idles. One load-aware rebalance pass migrates the spool's dentry shard
//! to the least-loaded server — live, with no locks the agents can see —
//! and the next delivery round runs entirely against the new owner; the
//! few residual operations at the old home are the one-`NotOwner`-bounce
//! each stale agent pays to learn the new route.
//!
//! ```sh
//! cargo run --example hot_dir
//! ```

use fsapi::{MkdirOpts, Mode, OpenFlags, ProcFs};
use hare::core::placement::RebalancePolicy;
use hare::{HareConfig, HareInstance};
use std::sync::Arc;

const AGENTS: usize = 6;
const MSGS_PER_AGENT: usize = 40;

/// Per-server operation counts since `base`, rendered as a bar chart.
fn print_loads(inst: &HareInstance, base: &[u64], label: &str) {
    println!("\nper-server load ({label}):");
    let now = inst.machine().server_ops();
    for (s, (a, b)) in now.iter().zip(base).enumerate() {
        let n = a - b;
        println!(
            "  server {s}: {:5} ops  {}",
            n,
            "#".repeat((n / 20) as usize)
        );
    }
}

/// One delivery round: every agent writes, stats, and removes its
/// messages in the shared spool.
fn deliver(inst: &Arc<HareInstance>, round: usize) {
    let cores = inst.config().app_cores.clone();
    let mut joins = Vec::new();
    for a in 0..AGENTS {
        let inst = Arc::clone(inst);
        let core = cores[a % cores.len()];
        joins.push(std::thread::spawn(move || {
            let agent = inst.new_client(core).unwrap();
            for m in 0..MSGS_PER_AGENT {
                let msg = format!("/spool/r{round}a{a}m{m}");
                let fd = agent
                    .open(&msg, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())
                    .unwrap();
                agent.write(fd, b"Subject: load\n\nhello\n").unwrap();
                agent.close(fd).unwrap();
                agent.stat(&msg).unwrap();
                agent.unlink(&msg).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

fn main() {
    // The paper's split configuration: 4 dedicated servers, 4 app cores.
    let inst = HareInstance::start(HareConfig::split(8, 4));
    let admin = inst.new_client(inst.config().app_cores[0]).unwrap();

    // A centralized spool: every entry lives at the directory's home
    // server — the skew the rebalancer exists for. (A distributed spool
    // would hash its entries across all servers up front.)
    admin
        .mkdir_opts("/spool", Mode::default(), MkdirOpts::default())
        .unwrap();
    let home = admin.dir_owner("/spool").unwrap();
    println!("spool is centralized at server {home}");

    let base = inst.machine().server_ops();
    deliver(&inst, 0);
    print_loads(&inst, &base, "skewed: one hot directory");

    // One load-aware pass: read every server's counters, migrate the hot
    // directory's shard to the least-loaded server.
    match admin.rebalance_once(&RebalancePolicy::default()).unwrap() {
        Some(plan) => println!(
            "\nrebalanced: migrated /spool from server {} to server {}",
            plan.from, plan.to
        ),
        None => println!("\nrebalancer found nothing to move"),
    }
    let owner = admin.dir_owner("/spool").unwrap();
    println!("spool now lives at server {owner}");
    assert_ne!(owner, home, "the hot spool must have moved");

    let base = inst.machine().server_ops();
    deliver(&inst, 1);
    print_loads(&inst, &base, "after rebalance");

    drop(admin);
    inst.shutdown();
}
