//! Causal op tracing in one sitting: boot a traced machine, run a cold
//! deep-path `stat` and an `ls -l`, and print each operation's span tree
//! — which server did what, on whose behalf, and where the messages went.
//! The same dump is written as Chrome trace-event JSON, loadable in
//! Perfetto or `chrome://tracing`. See `docs/tracing.md`.
//!
//! ```sh
//! cargo run --example explain_op
//! ```

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare::{HareConfig, HareInstance};

fn main() {
    // A split machine: 4 file servers, applications on the other 4 cores.
    // `trace_ops` is the only knob — everything else is the stock system
    // (a traced run is byte-for-byte the untraced one, message-wise).
    let mut cfg = HareConfig::split(8, 4);
    cfg.trace_ops = true;
    let app = cfg.app_cores.clone();
    let inst = HareInstance::start(cfg);

    // A deep distributed chain, so the cold stat has a story to tell:
    // chained resolution hops between dentry servers, and the fused
    // terminal executes the stat at the last hop.
    let setup = inst.new_client(app[0]).unwrap();
    let mut path = String::from("/project");
    setup
        .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for part in ["src", "fs", "server"] {
        path = format!("{path}/{part}");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
    }
    for f in ["mod.rs", "rmdir.rs", "tests.rs"] {
        fsapi::write_file(&setup, &format!("{path}/{f}"), b"fn main() {}").unwrap();
    }
    setup.shutdown();

    // Only the ops below should appear in the dump, not the setup.
    inst.machine().otrace.reset();

    let c = inst.new_client(app[1]).unwrap();
    let file = format!("{path}/mod.rs");
    c.stat(&file).unwrap();
    let listed = c.readdir_plus(&path).unwrap();
    assert_eq!(listed.len(), 3);
    c.shutdown();
    inst.shutdown(); // joins the servers: every span is closed and charged

    let tracer = &inst.machine().otrace;
    println!("span tree of every traced op (sends = messages it caused):\n");
    for tree in tracer.op_trees() {
        print!("{}", tree.render());
        println!();
    }
    if let Some(worst) = tracer.explain_worst() {
        println!("costliest op:\n{worst}");
    }

    let out = std::env::temp_dir().join("hare_explain_op.json");
    std::fs::write(&out, tracer.to_chrome_json()).unwrap();
    println!(
        "chrome trace written to {} (load it in Perfetto)",
        out.display()
    );
}
