//! A miniature `make -j` on Hare: the workload that motivates the paper.
//!
//! Demonstrates the three hard requirements the paper calls out for
//! building the Linux kernel on a non-cache-coherent machine (§1, §3, §5.2):
//!
//! 1. a **jobserver pipe shared across cores** (Hare pipes live at file
//!    servers, so processes on any core share them);
//! 2. **remote execution** of compile jobs via the scheduling servers;
//! 3. compiles that read **shared headers** and write objects into
//!    **shared distributed directories** concurrently.
//!
//! ```sh
//! cargo run --example parallel_build
//! ```

use fsapi::{Fd, MkdirOpts, Mode, ProcFs, ProcHandle, System};
use hare::{HareConfig, HareSystem};

const JOBS: usize = 4;
const UNITS: usize = 12;

fn main() {
    let sys = HareSystem::start(HareConfig::timeshare(8));
    let make = sys.start_proc();

    // Source tree: shared headers + compilation units.
    make.mkdir_opts("/src", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    make.mkdir_opts("/obj", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    fsapi::write_file(&make, "/src/common.h", b"#define VERSION 3\n").unwrap();
    for u in 0..UNITS {
        fsapi::write_file(
            &make,
            &format!("/src/unit{u}.c"),
            format!("#include \"common.h\"\nint f{u}() {{ return {u}; }}\n").as_bytes(),
        )
        .unwrap();
    }

    // The jobserver: JOBS tokens in a pipe every compile process shares.
    let (jr, jw) = make.pipe().unwrap();
    make.write(jw, &[b'+'; JOBS]).unwrap();

    let t0 = std::time::Instant::now();
    let mut joins = Vec::new();
    for u in 0..UNITS {
        joins.push(
            make.spawn(Box::new(move |cc: &hare::HareProc| {
                // Acquire a token (blocks while JOBS compiles are running).
                let mut tok = [0u8; 1];
                cc.read(Fd(jr.0), &mut tok).unwrap();

                let src = fsapi::read_to_vec(cc, &format!("/src/unit{u}.c")).unwrap();
                let _hdr = fsapi::read_to_vec(cc, "/src/common.h").unwrap();
                cc.compute(500_000); // the compiler's CPU work
                fsapi::write_file(cc, &format!("/obj/unit{u}.o"), &src).unwrap();
                println!("  cc unit{u}.c -> unit{u}.o   (core {})", cc.core());

                cc.write(Fd(jw.0), &tok).unwrap();
                0
            }))
            .unwrap(),
        );
    }
    let failures: i32 = joins.into_iter().map(|j| j.wait()).sum();
    assert_eq!(failures, 0, "all compiles succeed");

    // Link.
    let mut image = Vec::new();
    for e in make.readdir("/obj").unwrap() {
        image.extend(fsapi::read_to_vec(&make, &format!("/obj/{}", e.name)).unwrap());
    }
    fsapi::write_file(&make, "/obj/a.out", &image).unwrap();
    make.close(jr).unwrap();
    make.close(jw).unwrap();

    println!(
        "\nlinked /obj/a.out ({} bytes) — {} units, {} jobserver tokens",
        image.len(),
        UNITS,
        JOBS
    );
    println!(
        "virtual build time: {:.2} ms; wall time: {:.0?}",
        vtime::cycles_to_ns(sys.elapsed_cycles()) as f64 / 1e6,
        t0.elapsed()
    );
    drop(make);
    sys.shutdown();
}
