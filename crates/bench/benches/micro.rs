//! Criterion microbenchmarks of the substrate layers (real wall-clock
//! time of this reproduction's code, complementing the virtual-time
//! figures).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fsapi::{Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance};
use nccmem::{BlockId, Dram, PrivateCache};

/// Atomic-delivery channel send+recv.
fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("msg");
    g.throughput(Throughput::Elements(1));
    g.bench_function("send_recv", |b| {
        let (tx, rx) = msg::channel::<u64>(msg::MsgStats::shared());
        b.iter(|| {
            tx.send(42, 0, 0).unwrap();
            std::hint::black_box(rx.try_recv().unwrap());
        })
    });
    g.finish();
}

/// Private-cache hit and miss paths.
fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("nccmem");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("cache_hit_4k", |b| {
        let dram = Dram::new(4);
        let mut cache = PrivateCache::new(8);
        let mut buf = [0u8; 4096];
        cache.read(&dram, BlockId(0), 0, &mut buf); // warm
        b.iter(|| {
            cache.read(&dram, BlockId(0), 0, &mut buf);
            std::hint::black_box(buf[0]);
        })
    });
    g.bench_function("cache_miss_4k", |b| {
        let dram = Dram::new(4);
        let mut cache = PrivateCache::new(8);
        let mut buf = [0u8; 4096];
        b.iter(|| {
            cache.invalidate(BlockId(0));
            cache.read(&dram, BlockId(0), 0, &mut buf);
            std::hint::black_box(buf[0]);
        })
    });
    g.bench_function("writeback_4k", |b| {
        let dram = Dram::new(4);
        let mut cache = PrivateCache::new(8);
        b.iter(|| {
            cache.write(&dram, BlockId(0), 0, &[1u8; 64]);
            cache.writeback(&dram, BlockId(0));
        })
    });
    g.finish();
}

/// Full Hare RPC round trips through real server threads.
fn bench_hare_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("hare");
    g.sample_size(30);
    let inst = HareInstance::start(HareConfig::timeshare(2));
    let client = inst.new_client(0).unwrap();

    g.bench_function("create_close", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/bench_cc_{i}");
            i += 1;
            let fd = client
                .open(&path, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())
                .unwrap();
            client.close(fd).unwrap();
        })
    });

    fsapi::write_file(&client, "/bench_read", &[7u8; 16384]).unwrap();
    g.bench_function("open_read16k_close", |b| {
        let mut buf = vec![0u8; 16384];
        b.iter(|| {
            let fd = client
                .open("/bench_read", OpenFlags::RDONLY, Mode::default())
                .unwrap();
            let mut got = 0;
            while got < buf.len() {
                let n = client.read(fd, &mut buf[got..]).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
            client.close(fd).unwrap();
            std::hint::black_box(buf[0]);
        })
    });

    fsapi::write_file(&client, "/bench_mv_a", b"x").unwrap();
    g.bench_function("rename_pair", |b| {
        b.iter_batched(
            || (),
            |_| {
                client.rename("/bench_mv_a", "/bench_mv_b").unwrap();
                client.rename("/bench_mv_b", "/bench_mv_a").unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("stat", |b| {
        b.iter(|| std::hint::black_box(client.stat("/bench_read").unwrap()))
    });
    g.finish();
    drop(client);
    inst.shutdown();
}

criterion_group!(benches, bench_channel, bench_cache, bench_hare_ops);
criterion_main!(benches);
