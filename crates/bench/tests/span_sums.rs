//! Span trees prove the committed RPC baselines: re-running the pinned
//! `all`-configuration loops of `micro_open`, `micro_stat`, and
//! `micro_resolve` with op tracing enabled, the per-op span-tree send
//! sums must equal the committed `BENCH_*.json` RPCs/op values exactly —
//! the trace is a causal *decomposition* of the gated numbers, not a
//! separate estimate. Plus: replaying the committed shifting-hotspot
//! trace twice yields byte-identical Chrome trace JSON.

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance, SpanNode};
use hare_workloads::trace::{replay, ReplayEvent, Trace};

/// The committed baselines these tests decompose. All three were emitted
/// at 8 cores (the CI smoke shape) — the loops below must boot the same.
const OPEN_BASELINE: &str = include_str!("../../../BENCH_micro_open.json");
const STAT_BASELINE: &str = include_str!("../../../BENCH_micro_stat.json");
const RESOLVE_BASELINE: &str = include_str!("../../../BENCH_micro_resolve.json");
const CORES: usize = 8;

fn baseline(text: &str, config: &str, key: &str) -> f64 {
    assert!(
        text.contains("\"cores\": 8"),
        "the committed baseline must match the {CORES}-core replication"
    );
    hare_bench::parse_bench_json(text)
        .iter()
        .find(|c| c.name == config)
        .unwrap_or_else(|| panic!("baseline has no config {config:?}"))
        .metric(key)
        .unwrap_or_else(|| panic!("config {config:?} has no metric {key:?}"))
}

/// Boots the `all`-techniques traced machine the micro benches measure.
fn traced_instance() -> std::sync::Arc<HareInstance> {
    let mut cfg = HareConfig::timeshare(CORES);
    cfg.trace_ops = true;
    HareInstance::start(cfg)
}

/// RPCs (send pairs) summed over the given trees, per op.
fn rpcs_per_op(trees: &[&SpanNode]) -> f64 {
    let sends: u64 = trees.iter().map(|t| t.total_sends()).sum();
    sends as f64 / 2.0 / trees.len() as f64
}

#[test]
fn micro_open_span_sums_prove_the_committed_baseline() {
    let inst = traced_instance();
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/open/bench", MkdirOpts::default()).unwrap();
    let nfiles = 16usize;
    for i in 0..nfiles {
        fsapi::write_file(&setup, &format!("/open/bench/f{i}"), b"x").unwrap();
    }
    setup.shutdown();
    inst.machine().otrace.reset();

    // One cold round of the open-existing loop (every round is the same
    // fresh-client sequence, so one round's average IS the baseline).
    let c = inst.new_client(0).unwrap();
    for i in 0..nfiles {
        let fd = c
            .open(
                &format!("/open/bench/f{i}"),
                OpenFlags::RDONLY,
                Mode::default(),
            )
            .unwrap();
        c.close(fd).unwrap();
    }
    c.shutdown();

    // The ENOENT probe loop: one warming miss, then probes the negative
    // dircache answers locally.
    let probes = 64usize;
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.stat("/open/bench/missing").unwrap_err(), Errno::ENOENT);
    for _ in 0..probes {
        assert_eq!(c.stat("/open/bench/missing").unwrap_err(), Errno::ENOENT);
    }
    c.shutdown();
    inst.shutdown();

    let trees = inst.machine().otrace.op_trees();
    let opens: Vec<&SpanNode> = trees.iter().filter(|t| t.label == "open").collect();
    assert_eq!(opens.len(), nfiles);
    assert_eq!(
        rpcs_per_op(&opens),
        baseline(OPEN_BASELINE, "all", "open_rpcs_per_op"),
        "open span-tree sums must decompose the gated RPCs/op exactly"
    );
    let stats: Vec<&SpanNode> = trees.iter().filter(|t| t.label == "stat").collect();
    assert_eq!(stats.len(), probes + 1);
    assert_eq!(
        rpcs_per_op(&stats[1..]),
        baseline(OPEN_BASELINE, "all", "probe_rpcs_per_op"),
        "probe span trees must show the negative cache answering locally"
    );
}

#[test]
fn micro_stat_span_sums_prove_the_committed_baseline() {
    let inst = traced_instance();
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/stat/bench", MkdirOpts::default()).unwrap();
    setup
        .mkdir_opts("/stat/bench/dist", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    let nfiles = 32usize;
    for i in 0..nfiles {
        fsapi::write_file(&setup, &format!("/stat/bench/f{i}"), b"x").unwrap();
        fsapi::write_file(&setup, &format!("/stat/bench/dist/e{i}"), b"x").unwrap();
    }
    setup.shutdown();
    inst.machine().otrace.reset();

    // One cold round of the stat loop.
    let c = inst.new_client(0).unwrap();
    for i in 0..nfiles {
        c.stat(&format!("/stat/bench/f{i}")).unwrap();
    }
    c.shutdown();

    // One cold `ls -l` of the distributed directory.
    let c = inst.new_client(0).unwrap();
    assert_eq!(c.readdir_plus("/stat/bench/dist").unwrap().len(), nfiles);
    c.shutdown();
    inst.shutdown();

    let trees = inst.machine().otrace.op_trees();
    let stats: Vec<&SpanNode> = trees.iter().filter(|t| t.label == "stat").collect();
    assert_eq!(stats.len(), nfiles);
    assert_eq!(
        rpcs_per_op(&stats),
        baseline(STAT_BASELINE, "all", "stat_rpcs_per_op"),
        "stat span-tree sums must decompose the gated RPCs/op exactly"
    );
    let lsl: Vec<&SpanNode> = trees.iter().filter(|t| t.label == "readdir_plus").collect();
    assert_eq!(lsl.len(), 1);
    assert_eq!(
        rpcs_per_op(&lsl),
        baseline(STAT_BASELINE, "all", "lsl_rpcs_per_op"),
        "the ls -l span tree must decompose the gated exchanges exactly:\n{}",
        lsl[0].render()
    );
}

#[test]
fn micro_resolve_span_sums_prove_the_committed_baseline() {
    let inst = traced_instance();
    let setup = inst.new_client(0).unwrap();
    // build_chain from micro_resolve: distributed chains with a file at
    // the bottom — /mid/d0/d1/f is 4 components, /deep/d0/../d5/f is 8.
    let build = |root: &str, depth: usize| -> String {
        let mut path = root.to_string();
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
        for level in 0..depth {
            path = format!("{path}/d{level}");
            setup
                .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
                .unwrap();
        }
        let file = format!("{path}/f");
        fsapi::write_file(&setup, &file, b"x").unwrap();
        file
    };
    let mid = build("/mid", 2);
    let deep = build("/deep", 6);
    setup.shutdown();
    inst.machine().otrace.reset();

    // One cold resolution each, fresh client per path like the bench.
    for path in [&mid, &deep] {
        let c = inst.new_client(0).unwrap();
        c.stat(path).unwrap();
        c.shutdown();
    }
    inst.shutdown();

    let trees = inst.machine().otrace.op_trees();
    let stats: Vec<&SpanNode> = trees.iter().filter(|t| t.label == "stat").collect();
    assert_eq!(stats.len(), 2);
    for (tree, key) in stats
        .iter()
        .zip(["resolve4_rpcs_per_op", "resolve8_rpcs_per_op"])
    {
        assert_eq!(
            rpcs_per_op(&[tree]),
            baseline(RESOLVE_BASELINE, "all", key),
            "the chained-resolution tree must decompose {key} exactly:\n{}",
            tree.render()
        );
    }
}

/// Replays the committed shifting-hotspot trace on a traced machine and
/// returns the Chrome trace JSON of every op it ran.
fn replay_chrome_json(trace: &Trace) -> String {
    let mut cfg = HareConfig::split(8, 4);
    cfg.trace_ops = true;
    let app_cores = cfg.app_cores.clone();
    let inst = HareInstance::start(cfg);

    let setup = inst.new_client(app_cores[0]).unwrap();
    for d in &trace.dirs {
        setup
            .mkdir_opts(d, Mode::default(), MkdirOpts::default())
            .unwrap();
    }
    let clients: Vec<_> = (0..trace.nclients())
        .map(|i| inst.new_client(app_cores[i % app_cores.len()]).unwrap())
        .collect();
    let outcome = replay(&clients, trace, 2_000_000, |ev: ReplayEvent<'_>| {
        let _ = ev; // spans are the observable here, not the time series
    });
    assert!(outcome.ops > 0);
    setup.shutdown();
    for c in &clients {
        c.shutdown();
    }
    inst.shutdown();
    inst.machine().otrace.to_chrome_json()
}

#[test]
fn committed_trace_replays_to_byte_identical_chrome_json() {
    let text = include_str!("../../../traces/shifting_hotspot.trace");
    let trace = Trace::parse(text).expect("committed trace parses");
    let a = replay_chrome_json(&trace);
    let b = replay_chrome_json(&trace);
    assert!(a.contains("\"traceEvents\""));
    assert_eq!(
        a, b,
        "the span dump must be a pure function of the replayed trace"
    );
}
