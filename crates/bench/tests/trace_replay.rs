//! End-to-end determinism of trace replay plus the vtime time-series:
//! replaying the same trace on a fresh machine twice must produce
//! byte-identical serialized metrics — the property `BENCH_micro_trace`'s
//! committed baseline relies on. Along the way every replay checks event
//! conservation: each completed operation lands in exactly one window,
//! including operations completing right at a boundary (the vtime epoch
//! bump between windows must not drop or double-count a straggler).

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare_core::{HareConfig, HareInstance, TimeSeries};
use hare_workloads::trace::{replay, synth_mix, MixSpec, MixWeights, ReplayEvent, Trace};

/// 1 virtual ms — small enough that the short test trace spans several
/// windows and exercises boundary crossings.
const WINDOW: u64 = 2_000_000;

fn small_trace() -> Trace {
    synth_mix(&MixSpec {
        name: "determinism-probe".into(),
        clients: 3,
        ops_per_client: 60,
        seed: 42,
        dirs: vec![("/a".into(), 4), ("/b".into(), 1)],
        think: 10..80,
        weights: MixWeights::default(),
        file_size: 512,
    })
}

/// Boots a split machine, replays `trace`, and returns the serialized
/// time series plus the replay's end time. Asserts event conservation:
/// the window rows sum to exactly the replay's op and failure totals.
fn replay_to_json(trace: &Trace) -> (String, u64) {
    let cfg = HareConfig::split(8, 4);
    let app_cores = cfg.app_cores.clone();
    let inst = HareInstance::start(cfg);
    let machine = inst.machine();

    let setup = inst.new_client(app_cores[0]).unwrap();
    for d in &trace.dirs {
        setup
            .mkdir_opts(d, Mode::default(), MkdirOpts::default())
            .unwrap();
    }
    let clients: Vec<_> = (0..trace.nclients())
        .map(|i| inst.new_client(app_cores[i % app_cores.len()]).unwrap())
        .collect();

    machine.sync();
    let mut series = TimeSeries::start(machine, WINDOW);
    let outcome = replay(&clients, trace, WINDOW, |ev| match ev {
        ReplayEvent::Op { completed, ok, .. } => series.op(completed, ok),
        ReplayEvent::Window(b) => series.close_window(machine, b),
    });
    series.finish(machine, outcome.end);

    assert!(
        series.windows().len() > 2,
        "the trace must span several windows to exercise boundaries"
    );
    let (ops, failures) = series
        .windows()
        .iter()
        .fold((0, 0), |(o, f), w| (o + w.ops, f + w.failures));
    assert_eq!(
        ops, outcome.ops,
        "every completion lands in exactly one window"
    );
    assert_eq!(failures, outcome.failures);
    assert_eq!(
        outcome.failures, 0,
        "synthetic mixes are failure-free by construction"
    );

    let json = series.to_json(&trace.name);
    drop(setup);
    drop(clients);
    inst.shutdown();
    (json, outcome.end)
}

#[test]
fn same_trace_replays_to_byte_identical_json() {
    let trace = small_trace();
    let (a, end_a) = replay_to_json(&trace);
    let (b, end_b) = replay_to_json(&trace);
    assert_eq!(end_a, end_b, "virtual end times must agree exactly");
    assert_eq!(
        a, b,
        "replay must be deterministic down to the serialized time series"
    );
}

#[test]
fn committed_hotspot_trace_is_canonical() {
    let text = include_str!("../../../traces/shifting_hotspot.trace");
    let trace = Trace::parse(text).expect("committed trace parses");
    assert_eq!(
        trace.to_text(),
        text,
        "committed trace must be in trace_gen's canonical form"
    );
    assert_eq!(trace.nclients(), 4);
    assert_eq!(trace.dirs.len(), 8);
}
