//! Allocations-per-operation budgets for warm hot paths.
//!
//! Built only with `--features count-alloc`, which swaps in the counting
//! global allocator. The budgets below are *exact thread-local counts* for
//! the client's own thread — virtual time is deterministic and the server
//! threads' allocations don't land on our counter — so any new allocation
//! on a warm path fails the test rather than silently creeping in.
//!
//! Measured against the pre-PR 8 tree with this same harness: warm stat
//! was 2 allocations/op and warm open 3; both are now 1. The savings come
//! from the reusable `ReplySlot` (each blocking call used to build a
//! fresh reply channel: an `Arc` for the shared queue state plus a
//! `VecDeque` buffer on first push) and the pre-sized component vector.
#![cfg(feature = "count-alloc")]

use fsapi::{Mode, OpenFlags, ProcFs};
use hare_bench::alloc_count::{self, CountingAlloc};
use hare_core::{HareConfig, HareInstance};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Warms `f` up, then returns the exact allocations per call over `iters`
/// calls on this thread (asserting the count is stable, i.e. divisible).
fn allocs_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..32 {
        f();
    }
    let before = alloc_count::thread_allocs();
    for _ in 0..iters {
        f();
    }
    (alloc_count::thread_allocs() - before) as f64 / iters as f64
}

#[test]
fn warm_stat_and_open_allocation_budgets() {
    let inst = HareInstance::start(HareConfig::timeshare(4));
    let c = inst.new_client(0).unwrap();
    let fd = c
        .open("/f", OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())
        .unwrap();
    c.close(fd).unwrap();

    let warm_stat = allocs_per_op(256, || {
        c.stat("/f").unwrap();
    });
    let warm_open = allocs_per_op(256, || {
        let fd = c.open("/f", OpenFlags::RDONLY, Mode::default()).unwrap();
        c.close(fd).unwrap();
    });
    println!("warm stat: {warm_stat} allocs/op, warm open: {warm_open} allocs/op");

    // Budgets are the measured post-PR 8 counts. They are ceilings, not
    // targets: beating them is fine, exceeding them means a warm path
    // grew a per-op allocation and the gate should catch it.
    assert!(
        warm_stat <= 1.0,
        "warm stat allocates {warm_stat}/op (budget 1)"
    );
    assert!(
        warm_open <= 1.0,
        "warm open allocates {warm_open}/op (budget 1)"
    );

    drop(c);
    inst.shutdown();
}
