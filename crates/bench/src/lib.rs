//! # hare-bench — figure and table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig4_sloc` | Figure 4 — SLOC breakdown by component |
//! | `fig5_breakdown` | Figure 5 — per-benchmark operation mix |
//! | `fig6_scalability` | Figure 6 — speedup vs. cores (timeshare) |
//! | `fig7_split` | Figure 7 — timeshare vs. 20/20 vs. best split |
//! | `fig8_sequential` | Figure 8 — single-core vs. ramfs and UNFS3 |
//! | `fig9_techniques` | Figures 9–14 — technique ablations |
//! | `fig15_cc_machine` | Figure 15 — Hare vs. Linux at full core count |
//! | `micro_rename` | §5.3.3 — rename RPC cost, same-core vs. split |
//!
//! Numbers come from the virtual-time model (see `vtime`), so the claims
//! being checked are the paper's *shape* claims: who wins, by what rough
//! factor, where crossovers fall. EXPERIMENTS.md records paper-vs-measured
//! values for each figure.

#[cfg(feature = "count-alloc")]
pub mod alloc_count;

pub mod emit;

use hare_baseline::HostSystem;
use hare_core::{HareConfig, Techniques};
use hare_sched::HareSystem;
use hare_workloads::{self as workloads, Scale, Workload, WorkloadResult};

/// A name under `dir` whose dentry shard is `want` (brute-forced like the
/// pinned exchange-count tests). Shared by the skew/trace benches and the
/// trace generator so a committed trace's paths land on the servers its
/// scenario assumes.
pub fn pinned_name(
    dir: hare_core::InodeId,
    dist: bool,
    prefix: &str,
    want: u16,
    nservers: usize,
) -> String {
    (0..)
        .map(|i| format!("{prefix}{i}"))
        .find(|n| hare_core::dentry_shard(dir, dist, n, nservers) == want)
        .expect("some name hashes to every shard")
}

/// Drives the cadence-based rebalancer until it commits one action.
///
/// Each round runs `burst(round)` to generate load, advances the driver's
/// virtual clock by `step` so the cadence's probe interval elapses, then
/// ticks the rebalancer. Returns the committed
/// [`RebalanceAction`](hare_core::RebalanceAction) (or
/// `None` if `max_rounds` rounds pass without one) and the number of
/// rounds taken — benches assert on the round count to pin hysteresis
/// (confirmation must take at least `confirm` probes).
///
/// This is the one workload-side drive loop: `micro_skew`'s
/// migration-confirmation drive and `micro_replica`'s replication cadence
/// both go through it rather than keeping per-bench copies.
pub fn drive_rebalancer(
    driver: &hare_core::ClientLib,
    reb: &mut hare_core::Rebalancer,
    step: u64,
    max_rounds: usize,
    mut burst: impl FnMut(usize),
) -> (Option<hare_core::RebalanceAction>, usize) {
    for round in 0..max_rounds {
        burst(round);
        driver.vwait(driver.vnow() + step);
        let action = driver.rebalance_tick(reb).expect("rebalance tick");
        if action.is_some() {
            return (action, round + 1);
        }
    }
    (None, max_rounds)
}

/// Default core count for full-machine experiments (the paper's machine
/// has 40; override with the `HARE_CORES` environment variable if the
/// wall-clock budget is tight).
pub fn max_cores() -> usize {
    std::env::var("HARE_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Scale preset selected by `HARE_SCALE` (`quick`, `bench`, or `full`;
/// default bench). `full` is the scheduled nightly lane's preset.
pub fn scale() -> Scale {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        Ok("full") => Scale::full(),
        _ => Scale::bench(),
    }
}

/// Runs one workload on a fresh Hare machine with `cfg`.
pub fn run_hare(cfg: HareConfig, wl: Workload, nprocs: usize, s: &Scale) -> WorkloadResult {
    let sys = HareSystem::start(cfg);
    let r = workloads::run(&*sys, wl, nprocs, s)
        .unwrap_or_else(|e| panic!("hare run of {wl} failed: {e}"));
    sys.shutdown();
    r
}

/// Runs one workload on a fresh Hare machine in the timeshare
/// configuration with `cores` cores (the Figure 6 setup).
pub fn run_hare_timeshare(cores: usize, wl: Workload, s: &Scale) -> WorkloadResult {
    run_hare(HareConfig::timeshare(cores), wl, cores, s)
}

/// Runs one workload on a fresh ramfs machine.
pub fn run_ramfs(cores: usize, wl: Workload, nprocs: usize, s: &Scale) -> WorkloadResult {
    let sys = HostSystem::ramfs(cores);
    let r = workloads::run(&*sys, wl, nprocs, s)
        .unwrap_or_else(|e| panic!("ramfs run of {wl} failed: {e}"));
    sys.shutdown();
    r
}

/// Runs one workload on a fresh UNFS3 machine (single application core,
/// as in Figure 8).
pub fn run_unfs(wl: Workload, s: &Scale) -> WorkloadResult {
    let sys = HostSystem::unfs(2);
    let r =
        workloads::run(&*sys, wl, 1, s).unwrap_or_else(|e| panic!("unfs run of {wl} failed: {e}"));
    sys.shutdown();
    r
}

/// Runs one workload on Hare with one technique disabled (Figures 9–14).
pub fn run_hare_without(technique: &str, cores: usize, wl: Workload, s: &Scale) -> WorkloadResult {
    let mut cfg = HareConfig::timeshare(cores);
    cfg.techniques = Techniques::without(technique);
    run_hare(cfg, wl, cores, s)
}

/// Simple fixed-width table printer for figure output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio like `1.37x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

// ----- BENCH_*.json trajectory points and the perf-smoke gate -------------

/// One measured configuration of a microbenchmark: a name plus flat
/// `metric → value` pairs. Serialized into the repository's `BENCH_*.json`
/// trajectory files and compared by the CI perf gate.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Configuration label (e.g. `"all"`, `"no batching"`).
    pub name: String,
    /// Metric name/value pairs, in print order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchConfig {
    /// Looks up one metric.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Renders the machine-readable trajectory point the repository commits
/// (`BENCH_<bench>.json`).
pub fn bench_json(bench: &str, cores: usize, configs: &[BenchConfig]) -> String {
    let mut json =
        format!("{{\n  \"bench\": \"{bench}\",\n  \"cores\": {cores},\n  \"configs\": [\n");
    for (i, c) in configs.iter().enumerate() {
        json.push_str(&format!("    {{\"name\": \"{}\"", c.name));
        for (k, v) in &c.metrics {
            json.push_str(&format!(", \"{k}\": {v:.3}"));
        }
        json.push_str(if i + 1 < configs.len() { "},\n" } else { "}\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Parses the `configs` array of a `BENCH_*.json` file written by
/// [`bench_json`] (one object per line; no external JSON dependency in the
/// offline build container, and we only ever parse our own writer's
/// output).
pub fn parse_bench_json(text: &str) -> Vec<BenchConfig> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !(line.starts_with('{') && line.contains("\"name\"")) {
            continue;
        }
        let body = line.trim_start_matches('{').trim_end_matches('}');
        let mut name = None;
        let mut metrics = Vec::new();
        for pair in body.split(", \"") {
            let pair = pair.trim_start_matches('"');
            let Some((key, value)) = pair.split_once("\":") else {
                continue;
            };
            let value = value.trim();
            if key == "name" {
                name = Some(value.trim_matches(|c| c == ' ' || c == '"').to_string());
            } else if let Ok(v) = value.parse::<f64>() {
                metrics.push((key.to_string(), v));
            }
        }
        if let Some(name) = name {
            out.push(BenchConfig { name, metrics });
        }
    }
    out
}

/// The CI perf-smoke regression gate: compares freshly measured configs
/// against the committed baseline file named by the `HARE_GATE_BASELINE`
/// environment variable (no-op when unset).
///
/// Policy: metrics ending in `_rpcs_per_op` are *hard* — RPC counts are
/// deterministic per operation, so any increase beyond a 0.05 absolute
/// tolerance fails the gate (and a missing config or metric fails it too,
/// so renames cannot silently drop coverage). Metrics ending in
/// `_cycles_per_op` only warn, since virtual-cycle totals shift with
/// scale/core settings on CI runners.
///
/// When `GITHUB_STEP_SUMMARY` is set (GitHub Actions), every comparison is
/// also appended there as a markdown table, so a regression is readable
/// from the run page without digging through logs.
pub fn perf_gate(bench: &str, current: &[BenchConfig]) {
    perf_gate_explained(bench, current, || None);
}

/// A causal-trace dump for the gate's `--explain` mode: the Chrome
/// trace-event JSON of a traced rerun plus the costliest op's rendered
/// span tree (see `hare_core::otrace`).
pub struct OpExplain {
    /// Perfetto-loadable trace of the rerun, from `Tracer::to_chrome_json`.
    pub chrome_json: String,
    /// `SpanNode::render` of the most expensive operation, if any ran.
    pub worst: Option<String>,
}

/// [`perf_gate`] with an *explain hook*: when the gate fails **and** the
/// `HARE_EXPLAIN_DIR` environment variable is set (`ci/perf_gate.sh
/// --explain`), `explain()` is invoked to rerun a traced round; the
/// resulting trace JSON is written to `$HARE_EXPLAIN_DIR/TRACE_<bench>.json`
/// and the worst op's span tree is appended to the step summary, so a
/// regression arrives with the causal breakdown of where the RPCs went.
/// The hook never runs on a passing gate — `--explain` costs nothing until
/// something regresses.
pub fn perf_gate_explained(
    bench: &str,
    current: &[BenchConfig],
    explain: impl FnOnce() -> Option<OpExplain>,
) {
    let Ok(path) = std::env::var("HARE_GATE_BASELINE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("perf gate: cannot read baseline {path}: {e}"));
    let baseline = parse_bench_json(&text);
    assert!(
        !baseline.is_empty(),
        "perf gate: baseline {path} has no configs"
    );
    let mut failures = Vec::new();
    let mut summary_rows: Vec<[String; 5]> = Vec::new();
    for base_cfg in &baseline {
        let Some(cur_cfg) = current.iter().find(|c| c.name == base_cfg.name) else {
            failures.push(format!(
                "config {:?} present in baseline but not measured",
                base_cfg.name
            ));
            continue;
        };
        for (key, base) in &base_cfg.metrics {
            let Some(cur) = cur_cfg.metric(key) else {
                failures.push(format!("{}: metric {key} disappeared", base_cfg.name));
                continue;
            };
            let status = if key.ends_with("_rpcs_per_op") {
                if cur > base + 0.05 {
                    failures.push(format!(
                        "{}: {key} regressed {base:.3} -> {cur:.3}",
                        base_cfg.name
                    ));
                    "❌ regressed"
                } else {
                    "✅"
                }
            } else if key.ends_with("_cycles_per_op") && cur > base * 1.5 {
                eprintln!(
                    "perf gate WARNING ({bench}/{}): {key} {base:.1} -> {cur:.1} \
                     (cycles are warn-only; runners vary)",
                    base_cfg.name
                );
                "⚠️ warn (cycles)"
            } else {
                "✅"
            };
            summary_rows.push([
                base_cfg.name.clone(),
                key.clone(),
                format!("{base:.3}"),
                format!("{cur:.3}"),
                status.to_string(),
            ]);
        }
    }
    write_step_summary(bench, &summary_rows, &failures);
    if failures.is_empty() {
        println!("perf gate: {bench} within baseline {path}");
    } else {
        eprintln!("perf gate FAILED for {bench} against {path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if let Ok(dir) = std::env::var("HARE_EXPLAIN_DIR") {
            if let Some(ex) = explain() {
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| panic!("perf gate: cannot create {dir}: {e}"));
                let trace_path = format!("{dir}/TRACE_{bench}.json");
                std::fs::write(&trace_path, &ex.chrome_json)
                    .unwrap_or_else(|e| panic!("perf gate: cannot write {trace_path}: {e}"));
                eprintln!("perf gate: wrote traced rerun to {trace_path}");
                if let Some(worst) = ex.worst {
                    eprintln!("costliest traced op:\n{worst}");
                    append_step_summary(&format!(
                        "#### `{bench}` --explain: costliest op of the traced rerun\n\n\
                         ```text\n{worst}```\n\n"
                    ));
                }
            }
        }
        std::process::exit(1);
    }
}

/// Appends raw markdown to the GitHub Actions step summary when running
/// under Actions (`GITHUB_STEP_SUMMARY` set); a no-op otherwise. Benches
/// use this for run artifacts beyond the gate table — e.g. `micro_trace`'s
/// per-window time series.
pub fn append_step_summary(md: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    use std::io::Write;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        let _ = file.write_all(md.as_bytes());
    }
}

/// Appends one bench's baseline-vs-measured table to the GitHub Actions
/// step summary, when running under Actions. Failures that have no table
/// row (a vanished config or metric) are listed below it.
fn write_step_summary(bench: &str, rows: &[[String; 5]], failures: &[String]) {
    let mut md = format!(
        "### perf gate: `{bench}`\n\n\
         | config | metric | baseline | measured | status |\n\
         |---|---|---:|---:|---|\n"
    );
    for [config, metric, base, cur, status] in rows {
        md.push_str(&format!(
            "| {config} | `{metric}` | {base} | {cur} | {status} |\n"
        ));
    }
    for f in failures {
        md.push_str(&format!("\n- ❌ {f}"));
    }
    md.push('\n');
    append_step_summary(&md);
}

/// Summary statistics over a set of ratios (the Figure 9 rows).
pub fn summarize(ratios: &[f64]) -> (f64, f64, f64, f64) {
    assert!(!ratios.is_empty());
    let mut sorted = ratios.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let min = sorted[0];
    let max = *sorted.last().expect("nonempty");
    let avg = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    (min, avg, median, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00x".into()]);
        t.row(vec!["longer".into(), "10.00x".into()]);
        let r = t.render();
        assert!(r.contains("name"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn summarize_stats() {
        let (min, avg, median, max) = summarize(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(min, 1.0);
        assert_eq!(max, 10.0);
        assert_eq!(avg, 4.0);
        assert_eq!(median, 2.5);
    }

    #[test]
    fn bench_json_roundtrip() {
        let configs = vec![
            BenchConfig {
                name: "all".into(),
                metrics: vec![
                    ("open_rpcs_per_op".into(), 1.125),
                    ("open_cycles_per_op".into(), 5590.5),
                ],
            },
            BenchConfig {
                name: "no batching".into(),
                metrics: vec![
                    ("open_rpcs_per_op".into(), 2.0),
                    ("open_cycles_per_op".into(), 8790.5),
                ],
            },
        ];
        let parsed = parse_bench_json(&bench_json("micro_open", 8, &configs));
        assert_eq!(parsed, configs);
    }

    #[test]
    fn parse_committed_baseline_shape() {
        // The exact shape PR 1 committed; the gate must keep reading it.
        let text = r#"{
  "bench": "micro_open",
  "cores": 8,
  "configs": [
    {"name": "all", "open_rpcs_per_op": 1.125, "probe_rpcs_per_op": 0.000},
    {"name": "no dircache", "open_rpcs_per_op": 3.000, "probe_rpcs_per_op": 3.000}
  ]
}"#;
        let parsed = parse_bench_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "all");
        assert_eq!(parsed[0].metric("open_rpcs_per_op"), Some(1.125));
        assert_eq!(parsed[1].metric("probe_rpcs_per_op"), Some(3.0));
    }
}
