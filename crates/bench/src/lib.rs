//! # hare-bench — figure and table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig4_sloc` | Figure 4 — SLOC breakdown by component |
//! | `fig5_breakdown` | Figure 5 — per-benchmark operation mix |
//! | `fig6_scalability` | Figure 6 — speedup vs. cores (timeshare) |
//! | `fig7_split` | Figure 7 — timeshare vs. 20/20 vs. best split |
//! | `fig8_sequential` | Figure 8 — single-core vs. ramfs and UNFS3 |
//! | `fig9_techniques` | Figures 9–14 — technique ablations |
//! | `fig15_cc_machine` | Figure 15 — Hare vs. Linux at full core count |
//! | `micro_rename` | §5.3.3 — rename RPC cost, same-core vs. split |
//!
//! Numbers come from the virtual-time model (see `vtime`), so the claims
//! being checked are the paper's *shape* claims: who wins, by what rough
//! factor, where crossovers fall. EXPERIMENTS.md records paper-vs-measured
//! values for each figure.

use hare_baseline::HostSystem;
use hare_core::{HareConfig, Techniques};
use hare_sched::HareSystem;
use hare_workloads::{self as workloads, Scale, Workload, WorkloadResult};

/// Default core count for full-machine experiments (the paper's machine
/// has 40; override with the `HARE_CORES` environment variable if the
/// wall-clock budget is tight).
pub fn max_cores() -> usize {
    std::env::var("HARE_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Scale preset selected by `HARE_SCALE` (`quick` or `bench`, default
/// bench).
pub fn scale() -> Scale {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::bench(),
    }
}

/// Runs one workload on a fresh Hare machine with `cfg`.
pub fn run_hare(cfg: HareConfig, wl: Workload, nprocs: usize, s: &Scale) -> WorkloadResult {
    let sys = HareSystem::start(cfg);
    let r = workloads::run(&*sys, wl, nprocs, s)
        .unwrap_or_else(|e| panic!("hare run of {wl} failed: {e}"));
    sys.shutdown();
    r
}

/// Runs one workload on a fresh Hare machine in the timeshare
/// configuration with `cores` cores (the Figure 6 setup).
pub fn run_hare_timeshare(cores: usize, wl: Workload, s: &Scale) -> WorkloadResult {
    run_hare(HareConfig::timeshare(cores), wl, cores, s)
}

/// Runs one workload on a fresh ramfs machine.
pub fn run_ramfs(cores: usize, wl: Workload, nprocs: usize, s: &Scale) -> WorkloadResult {
    let sys = HostSystem::ramfs(cores);
    let r = workloads::run(&*sys, wl, nprocs, s)
        .unwrap_or_else(|e| panic!("ramfs run of {wl} failed: {e}"));
    sys.shutdown();
    r
}

/// Runs one workload on a fresh UNFS3 machine (single application core,
/// as in Figure 8).
pub fn run_unfs(wl: Workload, s: &Scale) -> WorkloadResult {
    let sys = HostSystem::unfs(2);
    let r = workloads::run(&*sys, wl, 1, s)
        .unwrap_or_else(|e| panic!("unfs run of {wl} failed: {e}"));
    sys.shutdown();
    r
}

/// Runs one workload on Hare with one technique disabled (Figures 9–14).
pub fn run_hare_without(
    technique: &str,
    cores: usize,
    wl: Workload,
    s: &Scale,
) -> WorkloadResult {
    let mut cfg = HareConfig::timeshare(cores);
    cfg.techniques = Techniques::without(technique);
    run_hare(cfg, wl, cores, s)
}

/// Simple fixed-width table printer for figure output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio like `1.37x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Summary statistics over a set of ratios (the Figure 9 rows).
pub fn summarize(ratios: &[f64]) -> (f64, f64, f64, f64) {
    assert!(!ratios.is_empty());
    let mut sorted = ratios.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let min = sorted[0];
    let max = *sorted.last().expect("nonempty");
    let avg = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    (min, avg, median, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00x".into()]);
        t.row(vec!["longer".into(), "10.00x".into()]);
        let r = t.render();
        assert!(r.contains("name"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn summarize_stats() {
        let (min, avg, median, max) = summarize(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(min, 1.0);
        assert_eq!(max, 10.0);
        assert_eq!(avg, 4.0);
        assert_eq!(median, 2.5);
    }
}
