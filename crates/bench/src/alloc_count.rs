//! A counting global allocator for pinning allocations per operation.
//!
//! The big-machine hot paths (PR 8) stripped per-op allocations off warm
//! stat/open: the reusable [`ReplySlot`](hare_core::rpc::ReplySlot) reply
//! channel and the pre-sized component vector. This module makes those
//! wins testable: a thin wrapper over the system allocator that bumps a
//! thread-local counter on every `alloc`/`realloc`, so a test can measure
//! exactly how many allocations *its own thread* performs per operation —
//! server threads allocate concurrently and must not pollute the count.
//!
//! The wrapper is only installed by test binaries built with the
//! `count-alloc` feature (see `tests/alloc_counts.rs`); it is never active
//! in benchmarks, where the per-allocation bump would tax cycle numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // const-initialized so reading it never allocates (a lazily
    // initialized TLS slot could recurse into the allocator).
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Number of `alloc`/`realloc` calls made by the current thread since it
/// started. Take a delta around the operation under test.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// System-allocator wrapper that counts per-thread allocation calls.
/// Install with `#[global_allocator]` in a `count-alloc` test binary.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
