//! Figure 8: single-core sequential performance — Hare (timeshare and
//! 2-core split) vs. Linux ramfs and UNFS3, normalized to Hare timeshare.
//!
//! Paper shape claims: the split configuration beats timesharing (no
//! context switches, ~7.2 µs vs 4.2 µs per rename); Linux ramfs is up to
//! ~3.4× faster than Hare (median: Hare reaches 0.39× of Linux); UNFS3 is
//! far slower than Hare on everything except the CPU-bound build linux.
//!
//! One extra column beyond the paper: an 8-core split machine with the
//! striped data plane on (`stripe_width = 4`) — the single-application
//! sequential story once file service is spread over four servers. The
//! single-server columns cannot stripe (width clamps to the server
//! count), so this is where the data-plane PR shows up in fig8.

use hare_core::HareConfig;
use hare_workloads::Workload;

fn main() {
    let s = hare_bench::scale();

    let mut table = hare_bench::Table::new(&[
        "benchmark",
        "hare timeshare",
        "hare 2-core",
        "hare 4-srv striped",
        "linux ramfs",
        "linux unfs",
        "hare runtime (virt ms)",
    ]);

    let mut ramfs_ratios = Vec::new();
    for wl in Workload::ALL {
        // Hare timeshare: app + server time-multiplex one core.
        let hare_ts = hare_bench::run_hare(HareConfig::timeshare(1), wl, 1, &s);
        // Hare 2-core split: dedicated server core.
        let hare_2c = hare_bench::run_hare(HareConfig::split(2, 1), wl, 1, &s);
        // Hare 8-core split with width-4 extent maps: one application
        // process, four servers streaming its file data in parallel.
        let mut scfg = HareConfig::split(8, 4);
        scfg.stripe_width = 4;
        let hare_striped = hare_bench::run_hare(scfg, wl, 1, &s);
        // Linux ramfs on one core.
        let ramfs = hare_bench::run_ramfs(1, wl, 1, &s);
        // UNFS3 over loopback, application on one core.
        let unfs = hare_bench::run_unfs(wl, &s);

        let base = hare_ts.throughput();
        ramfs_ratios.push(base / ramfs.throughput());
        table.row(vec![
            wl.name().to_string(),
            "1.00".to_string(),
            format!("{:.2}", hare_2c.throughput() / base),
            format!("{:.2}", hare_striped.throughput() / base),
            format!("{:.2}", ramfs.throughput() / base),
            format!("{:.2}", unfs.throughput() / base),
            format!("{:.2}", hare_ts.virtual_secs() * 1e3),
        ]);
        eprintln!("done: {wl}");
    }

    println!("Figure 8: normalized single-core throughput (1.0 = hare timeshare)\n");
    table.print();
    ramfs_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = ramfs_ratios[ramfs_ratios.len() / 2];
    println!("\nmedian Hare throughput relative to Linux ramfs: {median:.2}x (paper: 0.39x)");
}
