//! `micro_resolve`: transport exchanges and virtual cycles for cold
//! deep-path resolution, per technique configuration.
//!
//! This is the measurement harness for server-side `LookupPath` chaining
//! and its terminal-op fusion: a cold resolution of a d-component path
//! costs d round trips in the paper's per-component walk, but only one
//! message per *run* of co-located components (plus the reply) when
//! dentry servers resolve what they own and forward the remainder — and
//! with the fused terminal the final coalesced stat rides the same chain,
//! so the whole cold stat is one end-to-end exchange when shards align.
//! The bench stats files at depth 4 and depth 8 under distributed
//! directories with a fresh (cold-cache) client per round, and reports
//! messages/2 per operation — the same "RPC-equivalent" unit as the other
//! micro benches — plus cycles.
//! Results go to `BENCH_micro_resolve.json`; with `HARE_GATE_BASELINE`
//! set, the run is gated against the committed baseline first (CI perf
//! smoke).

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare_core::{HareConfig, HareInstance, Techniques};

/// One configuration's measurements.
struct Row {
    name: &'static str,
    mid_rpcs: f64,
    mid_cycles: f64,
    deep_rpcs: f64,
    deep_cycles: f64,
}

/// Iterations scaled by `HARE_SCALE` (quick for CI smoke, bench for real
/// numbers).
fn iters() -> usize {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => 8,
        _ => 32,
    }
}

/// Builds a chain of `depth` distributed directories with a file `f` at
/// the bottom; returns the file's path.
fn build_chain(setup: &dyn ProcFs, root: &str, depth: usize) -> String {
    let mut path = root.to_string();
    setup
        .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for level in 0..depth {
        path = format!("{path}/d{level}");
        setup
            .mkdir_opts(&path, Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
    }
    let file = format!("{path}/f");
    fsapi::write_file(setup, &file, b"x").unwrap();
    file
}

fn measure(name: &'static str, techniques: Techniques, cores: usize) -> Row {
    let rounds = iters();
    let mut cfg = HareConfig::timeshare(cores);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);

    let setup = inst.new_client(0).unwrap();
    // Depth counts path components: /mid/d0/d1/f is 4, /deep/d0/../d6/f
    // is 8.
    let mid = build_chain(&setup, "/mid", 2);
    let deep = build_chain(&setup, "/deep", 6);
    drop(setup);

    // Cold-cache resolution: a fresh client per round so every component
    // is resolved with real messages.
    let run = |path: &str| -> (f64, f64) {
        let mut sends = 0u64;
        let mut cycles = 0u64;
        for _ in 0..rounds {
            let c = inst.new_client(0).unwrap();
            let s0 = inst.machine().msg_stats.sends();
            let t0 = c.vnow();
            c.stat(path).unwrap();
            sends += inst.machine().msg_stats.sends() - s0;
            cycles += c.vnow() - t0;
            drop(c);
        }
        (
            sends as f64 / 2.0 / rounds as f64,
            cycles as f64 / rounds as f64,
        )
    };
    let (mid_rpcs, mid_cycles) = run(&mid);
    let (deep_rpcs, deep_cycles) = run(&deep);
    inst.shutdown();

    Row {
        name,
        mid_rpcs,
        mid_cycles,
        deep_rpcs,
        deep_cycles,
    }
}

/// Gate explain hook: reruns one cold depth-8 stat with op tracing
/// enabled — the chained-resolution span tree shows exactly which server
/// hops (and any redirects) the resolution took.
fn explain(cores: usize) -> Option<hare_bench::OpExplain> {
    let mut cfg = HareConfig::timeshare(cores);
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    let deep = build_chain(&setup, "/deep", 6);
    drop(setup);
    // Only the measured op should appear in the dump, not the setup.
    inst.machine().otrace.reset();
    let c = inst.new_client(0).unwrap();
    c.stat(&deep).unwrap();
    drop(c);
    let tracer = &inst.machine().otrace;
    let out = hare_bench::OpExplain {
        chrome_json: tracer.to_chrome_json(),
        worst: tracer.explain_worst(),
    };
    inst.shutdown();
    Some(out)
}

fn main() {
    let cores = hare_bench::max_cores().min(8);
    let rows = [
        measure("all", Techniques::default(), cores),
        measure(
            "no fused_terminal",
            Techniques::without("fused_terminal"),
            cores,
        ),
        measure(
            "no chained_resolution",
            Techniques::without("chained_resolution"),
            cores,
        ),
        measure("no dircache", Techniques::without("dircache"), cores),
    ];

    println!("micro_resolve: cold deep-path resolution ({cores} cores timeshare)\n");
    let mut t = hare_bench::Table::new(&[
        "configuration",
        "depth-4 RPCs/op",
        "depth-4 cycles/op",
        "depth-8 RPCs/op",
        "depth-8 cycles/op",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.mid_rpcs),
            format!("{:.0}", r.mid_cycles),
            format!("{:.2}", r.deep_rpcs),
            format!("{:.0}", r.deep_cycles),
        ]);
    }
    t.print();

    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| hare_bench::BenchConfig {
            name: r.name.to_string(),
            metrics: vec![
                ("resolve4_rpcs_per_op".into(), r.mid_rpcs),
                ("resolve4_cycles_per_op".into(), r.mid_cycles),
                ("resolve8_rpcs_per_op".into(), r.deep_rpcs),
                ("resolve8_cycles_per_op".into(), r.deep_cycles),
            ],
        })
        .collect();
    hare_bench::emit::emit_explained("micro_resolve", cores, &configs, || explain(cores));

    // The whole point of fusion: strictly fewer exchanges than the
    // chain-then-stat protocol, which itself beats the per-component walk
    // — and the deeper the path the bigger the gap.
    assert!(
        rows[0].deep_rpcs < rows[1].deep_rpcs,
        "terminal fusion must save exchanges ({:.2} vs {:.2})",
        rows[0].deep_rpcs,
        rows[1].deep_rpcs
    );
    assert!(
        rows[1].deep_rpcs < rows[2].deep_rpcs,
        "chained resolution must save exchanges ({:.2} vs {:.2})",
        rows[1].deep_rpcs,
        rows[2].deep_rpcs
    );
    assert!(
        rows[0].mid_rpcs < rows[2].mid_rpcs,
        "fused chaining must help at depth 4 too ({:.2} vs {:.2})",
        rows[0].mid_rpcs,
        rows[2].mid_rpcs
    );
}
