//! `micro_skew`: the hot-directory workload the dynamic placement
//! subsystem exists for — one centralized mail-spool directory pinning a
//! single server that also carries other traffic.
//!
//! Four worker threads churn the spool (create + stat + unlink, the
//! maildir pattern) and stat files in per-worker directories that are
//! deliberately homed on the *same* server as the spool, so that server
//! serializes nearly the whole workload. The bench measures the skewed
//! phase, then drives the cadence-based rebalancer
//! ([`hare_core::Rebalancer`]) through unmeasured confirmation bursts
//! until it commits — the hysteresis is visible: the first probe only
//! opens the confirmation streak, and the migration (of the spool's
//! dentry shard to the least-loaded server) lands on a later tick — and
//! measures again: with `rebalancing` on, the spool churn and the
//! background load now run on different servers and the virtual cycles
//! per operation drop; with it off, every tick is a no-op and nothing
//! changes. The machine is the paper's *split* configuration (dedicated
//! server cores) so the before/after comparison isolates server queueing
//! from the timeshare context-switch tax.
//!
//! RPCs/op is the *hard* gate metric: the post-migration count may exceed
//! the pre-migration count only by the one-bounce redirect amortization
//! (each fresh worker pays one `NotOwner` exchange), which the gate's 0.05
//! tolerance covers. Cycles are warn-only as usual. Results go to
//! `BENCH_micro_skew.json`; with `HARE_GATE_BASELINE` set the run is gated
//! against the committed baseline first (CI perf smoke).

use fsapi::{MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_bench::pinned_name;
use hare_core::{
    dentry_shard, HareConfig, HareInstance, InodeId, RebalanceCadence, RebalancePolicy, Rebalancer,
    Techniques,
};
use std::sync::Arc;

/// Two worker processes per application core: while one waits on the hot
/// server the other runs, so the server — not client latency — is the
/// bottleneck the rebalance relieves.
const WORKERS: usize = 8;

/// Iterations per worker, scaled by `HARE_SCALE`.
fn iters() -> usize {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => 24,
        _ => 96,
    }
}

struct Phase {
    rpcs_per_op: f64,
    cycles_per_op: f64,
}

/// Runs the skewed workload once: each worker creates, stats, and unlinks
/// spool messages and stats its two background files. Returns per-op
/// transport exchanges and virtual cycles (wall-clock of the contended
/// phase, not per-client sums — queueing at the hot server is the point).
fn run_phase(inst: &Arc<HareInstance>, spool: &str, bg_dirs: &[String], rounds: usize) -> Phase {
    use std::sync::Barrier;

    let machine = inst.machine();
    let app_cores = inst.config().app_cores.clone();
    // Two barriers bracket the measured window: workers warm up (resolve
    // the spool and their background directory, pay any one-time redirect
    // bounce), everyone meets at `warm`, the main thread snapshots the
    // counters, and `go` releases the measured rounds — so RPCs/op is
    // per-iteration steady state, independent of the scale preset.
    let warm = Arc::new(Barrier::new(WORKERS + 1));
    let go = Arc::new(Barrier::new(WORKERS + 1));
    // …and `done`/`exit` bracket the far end, so client teardown (the
    // Unregister fan-out) stays outside the measured window too.
    let done = Arc::new(Barrier::new(WORKERS + 1));
    let exit = Arc::new(Barrier::new(WORKERS + 1));
    let mut joins = Vec::new();
    for w in 0..WORKERS {
        let inst = Arc::clone(inst);
        let spool = spool.to_string();
        let bg = bg_dirs[w].clone();
        let core = app_cores[w % app_cores.len()];
        let (warm, go) = (Arc::clone(&warm), Arc::clone(&go));
        let (done, exit) = (Arc::clone(&done), Arc::clone(&exit));
        joins.push(std::thread::spawn(move || {
            let c = inst.new_client(core).unwrap();
            let iter = |i: usize| {
                let msg = format!("{spool}/w{w}m{i}");
                let fd = c
                    .open(&msg, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())
                    .unwrap();
                c.close(fd).unwrap();
                c.stat(&msg).unwrap();
                c.unlink(&msg).unwrap();
                for f in 0..4 {
                    c.stat(&format!("{bg}/f{f}")).unwrap();
                }
            };
            iter(usize::MAX); // warmup, outside the measured window
            warm.wait();
            go.wait();
            for i in 0..rounds {
                iter(i);
            }
            done.wait();
            exit.wait();
            drop(c);
        }));
    }
    warm.wait();
    machine.sync();
    let sends0 = machine.msg_stats.sends();
    let t0 = machine.sync();
    go.wait();
    done.wait();
    let cycles = machine.sync() - t0;
    let sends = machine.msg_stats.sends() - sends0;
    exit.wait();
    for j in joins {
        j.join().unwrap();
    }
    let ops = (WORKERS * rounds * 7) as f64;
    Phase {
        rpcs_per_op: sends as f64 / 2.0 / ops,
        cycles_per_op: cycles as f64 / ops,
    }
}

struct Row {
    name: &'static str,
    pre: Phase,
    post: Phase,
    migrated: bool,
}

fn measure(name: &'static str, techniques: Techniques, cores: usize) -> Row {
    let rounds = iters();
    // Split configuration: half the cores run dedicated servers, half run
    // the workers.
    let mut cfg = HareConfig::split(cores, cores / 2);
    cfg.techniques = techniques;
    let nservers = cfg.nservers();
    let inst = HareInstance::start(cfg);

    // The hot server: the spool's shard in the (distributed) root. Every
    // background directory is pinned to the same server, so it serializes
    // spool churn *and* background stats until the spool migrates.
    let setup = inst.new_client(inst.config().app_cores[0]).unwrap();
    let hot = dentry_shard(InodeId::ROOT, true, "spool", nservers);
    let spool = "/spool".to_string();
    setup
        .mkdir_opts(&spool, Mode::default(), MkdirOpts::default())
        .unwrap();
    let mut bg_dirs = Vec::new();
    for w in 0..WORKERS {
        let dir = format!(
            "/{}",
            pinned_name(InodeId::ROOT, true, &format!("bg{w}x"), hot, nservers)
        );
        setup
            .mkdir_opts(&dir, Mode::default(), MkdirOpts::default())
            .unwrap();
        for f in 0..4 {
            fsapi::write_file(&setup, &format!("{dir}/f{f}"), b"payload").unwrap();
        }
        bg_dirs.push(dir);
    }
    assert_eq!(setup.stat(&spool).unwrap().server, hot);

    let pre = run_phase(&inst, &spool, &bg_dirs, rounds);

    // Drive the background rebalancer between the measured phases: each
    // unmeasured burst keeps the skew visible to the next load probe
    // (probes reset the counters, so an idle gap would read as a cold
    // server), and the cadence's confirm=2 hysteresis means the first
    // probe only opens the streak — the migration lands on a later tick.
    // With `rebalancing` off every tick is a no-op.
    let mut reb = Rebalancer::new(
        RebalancePolicy::default(),
        RebalanceCadence {
            probe_interval: 50_000,
            confirm: 2,
            cooldown: 400_000,
        },
    );
    let burst = |serial: usize| {
        for k in 0..24 {
            let msg = format!("{spool}/conf{serial}_{k}");
            let fd = setup
                .open(&msg, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())
                .unwrap();
            setup.close(fd).unwrap();
            setup.unlink(&msg).unwrap();
        }
    };
    let (action, ticks) = hare_bench::drive_rebalancer(&setup, &mut reb, 60_000, 8, burst);
    let migrated = action.is_some();
    if let Some(action) = action {
        // The spool churns creates/unlinks, so the planner must classify
        // it write-hot and migrate it — never serve it with read replicas.
        let hare_core::RebalanceAction::Migrate(p) = action else {
            panic!("write-churny spool must migrate, not replicate: {action:?}");
        };
        assert!(
            ticks >= 2,
            "hysteresis: a single probe must never migrate (committed on tick {ticks})"
        );
        assert_eq!(p.from, hot, "the spool's server must be the hot one");
        assert_ne!(p.to, hot);
        assert_eq!(setup.dir_owner(&spool).unwrap(), p.to);
    }

    let post = run_phase(&inst, &spool, &bg_dirs, rounds);
    drop(setup);
    inst.shutdown();

    Row {
        name,
        pre,
        post,
        migrated,
    }
}

fn main() {
    let cores = hare_bench::max_cores().min(8);
    let rows = [
        measure("all", Techniques::default(), cores),
        measure("no rebalancing", Techniques::without("rebalancing"), cores),
    ];

    println!(
        "micro_skew: hot-directory workload, before/after rebalance \
         ({cores} cores, {} dedicated servers)\n",
        cores / 2
    );
    let mut t = hare_bench::Table::new(&[
        "configuration",
        "pre RPCs/op",
        "pre cycles/op",
        "post RPCs/op",
        "post cycles/op",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.pre.rpcs_per_op),
            format!("{:.0}", r.pre.cycles_per_op),
            format!("{:.2}", r.post.rpcs_per_op),
            format!("{:.0}", r.post.cycles_per_op),
        ]);
    }
    t.print();

    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| hare_bench::BenchConfig {
            name: r.name.to_string(),
            metrics: vec![
                ("skew_pre_rpcs_per_op".into(), r.pre.rpcs_per_op),
                ("skew_pre_cycles_per_op".into(), r.pre.cycles_per_op),
                ("skew_post_rpcs_per_op".into(), r.post.rpcs_per_op),
                ("skew_post_cycles_per_op".into(), r.post.cycles_per_op),
            ],
        })
        .collect();
    hare_bench::emit::emit("micro_skew", cores, &configs);

    // The whole point of rebalancing: the hot-directory workload must
    // improve after the spool's shard migrates off the loaded server, and
    // the ablated configuration must not migrate at all.
    assert!(rows[0].migrated, "the rebalancer must migrate the spool");
    assert!(
        !rows[1].migrated,
        "rebalancing off: the pass must be a no-op"
    );
    assert!(
        rows[0].post.cycles_per_op < rows[0].pre.cycles_per_op,
        "migrating the hot directory must relieve the bottleneck ({:.0} -> {:.0} cycles/op)",
        rows[0].pre.cycles_per_op,
        rows[0].post.cycles_per_op
    );
    // Redirect amortization: the post-migration protocol may cost at most
    // one extra bounce per fresh worker, far under half an RPC per op.
    assert!(
        rows[0].post.rpcs_per_op < rows[0].pre.rpcs_per_op + 0.05,
        "redirects must stay amortized ({:.3} -> {:.3} RPCs/op)",
        rows[0].pre.rpcs_per_op,
        rows[0].post.rpcs_per_op
    );
}
