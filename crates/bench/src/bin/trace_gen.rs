//! `trace_gen`: regenerates the committed traces under `traces/`.
//!
//! The traces are build artifacts of this binary, checked in so benches
//! and tests replay fixed inputs. Run it from the repository root after
//! changing the trace format, the scenarios, or the dentry hash; CI runs
//! it and fails on a dirty `traces/` diff, so a drifted generator (or a
//! hash change silently un-pinning the shifting-hotspot scenario) cannot
//! go unnoticed. Everything here is a pure function of constants — no
//! wall clock, no ambient randomness.
//!
//! Three scenarios (see `docs/traces.md`):
//!
//! * **build_burst** — a parallel build: source tree extract, a burst of
//!   stat+read+creat compile jobs, a quiet link gap, then an incremental
//!   rebuild that is mostly stats.
//! * **mail_spool** — a maildir day: deliverers creat-in-tmp then rename
//!   into `new`, read and purge later; think times swell at midday.
//! * **shifting_hotspot** — the rebalancer's scenario: phase 1 hammers
//!   job directory A, phase 2 shifts the same mix to job directory B.
//!   Every directory is name-pinned (`hare_bench::pinned_name`) so the
//!   hot ones and the background all start on server 1 of a 4-server
//!   machine — `micro_trace` replays this and gates on the rebalancer
//!   migrating the hotspot away (twice) and then going quiet.

use hare_bench::pinned_name;
use hare_core::InodeId;
use hare_workloads::trace::{concat, synth_mix, MixSpec, MixWeights, Trace, TraceOp, TraceRecord};

/// Server count the shifting-hotspot trace is pinned for (micro_trace's
/// split machine: 8 cores, servers 0..4).
const NSERVERS: usize = 4;
/// The server every pinned directory starts on.
const HOT_SERVER: u16 = 1;

/// SplitMix64: the deterministic jitter source for the hand-rolled
/// scenarios (the synthetic mixes use the rand shim's ChaCha instead).
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn build_burst() -> Trace {
    const CLIENTS: usize = 6;
    const FILES: usize = 24; // sources per compile worker
    let mut j = Jitter(7);
    let mut records = Vec::new();
    let mut rec = |client: usize, think: u64, op: TraceOp| {
        records.push(TraceRecord { client, think, op });
    };
    for c in 0..CLIENTS {
        // Extract: the source tree appears in one tight burst.
        for f in 0..FILES {
            rec(
                c,
                j.range(1, 6),
                TraceOp::Creat {
                    path: format!("/src/c{c}f{f}.c"),
                    size: 2048,
                },
            );
        }
        // Compile: stat + read each source, write its object.
        for f in 0..FILES {
            let src = format!("/src/c{c}f{f}.c");
            rec(c, j.range(2, 12), TraceOp::Stat { path: src.clone() });
            rec(
                c,
                j.range(1, 4),
                TraceOp::Read {
                    path: src,
                    size: 2048,
                },
            );
            rec(
                c,
                j.range(20, 90), // the compile itself
                TraceOp::Creat {
                    path: format!("/obj/c{c}f{f}.o"),
                    size: 4096,
                },
            );
        }
        // Link gap: the machine goes quiet, then one big artifact.
        rec(
            c,
            j.range(4_000, 9_000),
            TraceOp::Creat {
                path: format!("/obj/prog{c}"),
                size: 16384,
            },
        );
        // Incremental rebuild: mostly stats, two files recompile.
        for f in 0..FILES {
            rec(
                c,
                j.range(1, 5),
                TraceOp::Stat {
                    path: format!("/src/c{c}f{f}.c"),
                },
            );
        }
        for f in [3usize, 11] {
            rec(
                c,
                j.range(20, 90),
                TraceOp::Creat {
                    path: format!("/obj/c{c}f{f}.o"),
                    size: 4096,
                },
            );
        }
    }
    Trace {
        name: "build-burst".into(),
        dirs: vec!["/src".into(), "/obj".into()],
        records,
    }
}

fn mail_spool() -> Trace {
    const DELIVERERS: usize = 3;
    let mut j = Jitter(11);
    let mut records = Vec::new();
    let mut rec = |client: usize, think: u64, op: TraceOp| {
        records.push(TraceRecord { client, think, op });
    };
    // Three day phases: (messages per deliverer, think range) — busy
    // morning, slow midday, busy evening.
    let phases: [(usize, (u64, u64)); 3] = [(30, (80, 300)), (12, (600, 1500)), (30, (80, 300))];
    for (serial, (msgs, think)) in phases.into_iter().enumerate() {
        for d in 0..DELIVERERS {
            for m in 0..msgs {
                let tmp = format!("/spool/tmp/d{d}m{serial}_{m}");
                let new = format!("/spool/new/d{d}m{serial}_{m}");
                rec(
                    d,
                    j.range(think.0, think.1),
                    TraceOp::Creat {
                        path: tmp.clone(),
                        size: 512,
                    },
                );
                rec(
                    d,
                    j.range(1, 8),
                    TraceOp::Rename {
                        old: tmp,
                        new: new.clone(),
                    },
                );
                // The pop: read and purge a little later.
                rec(
                    d,
                    j.range(think.0, think.1),
                    TraceOp::Read {
                        path: new.clone(),
                        size: 512,
                    },
                );
                rec(d, j.range(1, 10), TraceOp::Unlink { path: new });
            }
        }
        // The watcher polls the spool through the whole day.
        for _ in 0..msgs / 2 {
            rec(
                DELIVERERS,
                j.range(think.0 * 2, think.1 * 2),
                TraceOp::Readdir {
                    path: "/spool/new".into(),
                },
            );
        }
    }
    Trace {
        name: "mail-spool".into(),
        dirs: vec!["/spool".into(), "/spool/tmp".into(), "/spool/new".into()],
        records,
    }
}

/// The pinned directory set of the shifting-hotspot scenario: two hot job
/// directories plus six background directories, all starting on
/// [`HOT_SERVER`]. `micro_trace` recomputes the same names for its setup.
pub fn hotspot_dirs() -> (String, String, Vec<String>) {
    let pin = |prefix: &str| {
        format!(
            "/{}",
            pinned_name(InodeId::ROOT, true, prefix, HOT_SERVER, NSERVERS)
        )
    };
    let a = pin("jobs_a");
    let b = pin("jobs_b");
    let bg = (0..6).map(|i| pin(&format!("bg{i}x"))).collect();
    (a, b, bg)
}

fn shifting_hotspot() -> Trace {
    let (a, b, bg) = hotspot_dirs();
    // The scenario is job-queue churn: workers stat/creat/unlink
    // zero-length job markers. Metadata-only on purpose — the rebalancer
    // nominates a directory by its share of *dentry-shard* work in the hot
    // server's total, and file payload ops would dilute that share below
    // the policy bar. Weighting: the hot directory draws ~40% of the
    // traffic (clears the share bar while hot) and each background
    // directory under 10% — so once the hotspot migrates, the
    // still-loaded background server offers no candidate and the
    // rebalancer goes quiet. That convergence is what the micro_trace
    // gate asserts.
    let dirs = |hot: &str, cold: &str| {
        let mut d = vec![(hot.to_string(), 12u32), (cold.to_string(), 1)];
        d.extend(bg.iter().map(|g| (g.clone(), 3)));
        d
    };
    let phase = |name: &str, hot: &str, cold: &str, seed: u64| {
        synth_mix(&MixSpec {
            name: name.into(),
            clients: 4,
            ops_per_client: 260,
            seed,
            dirs: dirs(hot, cold),
            think: 20..100,
            weights: MixWeights {
                creat: 5,
                read: 1,
                stat: 4,
                unlink: 3,
                rename: 2,
                readdir: 1,
            },
            file_size: 0,
        })
    };
    concat(
        "shifting-hotspot",
        &[phase("p1", &a, &b, 1001), phase("p2", &b, &a, 1002)],
    )
}

fn main() {
    std::fs::create_dir_all("traces").expect("create traces/");
    for t in [build_burst(), mail_spool(), shifting_hotspot()] {
        let path = format!("traces/{}.trace", t.name.replace('-', "_"));
        std::fs::write(&path, t.to_text()).expect("write trace");
        println!(
            "{path}: {} records, {} clients, {} dirs",
            t.records.len(),
            t.nclients(),
            t.dirs.len()
        );
    }
}
