//! Figure 5: operation breakdown for the benchmarks.
//!
//! Runs every workload once (4 processes on a 4-core timeshare machine)
//! and prints the percentage mix of file system operations each issues —
//! the paper's point being that "the breakdown of operations is
//! significantly different across the various benchmarks".

use hare_core::HareConfig;
use hare_workloads::ctx::{OpKind, ALL_OPS};
use hare_workloads::Workload;

fn main() {
    let s = hare_bench::scale();
    let cores = 4;

    // Columns: the categories that dominate at least one workload.
    let show: Vec<OpKind> = ALL_OPS.to_vec();
    let mut headers: Vec<&str> = vec!["benchmark", "total ops"];
    headers.extend(show.iter().map(|k| k.label()));
    let mut table = hare_bench::Table::new(&headers);

    for wl in Workload::ALL {
        let r = hare_bench::run_hare(HareConfig::timeshare(cores), wl, cores, &s);
        let total = r.stats.total();
        let mut row = vec![wl.name().to_string(), total.to_string()];
        for k in &show {
            let pct = 100.0 * r.stats.get(*k) as f64 / total.max(1) as f64;
            row.push(if pct >= 0.05 {
                format!("{pct:.1}%")
            } else {
                "-".to_string()
            });
        }
        table.row(row);
    }

    println!("Figure 5: operation breakdown per benchmark (Hare, {cores} cores timeshare)\n");
    table.print();
    println!(
        "\nNote: paper Figure 5 is a stacked-percentage bar chart; rows above are the same data."
    );
}
