//! §5.3.3 microbenchmark: the cost of one `rename()` in the same-core
//! (timeshare) vs. separate-core (split) placements.
//!
//! Paper measurements on the real hardware: 7.204 µs per rename when the
//! client and file server time-share a core, 4.171 µs on separate cores —
//! the difference being dominated by context switches. The RPC pair behind
//! rename is ADD_MAP (2434 cycles client / 1211 server) and RM_MAP
//! (1767 / 756); messaging overhead ≈ 1000 cycles per operation.
//!
//! The calibration rows run with the batched transport *disabled*, because
//! the paper's measurement is of the two-RPC protocol; a third row shows
//! what the batched AddMap+RmMap exchange does to the same-core case.

use fsapi::{ProcFs, System};
use hare_core::{HareConfig, Techniques};
use hare_sched::HareSystem;

fn measure(cfg: HareConfig, label: &str) -> f64 {
    let iters = 2000u64;
    let sys = HareSystem::start(cfg);
    let root = sys.start_proc();
    fsapi::write_file(&root, "/a", b"x").expect("setup");
    sys.sync_cores();
    let t0 = sys.elapsed_cycles();
    for i in 0..iters {
        if i % 2 == 0 {
            root.rename("/a", "/b").expect("rename");
        } else {
            root.rename("/b", "/a").expect("rename");
        }
    }
    let cycles = sys.elapsed_cycles() - t0;
    drop(root);
    sys.shutdown();
    let us = cycles as f64 / iters as f64 / vtime::CYCLES_PER_US as f64;
    println!("{label}: {us:.3} us per rename ({} cycles)", cycles / iters);
    us
}

fn main() {
    println!("rename() latency, client library to file server\n");
    let mut same_cfg = HareConfig::timeshare(1);
    same_cfg.techniques = Techniques::without("batching");
    let mut split_cfg = HareConfig::split(2, 1);
    split_cfg.techniques = Techniques::without("batching");
    let same = measure(same_cfg, "same core (timeshare)");
    let split = measure(split_cfg, "separate cores (split)");
    println!(
        "\nratio: {:.2}x (paper: 7.204 us / 4.171 us = 1.73x)",
        same / split
    );
    let batched = measure(
        HareConfig::timeshare(1),
        "\nsame core, batched AddMap+RmMap",
    );
    println!(
        "batching saves {:.2}x on the same-core pair",
        same / batched
    );
}
