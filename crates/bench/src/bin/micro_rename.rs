//! §5.3.3 microbenchmark: the cost of one `rename()` in the same-core
//! (timeshare) vs. separate-core (split) placements.
//!
//! Paper measurements on the real hardware: 7.204 µs per rename when the
//! client and file server time-share a core, 4.171 µs on separate cores —
//! the difference being dominated by context switches. The RPC pair behind
//! rename is ADD_MAP (2434 cycles client / 1211 server) and RM_MAP
//! (1767 / 756); messaging overhead ≈ 1000 cycles per operation.
//!
//! The calibration rows run with the batched transport *disabled*, because
//! the paper's measurement is of the two-RPC protocol; a third row shows
//! what the batched AddMap+RmMap exchange does to the same-core case.
//!
//! Each configuration's transport exchanges per rename (a deterministic
//! protocol property: the warm loop's lookup is a cache hit, so a rename
//! is the ADD_MAP + RM_MAP pair — 2 RPCs unbatched, 1 exchange with the
//! pair batched) and cycles per rename go to `BENCH_micro_rename.json`;
//! with `HARE_GATE_BASELINE` set, the run is gated against the committed
//! baseline first (CI perf smoke).

use fsapi::{ProcFs, System};
use hare_core::{HareConfig, Techniques};
use hare_sched::HareSystem;

/// Measured cost of one rename under `cfg`: (µs, cycles, RPC-equivalents).
fn measure(cfg: HareConfig, label: &str) -> (f64, f64, f64) {
    let iters = 2000u64;
    let sys = HareSystem::start(cfg);
    let root = sys.start_proc();
    fsapi::write_file(&root, "/a", b"x").expect("setup");
    sys.sync_cores();
    let sends0 = sys.instance().machine().msg_stats.sends();
    let t0 = sys.elapsed_cycles();
    for i in 0..iters {
        if i % 2 == 0 {
            root.rename("/a", "/b").expect("rename");
        } else {
            root.rename("/b", "/a").expect("rename");
        }
    }
    let cycles = sys.elapsed_cycles() - t0;
    let rpcs = (sys.instance().machine().msg_stats.sends() - sends0) as f64 / 2.0 / iters as f64;
    drop(root);
    sys.shutdown();
    let per_op = cycles as f64 / iters as f64;
    let us = per_op / vtime::CYCLES_PER_US as f64;
    println!(
        "{label}: {us:.3} us per rename ({} cycles, {rpcs:.2} RPCs/op)",
        per_op as u64
    );
    (us, per_op, rpcs)
}

fn main() {
    println!("rename() latency, client library to file server\n");
    let mut same_cfg = HareConfig::timeshare(1);
    same_cfg.techniques = Techniques::without("batching");
    let mut split_cfg = HareConfig::split(2, 1);
    split_cfg.techniques = Techniques::without("batching");
    let (same, same_cycles, same_rpcs) = measure(same_cfg, "same core (timeshare)");
    let (split, split_cycles, split_rpcs) = measure(split_cfg, "separate cores (split)");
    println!(
        "\nratio: {:.2}x (paper: 7.204 us / 4.171 us = 1.73x)",
        same / split
    );
    let (batched, batched_cycles, batched_rpcs) = measure(
        HareConfig::timeshare(1),
        "\nsame core, batched AddMap+RmMap",
    );
    println!(
        "batching saves {:.2}x on the same-core pair",
        same / batched
    );

    let configs: Vec<hare_bench::BenchConfig> = [
        ("same core unbatched", same_cycles, same_rpcs),
        ("split unbatched", split_cycles, split_rpcs),
        ("same core batched", batched_cycles, batched_rpcs),
    ]
    .into_iter()
    .map(|(name, cycles, rpcs)| hare_bench::BenchConfig {
        name: name.to_string(),
        metrics: vec![
            ("rename_rpcs_per_op".into(), rpcs),
            ("rename_cycles_per_op".into(), cycles),
        ],
    })
    .collect();
    hare_bench::emit::emit("micro_rename", 1, &configs);
}
