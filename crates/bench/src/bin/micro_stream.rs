//! `micro_stream`: sequential large-file streaming through the block data
//! plane — the workload the striped extent map exists for.
//!
//! One client writes a multi-megabyte file in 64 KiB chunks and then
//! streams it back sequentially, on the paper's *split* configuration
//! (dedicated server cores). Three configurations:
//!
//! - `striped` — `stripe_width = 4`: the file's extent map spreads stripe
//!   service over four servers; writes fan out per-stripe through the
//!   batch transport and reads run the windowed readahead pipeline.
//! - `no readahead` — same extent map, but the pipeline window is 1: each
//!   stripe fetch completes before the next is sent, so the four servers
//!   never overlap. Isolates window depth from stripe addressing.
//! - `all-home` — the default `stripe_width = 1` paper layout: every block
//!   lives (and is serviced) at the home server; reads go through the
//!   core's private cache, writes are dirty-local until close.
//!
//! The file is 4× the 1 MiB private cache, so the all-home read path
//! misses on every block (an LRU sweep) — this is a *data-bandwidth*
//! comparison, not a cache-hit one.
//!
//! RPCs/MB is the *hard* gate metric (stripe counts are deterministic:
//! ceil(bytes/stripe_unit) reads, the same writes, plus open/close/alloc
//! amortized over the file); cycles/MB is warn-only as usual. The metric
//! keys end in `_rpcs_per_op`/`_cycles_per_op` — the gate's suffix
//! convention — with "op" meaning one MiB moved. Results go to
//! `BENCH_micro_stream.json`; with `HARE_GATE_BASELINE` set the run is
//! gated against the committed baseline first (CI perf smoke).

use fsapi::{Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance, Techniques};

/// Read chunk: one stripe unit, so the readahead window (not the request
/// size) decides how many fetches are in flight.
const CHUNK: usize = 64 * 1024;

/// Write chunk: four stripe units, so each write call fans its stripes
/// out across all four servers through the batch transport (a write is
/// synchronous — sub-stripe writes would serialize one server at a time).
const WCHUNK: usize = 256 * 1024;

/// File size in MiB, scaled by `HARE_SCALE` (quick still exceeds the
/// 1 MiB private cache so all-home reads stay cold).
fn file_mb() -> usize {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => 2,
        _ => 4,
    }
}

struct Phase {
    rpcs_per_mb: f64,
    cycles_per_mb: f64,
}

struct Row {
    name: &'static str,
    write: Phase,
    read: Phase,
}

/// Streams one write pass and one read pass of `/stream/data`, measuring
/// each as transport exchanges and virtual cycles per MiB (open, close,
/// and block allocation included — they amortize over the file and keep
/// the counts deterministic).
fn measure(name: &'static str, techniques: Techniques, stripe_width: usize, cores: usize) -> Row {
    let mb = file_mb();
    let mut cfg = HareConfig::split(cores, cores / 2);
    cfg.techniques = techniques;
    cfg.stripe_width = stripe_width;
    let inst = HareInstance::start(cfg);
    let machine = inst.machine();
    let core = inst.config().app_cores[0];
    let c = inst.new_client(core).unwrap();
    c.mkdir("/stream", Mode::default()).unwrap();
    let chunk = vec![0xabu8; WCHUNK];
    let nchunks = mb * (1 << 20) / WCHUNK;

    machine.sync();
    let (s0, t0) = (machine.msg_stats.sends(), machine.sync());
    let fd = c
        .open(
            "/stream/data",
            OpenFlags::CREAT | OpenFlags::WRONLY,
            Mode::default(),
        )
        .unwrap();
    for _ in 0..nchunks {
        assert_eq!(c.write(fd, &chunk).unwrap(), WCHUNK);
    }
    c.close(fd).unwrap();
    let write = Phase {
        rpcs_per_mb: (machine.msg_stats.sends() - s0) as f64 / 2.0 / mb as f64,
        cycles_per_mb: (machine.sync() - t0) as f64 / mb as f64,
    };

    let (s0, t0) = (machine.msg_stats.sends(), machine.sync());
    let fd = c
        .open("/stream/data", OpenFlags::RDONLY, Mode::default())
        .unwrap();
    let mut buf = vec![0u8; CHUNK];
    let mut total = 0usize;
    loop {
        let n = c.read(fd, &mut buf).unwrap();
        if n == 0 {
            break;
        }
        total += n;
    }
    c.close(fd).unwrap();
    assert_eq!(total, mb << 20, "full file read back");
    let read = Phase {
        rpcs_per_mb: (machine.msg_stats.sends() - s0) as f64 / 2.0 / mb as f64,
        cycles_per_mb: (machine.sync() - t0) as f64 / mb as f64,
    };

    drop(c);
    inst.shutdown();
    Row { name, write, read }
}

fn main() {
    let cores = hare_bench::max_cores().min(8);
    let rows = [
        measure("striped", Techniques::default(), 4, cores),
        measure("no readahead", Techniques::without("readahead"), 4, cores),
        measure("all-home", Techniques::default(), 1, cores),
    ];

    println!(
        "micro_stream: sequential {} MiB stream, split machine \
         ({cores} cores, {} dedicated servers)\n",
        file_mb(),
        cores / 2
    );
    let mut t = hare_bench::Table::new(&[
        "configuration",
        "write RPCs/MB",
        "write cycles/MB",
        "read RPCs/MB",
        "read cycles/MB",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.write.rpcs_per_mb),
            format!("{:.0}", r.write.cycles_per_mb),
            format!("{:.2}", r.read.rpcs_per_mb),
            format!("{:.0}", r.read.cycles_per_mb),
        ]);
    }
    t.print();
    println!(
        "\nstriped sequential read speedup vs all-home: {}",
        hare_bench::ratio(rows[2].read.cycles_per_mb / rows[0].read.cycles_per_mb)
    );

    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| hare_bench::BenchConfig {
            name: r.name.to_string(),
            metrics: vec![
                ("write_mb_rpcs_per_op".into(), r.write.rpcs_per_mb),
                ("write_mb_cycles_per_op".into(), r.write.cycles_per_mb),
                ("read_mb_rpcs_per_op".into(), r.read.rpcs_per_mb),
                ("read_mb_cycles_per_op".into(), r.read.cycles_per_mb),
            ],
        })
        .collect();
    hare_bench::emit::emit("micro_stream", cores, &configs);

    // The tentpole claim: four stripe servers stream one file at least
    // twice as fast as the single home server (virtual wall-clock).
    assert!(
        rows[0].read.cycles_per_mb * 2.0 <= rows[2].read.cycles_per_mb,
        "striped read must be >= 2x all-home ({:.0} vs {:.0} cycles/MB)",
        rows[0].read.cycles_per_mb,
        rows[2].read.cycles_per_mb
    );
    // And the window is load-bearing: readahead depth 1 serializes the
    // stripe servers again.
    assert!(
        rows[0].read.cycles_per_mb < rows[1].read.cycles_per_mb,
        "readahead must beat window=1 ({:.0} vs {:.0} cycles/MB)",
        rows[0].read.cycles_per_mb,
        rows[1].read.cycles_per_mb
    );
}
