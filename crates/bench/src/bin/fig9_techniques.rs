//! Figures 9–14: importance of Hare's five techniques.
//!
//! For each technique, every benchmark runs on the full timeshare machine
//! with the technique enabled and disabled; the ratio (enabled throughput /
//! disabled throughput) is the paper's "relative performance improvement".
//! Figure 9 summarizes min/avg/median/max per technique; Figures 10–14 are
//! the per-benchmark detail, printed when `--detail <technique>` is given.
//!
//! Paper summary rows for reference:
//!
//! | technique | min | avg | median | max |
//! |---|---|---|---|---|
//! | Directory distribution | 0.97 | 1.93 | 1.37 | 5.50 |
//! | Directory broadcast | 0.99 | 1.43 | 1.07 | 3.93 |
//! | Direct cache access | 0.98 | 1.18 | 1.01 | 2.39 |
//! | Directory cache | 0.87 | 1.44 | 1.42 | 2.42 |
//! | Creation affinity | 0.96 | 1.02 | 1.00 | 1.16 |
//!
//! Ten further rows ablate this reproduction's own extensions (no paper
//! counterpart): the coalesced lookup+open RPC, the negative dentry
//! cache, the coalesced lookup+stat RPC, the batched RPC transport,
//! server-side chained path resolution, terminal-op fusion for chained
//! resolution, the dynamic placement subsystem (whose win is skewed
//! hot-directory workloads — `micro_skew` — not the fig suite; the row
//! mainly proves the toggle costs nothing when no migration happens),
//! the striped data plane's two toggles (whose win is large
//! sequential streams — `micro_stream` — and which are inert at the
//! default `stripe_width = 1`; the rows prove exactly that), and read
//! replication of hot shards (whose win is read-heavy skew —
//! `micro_replica` — and which is inert until the rebalancer plants a
//! replica; the row proves the toggle is free on the fig suite).
//!
//! `--list` prints the registered toggle keys, one per line — the CI
//! ablation smoke loops over this output, so adding a row here is all it
//! takes to get a new toggle smoked (no workflow edit).

use hare_workloads::Workload;

const TECHNIQUES: [(&str, &str); 15] = [
    ("distribution", "Directory distribution"),
    ("broadcast", "Directory broadcast"),
    ("direct_access", "Direct cache access"),
    ("dircache", "Directory cache"),
    ("affinity", "Creation affinity"),
    ("coalesced_open", "Coalesced lookup+open"),
    ("neg_dircache", "Negative dentry cache"),
    ("coalesced_stat", "Coalesced lookup+stat"),
    ("batching", "Batched RPC transport"),
    ("chained_resolution", "Chained path resolution"),
    ("fused_terminal", "Fused chain terminal op"),
    ("rebalancing", "Dynamic placement / rebalancing"),
    ("striping", "Striped data plane"),
    ("readahead", "Stripe readahead pipeline"),
    ("replication", "Read replication of hot shards"),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        // Machine-readable toggle registry for the self-extending CI
        // smoke loop.
        for (key, _) in TECHNIQUES {
            println!("{key}");
        }
        return;
    }
    let detail = args
        .iter()
        .position(|a| a == "--detail")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let s = hare_bench::scale();
    let cores = hare_bench::max_cores();

    let run_set: Vec<(&str, &str)> = match &detail {
        Some(d) => TECHNIQUES.iter().filter(|(k, _)| k == d).copied().collect(),
        None => TECHNIQUES.to_vec(),
    };
    assert!(!run_set.is_empty(), "unknown technique {detail:?}");

    let mut summary = hare_bench::Table::new(&["Technique", "Min", "Avg", "Median", "Max"]);

    // The all-techniques-enabled numbers are shared by every ablation row.
    let mut baseline = std::collections::HashMap::new();
    for wl in Workload::ALL {
        baseline.insert(
            wl.name(),
            hare_bench::run_hare_timeshare(cores, wl, &s).throughput(),
        );
        eprintln!("baseline done: {wl}");
    }

    for (key, label) in run_set {
        let mut ratios = Vec::new();
        let mut per_bench = hare_bench::Table::new(&["benchmark", "with / without"]);
        for wl in Workload::ALL {
            let on = baseline[wl.name()];
            let off = hare_bench::run_hare_without(key, cores, wl, &s).throughput();
            let r = on / off;
            ratios.push(r);
            per_bench.row(vec![wl.name().to_string(), hare_bench::ratio(r)]);
            eprintln!("done: {label} / {wl}");
        }
        let (min, avg, median, max) = hare_bench::summarize(&ratios);
        summary.row(vec![
            label.to_string(),
            hare_bench::ratio(min),
            hare_bench::ratio(avg),
            hare_bench::ratio(median),
            hare_bench::ratio(max),
        ]);
        if detail.is_some() {
            println!("\nFigure detail: throughput of Hare with {label} (normalized to without)\n");
            per_bench.print();
        }
    }

    println!("\nFigure 9: relative improvement from each technique ({cores} cores timeshare)\n");
    summary.print();
}
