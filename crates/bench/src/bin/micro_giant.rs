//! `micro_giant`: big-machine hot paths over a giant tree.
//!
//! PR 8's scale test: a ~1M-entry directory tree (256 distributed
//! directories × 4096 files at bench scale) created, walked, statted,
//! listed, and removed on a 64+-core machine. The point of the gate is
//! the *O(owned shards)* property: every `_rpcs_per_op` metric below is
//! independent of the machine's server count because the directories are
//! sharded a fixed width (4 and 8), so the CI smoke lane reproduces the
//! committed 64-core numbers on an 8-core runner exactly. Pagination is
//! exercised by shrinking `list_page_max` so every shard needs exactly
//! two `ListShard` pages regardless of scale, and — at bench scale — by a
//! flat 131072-entry directory listed through the default page bound.
//!
//! Results go to `BENCH_micro_giant.json`; with `HARE_GATE_BASELINE` set
//! the run is gated first (RPC metrics hard, cycle metrics warn-only).
//!
//! Scale: `HARE_SCALE=quick` shrinks the tree to 16×64 entries for the
//! debug/CI lane; the full 1M-entry tree is meant for release builds.

use fsapi::{MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance};
use std::sync::Arc;

/// Tree shape: `dirs` distributed directories of `files` entries each,
/// plus (bench only) one flat directory of `flat` entries.
struct Shape {
    dirs: usize,
    files: usize,
    flat: usize,
}

fn shape() -> Shape {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => Shape {
            dirs: 16,
            files: 64,
            flat: 0,
        },
        _ => Shape {
            dirs: 256,
            files: 4096,
            flat: 131072,
        },
    }
}

/// One width configuration's measurements.
struct Row {
    name: String,
    metrics: Vec<(String, f64)>,
}

/// Runs `work(thread_index, client)` on `nthreads` parallel clients (the
/// bulk tree build/teardown). Unmeasured: broadcast invalidation traffic
/// between concurrent clients depends on thread interleaving, so the
/// gated per-op numbers come from serial probe batches instead.
fn parallel_phase(
    inst: &Arc<HareInstance>,
    cores: usize,
    nthreads: usize,
    work: impl Fn(usize, &dyn ProcFs) + Sync,
) {
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let work = &work;
            s.spawn(move || {
                let c = inst.new_client(t * cores / nthreads).unwrap();
                work(t, &c);
            });
        }
    });
}

fn create_empty(c: &dyn ProcFs, path: &str) {
    let fd = c
        .open(path, OpenFlags::CREAT | OpenFlags::WRONLY, Mode::default())
        .unwrap();
    c.close(fd).unwrap();
}

fn measure(width: usize, cores: usize, sh: &Shape) -> Row {
    let nthreads = cores.min(8);
    let mut cfg = HareConfig::timeshare(cores);
    cfg.dir_shard_width = width;
    // Two ListShard pages per shard at every scale: the pagination cost is
    // part of the pinned numbers without tying them to the tree size.
    cfg.list_page_max = (sh.files / width / 2).max(1);
    let page_max = cfg.list_page_max;
    let inst = HareInstance::start(cfg);

    let setup = inst.new_client(0).unwrap();
    setup.mkdir("/giant", Mode::default()).unwrap();
    for d in 0..sh.dirs {
        setup
            .mkdir_opts(
                &format!("/giant/d{d}"),
                Mode::default(),
                MkdirOpts::DISTRIBUTED,
            )
            .unwrap();
    }
    setup
        .mkdir_opts("/giant/probe", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    if sh.flat > 0 {
        setup
            .mkdir_opts("/giant/flat", Mode::default(), MkdirOpts::DISTRIBUTED)
            .unwrap();
    }
    drop(setup);

    // Bulk create: the whole tree, directories split across parallel
    // clients (unmeasured — see parallel_phase).
    parallel_phase(&inst, cores, nthreads, |t, c| {
        for d in (t..sh.dirs).step_by(nthreads) {
            for f in 0..sh.files {
                create_empty(c, &format!("/giant/d{d}/f{f}"));
            }
        }
        for f in (t..sh.flat).step_by(nthreads) {
            create_empty(c, &format!("/giant/flat/f{f}"));
        }
    });

    // Measured create: a serial probe batch on the now-giant machine with
    // a single registered client, so the counts are deterministic.
    let nprobe = 256usize;
    let probe = inst.new_client(0).unwrap();
    create_empty(&probe, "/giant/probe/warm");
    let s0 = inst.machine().msg_stats.sends();
    let t0 = probe.vnow();
    for i in 0..nprobe {
        create_empty(&probe, &format!("/giant/probe/p{i}"));
    }
    let create_rpcs = (inst.machine().msg_stats.sends() - s0) as f64 / 2.0 / nprobe as f64;
    let create_cycles = (probe.vnow() - t0) as f64 / nprobe as f64;

    // Walk: cold-cache stat of one leaf per sampled directory, a fresh
    // client each so every sample pays the full resolution.
    let samples: Vec<String> = (0..sh.dirs.min(64))
        .map(|d| format!("/giant/d{d}/f{}", d % sh.files))
        .collect();
    let mut walk_sends = 0u64;
    let mut walk_cycles = 0u64;
    for path in &samples {
        let c = inst.new_client(0).unwrap();
        let s0 = inst.machine().msg_stats.sends();
        let t0 = c.vnow();
        c.stat(path).unwrap();
        walk_sends += inst.machine().msg_stats.sends() - s0;
        walk_cycles += c.vnow() - t0;
        drop(c);
    }
    let walk_rpcs = walk_sends as f64 / 2.0 / samples.len() as f64;
    let walk_cycles = walk_cycles as f64 / samples.len() as f64;

    // Warm stat: same path, dircache-hot client.
    let c = inst.new_client(0).unwrap();
    c.stat("/giant/d0/f0").unwrap();
    let nstats = 256u64;
    let s0 = inst.machine().msg_stats.sends();
    let t0 = c.vnow();
    for _ in 0..nstats {
        c.stat("/giant/d0/f0").unwrap();
    }
    let stat_rpcs = (inst.machine().msg_stats.sends() - s0) as f64 / 2.0 / nstats as f64;
    let stat_cycles = (c.vnow() - t0) as f64 / nstats as f64;

    // List: readdir every directory on one warm client. Per call this is
    // one shard lookup plus `width` shard sweeps of exactly two pages.
    let t0 = c.vnow();
    let s0 = inst.machine().msg_stats.sends();
    let mut listed = 0usize;
    for d in 0..sh.dirs {
        listed += c.readdir(&format!("/giant/d{d}")).unwrap().len();
    }
    assert_eq!(
        listed,
        sh.dirs * sh.files,
        "giant tree listing lost entries"
    );
    let list_rpcs = (inst.machine().msg_stats.sends() - s0) as f64 / 2.0 / sh.dirs as f64;
    let list_cycles = (c.vnow() - t0) as f64 / sh.dirs as f64;

    // The flat directory (bench scale): large enough that every shard
    // needs many pages at the *same* page bound as above, proving a giant
    // listing really is paged. The expected exchange count is computed
    // from the real per-shard entry counts (hashing skews them, so a
    // uniform-split formula would be off by the odd boundary page): one
    // dir lookup plus, for every shard, one exchange per `page_max`-sized
    // page — which also means no reply ever exceeded the page bound.
    if sh.flat > 0 {
        // Measure first — the name "flat" must still be cold in this
        // client's dircache so the listing pays its one dir lookup.
        let s0 = inst.machine().msg_stats.sends();
        assert_eq!(c.readdir("/giant/flat").unwrap().len(), sh.flat);
        let exch = (inst.machine().msg_stats.sends() - s0) / 2;

        let st = c.stat("/giant/flat").unwrap();
        let flat_ino = hare_core::InodeId {
            server: st.server,
            num: st.ino,
        };
        let mut per_shard = std::collections::HashMap::new();
        for f in 0..sh.flat {
            let s = hare_core::dentry_shard_in(flat_ino, true, &format!("f{f}"), width, cores);
            *per_shard.entry(s).or_insert(0usize) += 1;
        }
        let expected: usize = 1 + hare_core::dir_shard_servers(flat_ino, width, cores)
            .iter()
            .map(|s| {
                per_shard
                    .get(s)
                    .copied()
                    .unwrap_or(0)
                    .div_ceil(page_max)
                    .max(1)
            })
            .sum::<usize>();
        assert!(
            expected > 1 + width,
            "flat dir must take multiple pages on some shard"
        );
        assert_eq!(
            exch as usize, expected,
            "flat listing exchanges must match the page math"
        );
    }
    drop(c);

    // Measured remove: the serial probe batch again (the creator's
    // dircache is warm, as a steady-state unlink would be).
    let s0 = inst.machine().msg_stats.sends();
    let t0 = probe.vnow();
    for i in 0..nprobe {
        probe.unlink(&format!("/giant/probe/p{i}")).unwrap();
    }
    let rm_rpcs = (inst.machine().msg_stats.sends() - s0) as f64 / 2.0 / nprobe as f64;
    let rm_cycles = (probe.vnow() - t0) as f64 / nprobe as f64;
    probe.unlink("/giant/probe/warm").unwrap();
    probe.rmdir("/giant/probe").unwrap();
    drop(probe);

    // Bulk teardown: every file, then every directory, split like the
    // create (unmeasured, but every op is checked).
    parallel_phase(&inst, cores, nthreads, |t, c| {
        for d in (t..sh.dirs).step_by(nthreads) {
            for f in 0..sh.files {
                c.unlink(&format!("/giant/d{d}/f{f}")).unwrap();
            }
            c.rmdir(&format!("/giant/d{d}")).unwrap();
        }
        for f in (t..sh.flat).step_by(nthreads) {
            c.unlink(&format!("/giant/flat/f{f}")).unwrap();
        }
    });
    // The flat dir can only go once *every* thread's unlink slice is done.
    if sh.flat > 0 {
        let c = inst.new_client(0).unwrap();
        c.rmdir("/giant/flat").unwrap();
    }
    inst.shutdown();

    Row {
        name: format!("width {width}"),
        metrics: vec![
            ("create_rpcs_per_op".into(), create_rpcs),
            ("create_cycles_per_op".into(), create_cycles),
            ("walk_rpcs_per_op".into(), walk_rpcs),
            ("walk_cycles_per_op".into(), walk_cycles),
            ("stat_rpcs_per_op".into(), stat_rpcs),
            ("stat_cycles_per_op".into(), stat_cycles),
            ("list_rpcs_per_op".into(), list_rpcs),
            ("list_cycles_per_op".into(), list_cycles),
            ("rm_rpcs_per_op".into(), rm_rpcs),
            ("rm_cycles_per_op".into(), rm_cycles),
        ],
    }
}

fn main() {
    let sh = shape();
    // The quick lane runs small machines; the real bench wants the
    // paper's "what if the machine were huge" question answered at 64+
    // simulated cores.
    let cores = match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => hare_bench::max_cores(),
        _ => hare_bench::max_cores().clamp(64, 256),
    };
    let rows = [measure(4, cores, &sh), measure(8, cores, &sh)];

    println!(
        "micro_giant: {} dirs x {} files (+{} flat) on {cores} cores timeshare\n",
        sh.dirs, sh.files, sh.flat
    );
    let mut t =
        hare_bench::Table::new(&["configuration", "create", "walk", "stat", "list/dir", "rm"]);
    for r in &rows {
        let m = |k: &str| {
            r.metrics
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        t.row(vec![
            r.name.clone(),
            format!("{:.2}", m("create_rpcs_per_op")),
            format!("{:.2}", m("walk_rpcs_per_op")),
            format!("{:.2}", m("stat_rpcs_per_op")),
            format!("{:.2}", m("list_rpcs_per_op")),
            format!("{:.2}", m("rm_rpcs_per_op")),
        ]);
    }
    t.print();

    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| hare_bench::BenchConfig {
            name: r.name.clone(),
            metrics: r.metrics.clone(),
        })
        .collect();
    hare_bench::emit::emit("micro_giant", cores, &configs);

    // Nightly archive lane: with HARE_TRACE_DIR set, rerun one probe of
    // each measured op with op tracing on and archive the span trees (the
    // bulk phases stay untraced — the probes are what the gate pins).
    if let Ok(dir) = std::env::var("HARE_TRACE_DIR") {
        archive_trace(cores, &dir);
    }
}

/// Boots a small traced replica of the probe phases (create, cold walk,
/// warm stat, paged list, unlink) and writes the Chrome trace-event JSON
/// to `<dir>/TRACE_micro_giant.json`.
fn archive_trace(cores: usize, dir: &str) {
    let mut cfg = HareConfig::timeshare(cores);
    cfg.dir_shard_width = 8;
    cfg.list_page_max = 4;
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    setup.mkdir("/giant", Mode::default()).unwrap();
    setup
        .mkdir_opts("/giant/probe", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for f in 0..16 {
        create_empty(&setup, &format!("/giant/probe/f{f}"));
    }
    drop(setup);
    inst.machine().otrace.reset();
    let c = inst.new_client(0).unwrap();
    create_empty(&c, "/giant/probe/p0");
    c.stat("/giant/probe/f0").unwrap();
    c.stat("/giant/probe/f0").unwrap();
    assert_eq!(c.readdir("/giant/probe").unwrap().len(), 17);
    c.unlink("/giant/probe/p0").unwrap();
    drop(c);
    let json = inst.machine().otrace.to_chrome_json();
    inst.shutdown();
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {dir}: {e}"));
    let path = format!("{dir}/TRACE_micro_giant.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("archived traced probe round to {path}");
}
