//! Figure 4: SLOC breakdown for Hare components.
//!
//! The paper reports (for its C/C++ prototype): Messaging 1,536; Syscall
//! Interception 2,542; Client Library 2,607; File System Server 5,960;
//! Scheduling 930; Total 13,575. This binary counts the corresponding Rust
//! components of this reproduction (non-blank, non-comment lines, test
//! modules excluded from the per-component counts).

use std::path::{Path, PathBuf};

/// Counts non-blank, non-comment source lines of one file, stopping at a
/// `#[cfg(test)]` module (tests are not part of the system SLOC the paper
/// counts).
fn sloc_of(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut n = 0;
    for line in text.lines() {
        let t = line.trim();
        if t == "#[cfg(test)]" {
            break;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        n += 1;
    }
    n
}

fn sloc_of_tree(root: &Path) -> usize {
    let mut total = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "tests") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                total += sloc_of(&p);
            }
        }
    }
    total
}

fn main() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    // Map this reproduction's crates onto the paper's five components.
    let components: &[(&str, &[&str], usize)] = &[
        ("Messaging", &["crates/msg/src"], 1536),
        (
            // The paper's interception layer redirects syscalls into the
            // client library; our equivalent boundary is the fsapi traits
            // plus the simulated-hardware layers the prototype got from
            // Linux for free.
            "Syscall interface + simulated hw",
            &["crates/fsapi/src", "crates/nccmem/src", "crates/vtime/src"],
            2542,
        ),
        ("Client Library", &["crates/core/src/client"], 2607),
        (
            "File System Server",
            &[
                "crates/core/src/server",
                "crates/core/src/proto.rs",
                "crates/core/src/machine.rs",
                "crates/core/src/rpc.rs",
                "crates/core/src/instance.rs",
                "crates/core/src/config.rs",
                "crates/core/src/types.rs",
            ],
            5960,
        ),
        ("Scheduling", &["crates/sched/src"], 930),
    ];

    let mut table = hare_bench::Table::new(&["Component", "Paper SLOC", "This repo SLOC"]);
    let mut paper_total = 0;
    let mut ours_total = 0;
    for (name, paths, paper) in components {
        let ours: usize = paths
            .iter()
            .map(|p| {
                let full = repo.join(p);
                if full.is_dir() {
                    sloc_of_tree(&full)
                } else {
                    sloc_of(&full)
                }
            })
            .sum();
        paper_total += paper;
        ours_total += ours;
        table.row(vec![name.to_string(), paper.to_string(), ours.to_string()]);
    }
    table.row(vec![
        "Total".into(),
        paper_total.to_string(),
        ours_total.to_string(),
    ]);
    println!("Figure 4: SLOC breakdown for Hare components");
    println!("(paper prototype is C/C++; this reproduction is Rust)\n");
    table.print();
}
