//! `micro_stat`: RPCs-per-op and virtual cycles-per-op for the cold-cache
//! `stat` hot path and the batched readdir+stat (`ls -l`) pattern, per
//! technique configuration.
//!
//! This is the measurement harness for the coalesced `LookupStat` RPC and
//! the batched RPC transport: it reports what one cold-cache `stat()`
//! costs (the `LookupStat` win is depth+1 instead of depth+2 RPCs when the
//! dentry shard also stores the inode), and what listing-and-statting a
//! distributed directory costs (the batching win is one transport exchange
//! per server instead of one RPC per entry). Results are printed as a
//! table and written to `BENCH_micro_stat.json` so the repository keeps a
//! measured trajectory; with `HARE_GATE_BASELINE` set, the run is gated
//! against the committed baseline first (CI perf smoke).

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare_core::{HareConfig, HareInstance, Techniques};

/// One configuration's measurements.
struct Row {
    name: &'static str,
    stat_rpcs: f64,
    stat_cycles: f64,
    lsl_rpcs: f64,
    lsl_cycles: f64,
}

/// Iterations scaled by `HARE_SCALE` (quick for CI smoke, bench for real
/// numbers).
fn iters() -> usize {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => 4,
        _ => 16,
    }
}

fn measure(name: &'static str, techniques: Techniques, cores: usize) -> Row {
    let rounds = iters();
    let nfiles = 32usize;
    let mut cfg = HareConfig::timeshare(cores);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);

    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/stat/bench", MkdirOpts::default()).unwrap();
    // The ls -l target: a *distributed* directory, so the listing fans out
    // to every server and the per-entry stats spread over inode servers.
    setup
        .mkdir_opts("/stat/bench/dist", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    for i in 0..nfiles {
        fsapi::write_file(&setup, &format!("/stat/bench/f{i}"), b"x").unwrap();
        fsapi::write_file(&setup, &format!("/stat/bench/dist/e{i}"), b"x").unwrap();
    }
    drop(setup);

    // Cold-cache stat: a fresh client per round so every stat resolves
    // every component with real RPCs.
    let mut stat_sends = 0u64;
    let mut stat_cycles = 0u64;
    let nstats = (rounds * nfiles) as f64;
    for _ in 0..rounds {
        let c = inst.new_client(0).unwrap();
        for i in 0..nfiles {
            let path = format!("/stat/bench/f{i}");
            let s0 = inst.machine().msg_stats.sends();
            let t0 = c.vnow();
            c.stat(&path).unwrap();
            stat_sends += inst.machine().msg_stats.sends() - s0;
            stat_cycles += c.vnow() - t0;
        }
        drop(c);
    }

    // readdir+stat of the distributed directory (the `ls -l` pattern),
    // cold cache per round. RPCs are counted per readdir_plus call: with
    // batching the per-entry stats collapse to one exchange per server.
    let mut lsl_sends = 0u64;
    let mut lsl_cycles = 0u64;
    for _ in 0..rounds {
        let c = inst.new_client(0).unwrap();
        let s0 = inst.machine().msg_stats.sends();
        let t0 = c.vnow();
        let listed = c.readdir_plus("/stat/bench/dist").unwrap();
        assert_eq!(listed.len(), nfiles);
        lsl_sends += inst.machine().msg_stats.sends() - s0;
        lsl_cycles += c.vnow() - t0;
        drop(c);
    }
    inst.shutdown();

    Row {
        name,
        // Two sends per RPC / transport exchange (request + reply).
        stat_rpcs: stat_sends as f64 / 2.0 / nstats,
        stat_cycles: stat_cycles as f64 / nstats,
        lsl_rpcs: lsl_sends as f64 / 2.0 / rounds as f64,
        lsl_cycles: lsl_cycles as f64 / rounds as f64,
    }
}

/// Gate explain hook: reruns one cold-cache stat and one batched
/// readdir+stat with op tracing enabled and returns the span trees.
fn explain(cores: usize) -> Option<hare_bench::OpExplain> {
    let mut cfg = HareConfig::timeshare(cores);
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/stat/bench", MkdirOpts::default()).unwrap();
    setup
        .mkdir_opts("/stat/bench/dist", Mode::default(), MkdirOpts::DISTRIBUTED)
        .unwrap();
    fsapi::write_file(&setup, "/stat/bench/f0", b"x").unwrap();
    fsapi::write_file(&setup, "/stat/bench/dist/e0", b"x").unwrap();
    drop(setup);
    // Only the measured ops should appear in the dump, not the setup.
    inst.machine().otrace.reset();
    let c = inst.new_client(0).unwrap();
    c.stat("/stat/bench/f0").unwrap();
    c.readdir_plus("/stat/bench/dist").unwrap();
    drop(c);
    let tracer = &inst.machine().otrace;
    let out = hare_bench::OpExplain {
        chrome_json: tracer.to_chrome_json(),
        worst: tracer.explain_worst(),
    };
    inst.shutdown();
    Some(out)
}

fn main() {
    let cores = hare_bench::max_cores().min(8);
    let rows = [
        measure("all", Techniques::default(), cores),
        measure(
            "no coalesced_stat",
            Techniques::without("coalesced_stat"),
            cores,
        ),
        measure("no batching", Techniques::without("batching"), cores),
        measure("no dircache", Techniques::without("dircache"), cores),
    ];

    println!("micro_stat: cold stat and batched ls -l hot paths ({cores} cores timeshare)\n");
    let mut t = hare_bench::Table::new(&[
        "configuration",
        "stat RPCs/op",
        "stat cycles/op",
        "ls-l exchanges/call",
        "ls-l cycles/call",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.stat_rpcs),
            format!("{:.0}", r.stat_cycles),
            format!("{:.2}", r.lsl_rpcs),
            format!("{:.0}", r.lsl_cycles),
        ]);
    }
    t.print();

    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| hare_bench::BenchConfig {
            name: r.name.to_string(),
            metrics: vec![
                ("stat_rpcs_per_op".into(), r.stat_rpcs),
                ("stat_cycles_per_op".into(), r.stat_cycles),
                ("lsl_rpcs_per_op".into(), r.lsl_rpcs),
                ("lsl_cycles_per_op".into(), r.lsl_cycles),
            ],
        })
        .collect();
    hare_bench::emit::emit_explained("micro_stat", cores, &configs, || explain(cores));

    // The whole point of the fast paths: strictly fewer RPCs per op.
    assert!(
        rows[0].stat_rpcs < rows[1].stat_rpcs,
        "coalesced stat must save RPCs ({:.2} vs {:.2})",
        rows[0].stat_rpcs,
        rows[1].stat_rpcs
    );
    assert!(
        rows[0].lsl_rpcs < rows[2].lsl_rpcs,
        "batched readdir+stat must save exchanges ({:.2} vs {:.2})",
        rows[0].lsl_rpcs,
        rows[2].lsl_rpcs
    );
}
