//! `micro_trace`: replays the committed shifting-hotspot trace and gates
//! the background rebalancer's *behavior over time*.
//!
//! The scenario (authored by `trace_gen`, committed under `traces/`):
//! four clients run a metadata-heavy mix over eight centralized
//! directories that all start on server 1 of a 4-server split machine.
//! In phase 1 directory A draws ~a third of the traffic; in phase 2 the
//! hotspot shifts to directory B. The replay drives the cadence-based
//! rebalancer ([`Rebalancer`]) at every window boundary, and the
//! time-series layer ([`TimeSeries`]) records per-window ops, failures,
//! message sends, per-server load, and migration/invalidation events.
//!
//! The gate asserts the *shape* of the reaction, not just averages:
//!
//! * no operation fails (migration parks and replays in-flight ops);
//! * the rebalancer migrates each hotspot away within
//!   [`CONVERGE_WINDOWS`] windows of its phase — exactly one migration
//!   per phase, with hysteresis eating the probe noise in between;
//! * after the second migration it goes **quiet** (no trailing
//!   migrations — no ping-pong);
//! * with `rebalancing` ablated, zero migrations and identical failure
//!   behavior.
//!
//! `trace_rpcs_per_op` is the hard baseline metric (it includes the
//! rebalancer's probe exchanges, so a chattier cadence fails the gate);
//! cycles are warn-only as usual. The per-window table lands in
//! `$GITHUB_STEP_SUMMARY` on CI.
//!
//! The machine shape is **fixed** (8 cores; `HARE_CORES`/`HARE_SCALE` are
//! ignored): the committed trace pins directory homes for 4 servers, and
//! the determinism test (`tests/trace_replay.rs`) relies on one canonical
//! configuration.

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare_core::{
    HareConfig, HareInstance, RebalanceCadence, RebalancePolicy, Rebalancer, Techniques, TimeSeries,
};
use hare_workloads::trace::{replay, ReplayEvent, Trace};

const TRACE_TEXT: &str = include_str!("../../../../traces/shifting_hotspot.trace");

/// Fixed machine shape: 8 cores, 4 dedicated servers, 4 app cores.
const CORES: usize = 8;

/// Window width: 2 virtual ms.
const WINDOW: u64 = 4_000_000;

/// The server every trace directory starts on (trace_gen's pin).
const HOT_SERVER: u16 = 1;

/// Each hotspot must be migrated away within this many windows of its
/// phase starting (phase 2 starts halfway through the series).
const CONVERGE_WINDOWS: usize = 6;

/// Probe every window boundary (the interval sits just under the window
/// so the driver's post-sample clock still qualifies), confirm over two
/// consecutive probes, then back off for two windows.
fn cadence() -> RebalanceCadence {
    RebalanceCadence {
        probe_interval: WINDOW - 200_000,
        confirm: 2,
        cooldown: 2 * WINDOW - 200_000,
    }
}

/// Share bar tuned to this workload's shard-op to served-op ratio: the
/// client dentry cache absorbs most lookups, so even the hot directory's
/// shard counter only reaches ~20% of the server's total served ops. The
/// bar must sit below that but well above a background directory's ~5%.
fn policy() -> RebalancePolicy {
    RebalancePolicy {
        min_dir_share: 0.15,
        ..RebalancePolicy::default()
    }
}

struct Run {
    series: TimeSeries,
    /// `(window boundary, plan)` per committed migration.
    migrations: Vec<(u64, hare_core::MigrationPlan)>,
    ops: u64,
    failures: u64,
    rpcs_per_op: f64,
    cycles_per_op: f64,
    /// Final owner of the two hotspot directories.
    owners: (u16, u16),
}

fn measure(techniques: Techniques) -> Run {
    let trace = Trace::parse(TRACE_TEXT).expect("committed trace parses");
    let mut cfg = HareConfig::split(CORES, CORES / 2);
    cfg.techniques = techniques;
    let app_cores = cfg.app_cores.clone();
    let inst = HareInstance::start(cfg);
    let machine = inst.machine();

    // Setup: the trace's directories, centralized so they can migrate,
    // and all starting on the pinned hot server — if this assert fires,
    // the dentry hash moved under the committed trace; rerun trace_gen.
    let setup = inst.new_client(app_cores[0]).unwrap();
    for d in &trace.dirs {
        setup
            .mkdir_opts(d, Mode::default(), MkdirOpts::CENTRALIZED)
            .unwrap();
        assert_eq!(
            setup.stat(d).unwrap().server,
            HOT_SERVER,
            "{d} is not pinned to server {HOT_SERVER}: regenerate traces with trace_gen"
        );
    }

    let clients: Vec<_> = (0..trace.nclients())
        .map(|i| inst.new_client(app_cores[i % app_cores.len()]).unwrap())
        .collect();

    machine.sync();
    let t0 = machine.sync();
    let sends0 = machine.msg_stats.sends();
    let mut series = TimeSeries::start(machine, WINDOW);
    let mut reb = Rebalancer::new(policy(), cadence());
    let mut migrations = Vec::new();
    let outcome = replay(&clients, &trace, WINDOW, |ev| match ev {
        ReplayEvent::Op { completed, ok, .. } => series.op(completed, ok),
        ReplayEvent::Window(b) => {
            // Sample first, then tick: the probe's RPCs land in the next
            // window, so the series shows the rebalancer's own traffic.
            series.close_window(machine, b);
            clients[0].vwait(b);
            if std::env::var("HARE_TRACE_DEBUG").is_ok() {
                let reports = clients[0].server_loads(false).unwrap();
                eprintln!(
                    "w{}: {:?}",
                    b / WINDOW,
                    reports
                        .iter()
                        .map(|r| (r.server, r.ops, r.hot_dirs.clone()))
                        .collect::<Vec<_>>()
                );
            }
            match clients[0].rebalance_tick(&mut reb).unwrap() {
                // The mail-spool mix churns creates/unlinks/renames, so
                // every hotspot is write-hot: the planner must migrate it,
                // never park read replicas on it.
                Some(hare_core::RebalanceAction::Migrate(p)) => migrations.push((b, p)),
                Some(other) => panic!("write-churny hotspot must migrate: {other:?}"),
                None => {}
            }
        }
    });
    series.finish(machine, outcome.end);

    let cycles = machine.sync() - t0;
    let sends = machine.msg_stats.sends() - sends0;
    // Ask the client that drove the migrations — dir_owner reports the
    // asking client's routing view, and only the driver has learned the
    // overrides without further traffic on the directories.
    let owners = (
        clients[0].dir_owner(&trace.dirs[0]).unwrap(),
        clients[0].dir_owner(&trace.dirs[1]).unwrap(),
    );
    drop(setup);
    drop(clients);
    inst.shutdown();
    Run {
        series,
        migrations,
        ops: outcome.ops,
        failures: outcome.failures,
        rpcs_per_op: sends as f64 / 2.0 / outcome.ops as f64,
        cycles_per_op: cycles as f64 / outcome.ops as f64,
        owners,
    }
}

/// Renders the per-window series as both a terminal table and (on CI) a
/// step-summary markdown table.
fn report(run: &Run) {
    let mut t = hare_bench::Table::new(&[
        "window",
        "ops",
        "fail",
        "RPCs/op",
        "imbal",
        "server ops",
        "migs",
        "invals",
        "bounces",
        "parks",
    ]);
    let mut rows = Vec::new();
    for (i, w) in run.series.windows().iter().enumerate() {
        let servers = w
            .server_ops
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let row = vec![
            format!("{i}"),
            format!("{}", w.ops),
            format!("{}", w.failures),
            format!("{:.2}", w.rpcs_per_op()),
            format!("{:.2}", w.imbalance()),
            servers,
            format!("{}", w.migrations),
            format!("{}", w.invalidations),
            format!("{}", w.not_owner_bounces),
            format!("{}", w.park_replays),
        ];
        t.row(row.clone());
        rows.push(row);
    }
    t.print();
    hare_bench::append_step_summary(&hare_bench::emit::md_table(
        "micro_trace: shifting-hotspot time series (config `all`)",
        &[
            "window",
            "ops",
            "fail",
            "RPCs/op",
            "imbalance",
            "server ops",
            "migrations",
            "invalidations",
            "bounces",
            "park replays",
        ],
        &[true, true, true, true, true, false, true, true, true, true],
        &rows,
    ));
}

fn main() {
    let all = measure(Techniques::default());
    let ablated = measure(Techniques::without("rebalancing"));

    println!(
        "micro_trace: shifting-hotspot replay ({CORES} cores, {} servers, {} windows of {} ms)\n",
        CORES / 2,
        all.series.windows().len(),
        WINDOW / 2_000_000
    );
    report(&all);
    println!(
        "\nmigrations: {:?}",
        all.migrations
            .iter()
            .map(|(b, p)| (b / WINDOW, p.dir, p.from, p.to))
            .collect::<Vec<_>>()
    );

    let configs = [&all, &ablated]
        .iter()
        .zip(["all", "no rebalancing"])
        .map(|(r, name)| hare_bench::BenchConfig {
            name: name.to_string(),
            metrics: vec![
                ("trace_rpcs_per_op".into(), r.rpcs_per_op),
                ("trace_cycles_per_op".into(), r.cycles_per_op),
                (
                    "trace_converge_window".into(),
                    r.series
                        .last_migration_window()
                        .map_or(0.0, |w| w as f64 + 1.0),
                ),
                ("trace_migrations".into(), r.migrations.len() as f64),
                ("trace_failures".into(), r.failures as f64),
            ],
        })
        .collect::<Vec<_>>();
    hare_bench::emit::emit("micro_trace", CORES, &configs);

    // ----- The behavior gate ---------------------------------------------
    let nwin = all.series.windows().len();
    assert_eq!(all.failures, 0, "no op may fail under migration");
    assert_eq!(ablated.failures, 0, "ablation must not fail ops either");
    assert_eq!(
        ablated.migrations.len(),
        0,
        "rebalancing off: no migrations"
    );
    assert_eq!(
        all.migrations.len(),
        2,
        "one migration per hotspot phase, no ping-pong: {:?}",
        all.migrations
    );
    let (w1, w2) = (
        (all.migrations[0].0 / WINDOW) as usize,
        (all.migrations[1].0 / WINDOW) as usize,
    );
    assert!(
        w1 <= CONVERGE_WINDOWS,
        "phase-1 hotspot not migrated within {CONVERGE_WINDOWS} windows (at {w1})"
    );
    let phase2 = nwin / 2;
    assert!(
        w2 >= phase2.saturating_sub(1) && w2 <= phase2 + CONVERGE_WINDOWS,
        "phase-2 hotspot must migrate within {CONVERGE_WINDOWS} windows of the shift \
         (migrated at window {w2} of {nwin})"
    );
    assert!(
        all.owners.0 != HOT_SERVER && all.owners.1 != HOT_SERVER,
        "both hotspots must end up off server {HOT_SERVER} (owners: {:?})",
        all.owners
    );
    assert_eq!(
        all.ops, ablated.ops,
        "both configs replay the identical trace"
    );
    println!(
        "\nconverged: hotspot A migrated in window {w1}, B in window {w2} \
         (phase 2 began ~window {phase2}); quiet afterwards"
    );
}
