//! Figure 6: speedup of the benchmarks on Hare as cores are added,
//! relative to single-core throughput (timeshare configuration, servers
//! and applications on every core).
//!
//! Paper headline: "our suite of benchmarks achieves an average speedup of
//! 14× on a 40-core machine"; `pfind sparse` scales worst because all
//! clients walk the same few centralized directories in the same order.

use hare_workloads::Workload;

fn main() {
    let s = hare_bench::scale();
    let max = hare_bench::max_cores();
    let mut cores: Vec<usize> = vec![1, 2, 4, 8, 16, 24, 32, 40];
    cores.retain(|c| *c <= max);
    if cores.last() != Some(&max) {
        cores.push(max);
    }

    let mut headers: Vec<String> = vec!["benchmark".to_string()];
    headers.extend(cores.iter().map(|c| format!("{c}c")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = hare_bench::Table::new(&headers_ref);

    let mut speedups_at_max: Vec<f64> = Vec::new();
    for wl in Workload::ALL {
        let base = hare_bench::run_hare_timeshare(1, wl, &s).throughput();
        let mut row = vec![wl.name().to_string()];
        for &c in &cores {
            let t = if c == 1 {
                base
            } else {
                hare_bench::run_hare_timeshare(c, wl, &s).throughput()
            };
            let speedup = t / base;
            if c == *cores.last().expect("nonempty") {
                speedups_at_max.push(speedup);
            }
            row.push(format!("{speedup:.1}"));
        }
        table.row(row);
        eprintln!("done: {wl}");
    }

    println!("Figure 6: speedup vs. single-core Hare (timeshare configuration)\n");
    table.print();
    let avg = speedups_at_max.iter().sum::<f64>() / speedups_at_max.len() as f64;
    println!(
        "\naverage speedup at {} cores: {avg:.1}x (paper: ~14x at 40 cores)",
        cores.last().expect("nonempty")
    );
}
