//! Figure 15: Hare vs. Linux (tmpfs) on the cache-coherent machine —
//! relative speedup of the parallel benchmarks at full core count, with
//! absolute virtual runtimes.
//!
//! Paper shape: "some tests scale better on Hare while others scale better
//! on Linux" — Hare wins the shared-directory namespace workloads
//! (creates, renames, directories) because distribution removes the
//! per-directory lock; Linux wins the lookup- and compute-heavy ones
//! (pfind sparse, mailbench, fsstress, build linux) on raw syscall cost.

use hare_workloads::Workload;

fn main() {
    let s = hare_bench::scale();
    let cores = hare_bench::max_cores();

    let mut table = hare_bench::Table::new(&[
        "benchmark",
        "hare speedup",
        "linux speedup",
        "hare time (s)",
        "linux time (s)",
    ]);

    for wl in Workload::PARALLEL {
        let hare1 = hare_bench::run_hare_timeshare(1, wl, &s);
        let hare_n = hare_bench::run_hare_timeshare(cores, wl, &s);
        let linux1 = hare_bench::run_ramfs(1, wl, 1, &s);
        let linux_n = hare_bench::run_ramfs(cores, wl, cores, &s);

        table.row(vec![
            wl.name().to_string(),
            format!("{:.1}", hare_n.throughput() / hare1.throughput()),
            format!("{:.1}", linux_n.throughput() / linux1.throughput()),
            format!("{:.3}", hare_n.virtual_secs()),
            format!("{:.3}", linux_n.virtual_secs()),
        ]);
        eprintln!("done: {wl}");
    }

    println!("Figure 15: speedup at {cores} cores, Hare (timeshare) vs. Linux tmpfs\n");
    table.print();
}
