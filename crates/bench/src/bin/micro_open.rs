//! `micro_open`: RPCs-per-open and virtual cycles-per-op for the
//! open-existing hot path and the ENOENT probe path, per technique
//! configuration.
//!
//! This is the measurement harness for the two hot-path extensions
//! (`coalesced_open`, `neg_dircache`): it reports how many messages and
//! virtual cycles one cold-cache `open()` of an existing file costs, and
//! what a repeated failing lookup (the `O_CREAT` probe idiom) costs, with
//! each technique on and off. Results are printed as a table and written
//! to `BENCH_micro_open.json` so the repository keeps a measured
//! trajectory of the open path across PRs.

use fsapi::{Errno, MkdirOpts, Mode, OpenFlags, ProcFs};
use hare_core::{HareConfig, HareInstance, Techniques};

/// One configuration's measurements.
struct Row {
    name: &'static str,
    open_rpcs: f64,
    open_cycles: f64,
    probe_rpcs: f64,
    probe_cycles: f64,
}

/// Iterations scaled by `HARE_SCALE` (quick for CI smoke, bench for real
/// numbers).
fn iters() -> (usize, usize) {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => (4, 64),
        _ => (16, 512),
    }
}

fn measure(name: &'static str, techniques: Techniques, cores: usize) -> Row {
    let (rounds, probes) = iters();
    let nfiles = 16usize;
    let mut cfg = HareConfig::timeshare(cores);
    cfg.techniques = techniques;
    let inst = HareInstance::start(cfg);

    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/open/bench", MkdirOpts::default()).unwrap();
    for i in 0..nfiles {
        fsapi::write_file(&setup, &format!("/open/bench/f{i}"), b"x").unwrap();
    }
    drop(setup);

    // Open-existing, cold cache: a fresh client per round so every open
    // resolves every component with real RPCs.
    let mut open_sends = 0u64;
    let mut open_cycles = 0u64;
    let nopens = (rounds * nfiles) as f64;
    for _ in 0..rounds {
        let c = inst.new_client(0).unwrap();
        for i in 0..nfiles {
            let path = format!("/open/bench/f{i}");
            let s0 = inst.machine().msg_stats.sends();
            let t0 = c.vnow();
            let fd = c.open(&path, OpenFlags::RDONLY, Mode::default()).unwrap();
            open_sends += inst.machine().msg_stats.sends() - s0;
            open_cycles += c.vnow() - t0;
            c.close(fd).unwrap();
        }
        drop(c);
    }

    // ENOENT probes: one client re-asking about the same absent name (the
    // negative cache answers every probe after the first locally).
    let c = inst.new_client(0).unwrap();
    assert_eq!(
        c.stat("/open/bench/missing").unwrap_err(),
        Errno::ENOENT,
        "warm the negative entry"
    );
    let s0 = inst.machine().msg_stats.sends();
    let t0 = c.vnow();
    for _ in 0..probes {
        assert_eq!(c.stat("/open/bench/missing").unwrap_err(), Errno::ENOENT);
    }
    let probe_sends = inst.machine().msg_stats.sends() - s0;
    let probe_cycles = c.vnow() - t0;
    drop(c);
    inst.shutdown();

    Row {
        name,
        // Two sends per RPC (request + reply).
        open_rpcs: open_sends as f64 / 2.0 / nopens,
        open_cycles: open_cycles as f64 / nopens,
        probe_rpcs: probe_sends as f64 / 2.0 / probes as f64,
        probe_cycles: probe_cycles as f64 / probes as f64,
    }
}

/// Gate explain hook: reruns one cold-cache open with op tracing enabled
/// and returns the span trees, so a failed gate ships the causal
/// breakdown of where the open path's RPCs went.
fn explain(cores: usize) -> Option<hare_bench::OpExplain> {
    let mut cfg = HareConfig::timeshare(cores);
    cfg.trace_ops = true;
    let inst = HareInstance::start(cfg);
    let setup = inst.new_client(0).unwrap();
    fsapi::mkdir_p(&setup, "/open/bench", MkdirOpts::default()).unwrap();
    fsapi::write_file(&setup, "/open/bench/f0", b"x").unwrap();
    drop(setup);
    // Only the measured op should appear in the dump, not the setup.
    inst.machine().otrace.reset();
    let c = inst.new_client(0).unwrap();
    let fd = c
        .open("/open/bench/f0", OpenFlags::RDONLY, Mode::default())
        .unwrap();
    c.close(fd).unwrap();
    drop(c);
    let tracer = &inst.machine().otrace;
    let out = hare_bench::OpExplain {
        chrome_json: tracer.to_chrome_json(),
        worst: tracer.explain_worst(),
    };
    inst.shutdown();
    Some(out)
}

fn main() {
    let cores = hare_bench::max_cores().min(8);
    let rows = [
        measure("all", Techniques::default(), cores),
        measure(
            "no coalesced_open",
            Techniques::without("coalesced_open"),
            cores,
        ),
        measure(
            "no neg_dircache",
            Techniques::without("neg_dircache"),
            cores,
        ),
        measure("no dircache", Techniques::without("dircache"), cores),
    ];

    println!("micro_open: open-existing and ENOENT-probe hot paths ({cores} cores timeshare)\n");
    let mut t = hare_bench::Table::new(&[
        "configuration",
        "open RPCs/op",
        "open cycles/op",
        "probe RPCs/op",
        "probe cycles/op",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.open_rpcs),
            format!("{:.0}", r.open_cycles),
            format!("{:.2}", r.probe_rpcs),
            format!("{:.0}", r.probe_cycles),
        ]);
    }
    t.print();

    // Machine-readable trajectory point for the repository, gated against
    // the committed baseline when HARE_GATE_BASELINE is set (the gate runs
    // before the file is rewritten, so a failing run never clobbers the
    // baseline it failed against).
    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| hare_bench::BenchConfig {
            name: r.name.to_string(),
            metrics: vec![
                ("open_rpcs_per_op".into(), r.open_rpcs),
                ("open_cycles_per_op".into(), r.open_cycles),
                ("probe_rpcs_per_op".into(), r.probe_rpcs),
                ("probe_cycles_per_op".into(), r.probe_cycles),
            ],
        })
        .collect();
    hare_bench::emit::emit_explained("micro_open", cores, &configs, || explain(cores));

    // The whole point of the fast path: strictly fewer RPCs per open.
    assert!(
        rows[0].open_rpcs < rows[1].open_rpcs,
        "coalesced open must save RPCs ({:.2} vs {:.2})",
        rows[0].open_rpcs,
        rows[1].open_rpcs
    );
    assert!(
        rows[0].probe_rpcs < rows[2].probe_rpcs,
        "negative cache must save probe RPCs ({:.2} vs {:.2})",
        rows[0].probe_rpcs,
        rows[2].probe_rpcs
    );
}
