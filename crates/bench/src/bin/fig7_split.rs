//! Figure 7: performance of Hare in split vs. timeshare configurations.
//!
//! Three bars per benchmark, normalized to the timeshare configuration:
//! timeshare (1.0 by construction), a 20/20 split, and the best split
//! found by sweeping the server count — with the optimal server count
//! printed, since the paper's conclusion is that the optimum is highly
//! workload-dependent (mailbench/fsstress want many servers, pfind wants
//! few).

use hare_core::HareConfig;
use hare_workloads::Workload;

fn main() {
    let s = hare_bench::scale();
    let total = hare_bench::max_cores();
    let half = total / 2;
    // Sweep of dedicated-server counts for the "best" configuration.
    let sweep: Vec<usize> = [
        total / 5,
        total / 4,
        3 * total / 10,
        2 * total / 5,
        half,
        3 * total / 5,
        7 * total / 10,
        4 * total / 5,
    ]
    .into_iter()
    .filter(|&n| n > 0 && n < total)
    .collect();

    let mut table = hare_bench::Table::new(&[
        "benchmark",
        "timeshare",
        &format!("{half}/{half} split"),
        "best split",
        "best #servers",
    ]);

    for wl in Workload::ALL {
        let ts = hare_bench::run_hare(HareConfig::timeshare(total), wl, total, &s).throughput();
        let half_tp =
            hare_bench::run_hare(HareConfig::split(total, half), wl, total - half, &s).throughput();

        let mut best = (half_tp, half);
        for &ns in &sweep {
            if ns == half {
                continue;
            }
            let tp =
                hare_bench::run_hare(HareConfig::split(total, ns), wl, total - ns, &s).throughput();
            if tp > best.0 {
                best = (tp, ns);
            }
        }
        // Timeshare itself may win the sweep (it uses every core twice).
        let (best_tp, best_ns) = if ts > best.0 { (ts, 0) } else { best };

        table.row(vec![
            wl.name().to_string(),
            "1.00".to_string(),
            format!("{:.2}", half_tp / ts),
            format!("{:.2}", best_tp / ts),
            if best_ns == 0 {
                "timeshare".to_string()
            } else {
                best_ns.to_string()
            },
        ]);
        eprintln!("done: {wl}");
    }

    println!("Figure 7: Hare split vs. timeshare, {total} cores (normalized to timeshare)\n");
    table.print();
    println!(
        "\npaper: optimal #servers is highly workload-dependent; a fixed split can lose badly."
    );
}
