//! `micro_replica`: read-throughput scaling from replicating one hot
//! directory's dentry shard — the read-mostly counterpart of
//! `micro_skew`'s migration story.
//!
//! Eight worker processes run a 95/5 read/write mix against a single
//! *centralized* directory: nineteen `readdir`s (each one `ListShard`
//! exchange against a server chosen from the directory's read set) and
//! one create-or-unlink of a per-worker slot file (always at the home
//! shard, fanning invalidations to every replica). The directory is big
//! enough that the listing's per-entry service cost saturates whichever
//! servers carry it, so wall-clock cycles per op measure server
//! queueing, exactly what read replication relieves.
//!
//! The bench measures three phases on one machine:
//!
//! 1. **x1** — no replicas; every read serializes at the home shard.
//! 2. **x2** — one replica, planted *organically*: the shared
//!    [`hare_bench::drive_rebalancer`] loop feeds read bursts to the
//!    cadence-based rebalancer until its planner classifies the
//!    directory read-mostly and commits a `Replicate` action (the
//!    hysteresis is asserted: never on the first probe).
//! 3. **x4** — three replicas, the policy cap, the last two planted
//!    deterministically with `replicate_dir`.
//!
//! Worker processes are real separate clients, so replica knowledge does
//! not propagate to them automatically: each phase's workers adopt the
//! driver's advertisement (`replica_advert` → `adopt_replicas`) before
//! the measured window, modelling the paper's servers gossiping
//! placement hints out of band.
//!
//! Gates: reads must cost the same RPCs/op at every read-set size
//! (replica selection is client-local — the hard `*_rpcs_per_op`
//! baseline pins it, and writes only add the invalidation fan-out), and
//! cycles/op must scale near-linearly: ≥1.7x at two read servers, ≥3x at
//! four. With `replication` ablated, `replicate_dir` is a no-op and the
//! three phases measure the same single-server bottleneck. Results go to
//! `BENCH_micro_replica.json`; with `HARE_GATE_BASELINE` set the run is
//! gated against the committed baseline first (CI perf smoke).

use fsapi::{MkdirOpts, Mode, ProcFs};
use hare_core::{
    HareConfig, HareInstance, InodeId, RebalanceAction, RebalanceCadence, RebalancePolicy,
    Rebalancer, ServerId, Techniques,
};
use std::sync::Arc;

/// Two worker processes per application core at the CI core count, so
/// the read servers — not client latency — are the bottleneck.
const WORKERS: usize = 8;

/// Files in the hot directory. The `ListShard` per-entry charge makes one
/// listing cost ~4400 cycles of server time, far above the message
/// latency, so server queueing dominates the measured window.
const NFILES: usize = 160;

/// Reads per round; one write joins them (95/5 mix).
const READS_PER_ROUND: usize = 19;

/// Iterations per worker, scaled by `HARE_SCALE`. Must stay even so the
/// create/unlink slot toggle ends each phase where it started.
fn iters() -> usize {
    match std::env::var("HARE_SCALE").as_deref() {
        Ok("quick") => 8,
        _ => 32,
    }
}

struct Phase {
    rpcs_per_op: f64,
    cycles_per_op: f64,
}

/// Runs the 95/5 mix once. `advert` is the driver's view of the hot
/// directory's replica set; every worker adopts it before the measured
/// window so phase differences come from the read set, not discovery.
fn run_phase(
    inst: &Arc<HareInstance>,
    dir: &str,
    ino: InodeId,
    advert: Option<(Vec<ServerId>, u64)>,
    rounds: usize,
) -> Phase {
    use std::sync::Barrier;

    let machine = inst.machine();
    let app_cores = inst.config().app_cores.clone();
    // Same bracketing as micro_skew: warm/go fence the front (workers
    // resolve the directory and adopt the replica advertisement outside
    // the window), done/exit fence client teardown off the far end.
    let warm = Arc::new(Barrier::new(WORKERS + 1));
    let go = Arc::new(Barrier::new(WORKERS + 1));
    let done = Arc::new(Barrier::new(WORKERS + 1));
    let exit = Arc::new(Barrier::new(WORKERS + 1));
    let mut joins = Vec::new();
    for w in 0..WORKERS {
        let inst = Arc::clone(inst);
        let dir = dir.to_string();
        let advert = advert.clone();
        let core = app_cores[w % app_cores.len()];
        let (warm, go) = (Arc::clone(&warm), Arc::clone(&go));
        let (done, exit) = (Arc::clone(&done), Arc::clone(&exit));
        joins.push(std::thread::spawn(move || {
            let c = inst.new_client(core).unwrap();
            if let Some((servers, epoch)) = advert {
                c.adopt_replicas(ino, servers, epoch);
            }
            let slot = format!("{dir}/slot{w}");
            // Warmup: resolve the directory, list once, and run one full
            // create/unlink toggle so the measured rounds start clean.
            let listed = c.readdir(&dir).unwrap();
            assert!(listed.len() >= NFILES, "warmup listing lost entries");
            fsapi::write_file(&c, &slot, b"x").unwrap();
            c.unlink(&slot).unwrap();
            warm.wait();
            go.wait();
            for r in 0..rounds {
                for _ in 0..READS_PER_ROUND {
                    let listed = c.readdir(&dir).unwrap();
                    assert!(listed.len() >= NFILES);
                }
                // The 5% write: toggle this worker's slot file at the
                // home shard (even rounds create, odd rounds unlink).
                if r % 2 == 0 {
                    fsapi::write_file(&c, &slot, b"x").unwrap();
                } else {
                    c.unlink(&slot).unwrap();
                }
            }
            done.wait();
            exit.wait();
            drop(c);
        }));
    }
    warm.wait();
    machine.sync();
    let sends0 = machine.msg_stats.sends();
    let t0 = machine.sync();
    go.wait();
    done.wait();
    let cycles = machine.sync() - t0;
    let sends = machine.msg_stats.sends() - sends0;
    exit.wait();
    for j in joins {
        j.join().unwrap();
    }
    let ops = (WORKERS * rounds * (READS_PER_ROUND + 1)) as f64;
    Phase {
        rpcs_per_op: sends as f64 / 2.0 / ops,
        cycles_per_op: cycles as f64 / ops,
    }
}

struct Row {
    name: &'static str,
    phases: [Phase; 3],
    /// Read-set size after each phase's planting step.
    read_sets: [usize; 3],
    /// Rebalancer rounds before the organic `Replicate` committed.
    organic_ticks: usize,
}

fn measure(name: &'static str, techniques: Techniques, cores: usize) -> Row {
    let rounds = iters();
    let replicating = techniques.replication;
    // Split configuration: dedicated servers so queueing at the read
    // set, not timeshare context switches, is what the phases compare.
    let mut cfg = HareConfig::split(cores, cores / 2);
    cfg.techniques = techniques;
    let nservers = cfg.nservers();
    assert!(nservers >= 4, "need home + 3 replicas: run with >= 8 cores");
    let inst = HareInstance::start(cfg);

    let setup = inst.new_client(inst.config().app_cores[0]).unwrap();
    let dir = "/hot".to_string();
    setup
        .mkdir_opts(&dir, Mode::default(), MkdirOpts::CENTRALIZED)
        .unwrap();
    for i in 0..NFILES {
        fsapi::write_file(&setup, &format!("{dir}/f{i}"), b"x").unwrap();
    }
    let ino = setup.dir_inode(&dir).unwrap();
    let home = setup.dir_owner(&dir).unwrap();

    // Phase 1: unreplicated — every listing queues at the home shard.
    let p1 = run_phase(&inst, &dir, ino, None, rounds);
    let rs1 = 1 + setup.replica_advert(ino).map_or(0, |(s, _)| s.len());

    // Plant the first replica organically: read bursts make the home
    // server hot while its top directory stays write-cold, so the
    // planner must pick `Replicate`, and only after the cadence's
    // confirmation streak (micro_skew drives the same loop to a
    // `Migrate` for its write-churny spool).
    let mut reb = Rebalancer::new(
        RebalancePolicy::default(),
        RebalanceCadence {
            probe_interval: 50_000,
            confirm: 2,
            cooldown: 400_000,
        },
    );
    // 80 listings per probe window clears the planner's `min_ops` floor
    // (64) with zero writes, so the nomination is unambiguous.
    let burst = |_: usize| {
        for _ in 0..80 {
            setup.readdir(&dir).unwrap();
        }
    };
    let (action, organic_ticks) = hare_bench::drive_rebalancer(&setup, &mut reb, 60_000, 8, burst);
    if replicating {
        let Some(RebalanceAction::Replicate(p)) = action else {
            panic!("read-mostly hot dir must replicate, got {action:?}");
        };
        assert!(
            organic_ticks >= 2,
            "hysteresis: a single probe must never replicate (tick {organic_ticks})"
        );
        assert_eq!(p.home, home);
        assert_ne!(p.to, home);
    } else {
        // `rebalancing` stays on in the ablation row, so the old
        // migrate-only planner may move the read-hot dir instead; either
        // way no replica may appear.
        assert_eq!(
            setup.routing_replica_dirs(),
            0,
            "ablated run grew a replica"
        );
    }

    // Phase 2: one replica (two read servers).
    let advert2 = setup.replica_advert(ino);
    let p2 = run_phase(&inst, &dir, ino, advert2.clone(), rounds);
    let rs2 = 1 + advert2.map_or(0, |(s, _)| s.len());

    // Phases at the policy cap: plant the remaining replicas
    // deterministically on the lowest-numbered untouched servers. The
    // home may have migrated in the ablation row — re-ask.
    let home_now = setup.dir_owner(&dir).unwrap();
    let taken: Vec<ServerId> = setup.replica_advert(ino).map_or(Vec::new(), |(s, _)| s);
    let mut planted = 0;
    for s in 0..nservers as ServerId {
        if planted == 2 {
            break;
        }
        if s == home_now || taken.contains(&s) {
            continue;
        }
        if setup.replicate_dir(&dir, s).unwrap() {
            planted += 1;
        } else {
            assert!(!replicating, "replicate_dir refused with replication on");
            break;
        }
    }

    // Phase 3: three replicas (four read servers).
    let advert4 = setup.replica_advert(ino);
    let p3 = run_phase(&inst, &dir, ino, advert4.clone(), rounds);
    let rs3 = 1 + advert4.map_or(0, |(s, _)| s.len());

    drop(setup);
    inst.shutdown();
    Row {
        name,
        phases: [p1, p2, p3],
        read_sets: [rs1, rs2, rs3],
        organic_ticks,
    }
}

fn main() {
    let cores = hare_bench::max_cores().clamp(8, 16);
    let rows = [
        measure("all", Techniques::default(), cores),
        measure("no replication", Techniques::without("replication"), cores),
    ];

    println!(
        "micro_replica: 95/5 read/write mix on one hot directory, by read-set size \
         ({cores} cores, {} dedicated servers, {WORKERS} workers)\n",
        cores / 2
    );
    let mut t = hare_bench::Table::new(&[
        "configuration",
        "read set",
        "RPCs/op",
        "cycles/op",
        "speedup",
    ]);
    for r in &rows {
        for (i, p) in r.phases.iter().enumerate() {
            t.row(vec![
                if i == 0 {
                    r.name.to_string()
                } else {
                    String::new()
                },
                format!("x{}", r.read_sets[i]),
                format!("{:.2}", p.rpcs_per_op),
                format!("{:.0}", p.cycles_per_op),
                hare_bench::ratio(r.phases[0].cycles_per_op / p.cycles_per_op),
            ]);
        }
    }
    t.print();

    let configs: Vec<hare_bench::BenchConfig> = rows
        .iter()
        .map(|r| {
            let speed = |i: usize| r.phases[0].cycles_per_op / r.phases[i].cycles_per_op;
            hare_bench::BenchConfig {
                name: r.name.to_string(),
                metrics: vec![
                    ("replica_x1_rpcs_per_op".into(), r.phases[0].rpcs_per_op),
                    ("replica_x1_cycles_per_op".into(), r.phases[0].cycles_per_op),
                    ("replica_x2_rpcs_per_op".into(), r.phases[1].rpcs_per_op),
                    ("replica_x2_cycles_per_op".into(), r.phases[1].cycles_per_op),
                    ("replica_x4_rpcs_per_op".into(), r.phases[2].rpcs_per_op),
                    ("replica_x4_cycles_per_op".into(), r.phases[2].cycles_per_op),
                    ("replica_x2_speedup".into(), speed(1)),
                    ("replica_x4_speedup".into(), speed(2)),
                ],
            }
        })
        .collect();
    hare_bench::emit::emit("micro_replica", cores, &configs);

    // ----- The scaling gate ------------------------------------------------
    let all = &rows[0];
    assert_eq!(all.read_sets, [1, 2, 4], "replica planting went wrong");
    let x2 = all.phases[0].cycles_per_op / all.phases[1].cycles_per_op;
    let x4 = all.phases[0].cycles_per_op / all.phases[2].cycles_per_op;
    assert!(
        x2 >= 1.7,
        "two read servers must give >= 1.7x ops/cycle (got {x2:.2}x)"
    );
    assert!(
        x4 >= 3.0,
        "four read servers must give >= 3x ops/cycle (got {x4:.2}x)"
    );
    // Replica selection is client-local: growing the read set may only
    // add the write-side invalidation fan-out (5% of ops), never extra
    // read-side exchanges.
    for (i, p) in all.phases.iter().enumerate().skip(1) {
        assert!(
            p.rpcs_per_op - all.phases[0].rpcs_per_op < 0.3,
            "reads must not pay extra RPCs at x{} ({:.2} vs {:.2})",
            all.read_sets[i],
            p.rpcs_per_op,
            all.phases[0].rpcs_per_op
        );
    }
    let ablated = &rows[1];
    assert_eq!(
        ablated.read_sets,
        [1, 1, 1],
        "replication off: the read set must never grow"
    );
    let ax4 = ablated.phases[0].cycles_per_op / ablated.phases[2].cycles_per_op;
    assert!(
        ax4 < 1.3,
        "replication off: no phase may speed up ({ax4:.2}x)"
    );
    println!(
        "\nscaling: x2 {}  x4 {} (organic replica committed on tick {})",
        hare_bench::ratio(x2),
        hare_bench::ratio(x4),
        all.organic_ticks
    );
}
