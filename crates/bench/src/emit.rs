//! Shared result-emission path for the `micro_*` binaries.
//!
//! Every microbenchmark used to hand-roll the same four lines: run the
//! perf gate, render [`crate::bench_json`], write `BENCH_<bench>.json`,
//! print the confirmation — plus, for the ones that post tables to the
//! GitHub Actions step summary, a second copy of markdown-table
//! assembly. Both live here now so the byte format of the committed
//! trajectory files has exactly one producer.

use crate::{BenchConfig, OpExplain};

/// Gates `configs` against the committed baseline (when
/// `HARE_GATE_BASELINE` is set), then writes the `BENCH_<bench>.json`
/// trajectory point. The gate runs first so a failing run never clobbers
/// the baseline it failed against.
pub fn emit(bench: &str, cores: usize, configs: &[BenchConfig]) {
    crate::perf_gate(bench, configs);
    write_bench_json(bench, cores, configs);
}

/// [`emit`] with a gate explain hook (see [`crate::perf_gate_explained`]):
/// on gate failure under `HARE_EXPLAIN_DIR`, `explain()` reruns a traced
/// round and its span trees are dumped for the CI artifact.
pub fn emit_explained(
    bench: &str,
    cores: usize,
    configs: &[BenchConfig],
    explain: impl FnOnce() -> Option<OpExplain>,
) {
    crate::perf_gate_explained(bench, configs, explain);
    write_bench_json(bench, cores, configs);
}

fn write_bench_json(bench: &str, cores: usize, configs: &[BenchConfig]) {
    let json = crate::bench_json(bench, cores, configs);
    let path = format!("BENCH_{bench}.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

/// Renders a markdown table for the step summary: a `### title` heading,
/// one header row, and an alignment row with `---:` wherever `numeric`
/// marks a column. Rows must match the header width.
pub fn md_table(title: &str, headers: &[&str], numeric: &[bool], rows: &[Vec<String>]) -> String {
    assert_eq!(headers.len(), numeric.len());
    let mut md = format!("### {title}\n\n| {} |\n", headers.join(" | "));
    let aligns = numeric
        .iter()
        .map(|n| if *n { "---:" } else { "---" })
        .collect::<Vec<_>>()
        .join("|");
    md.push_str(&format!("|{aligns}|\n"));
    for row in rows {
        assert_eq!(row.len(), headers.len());
        md.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    md.push('\n');
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_table_shape() {
        let md = md_table(
            "t",
            &["a", "b"],
            &[false, true],
            &[vec!["x".into(), "1".into()]],
        );
        assert_eq!(md, "### t\n\n| a | b |\n|---|---:|\n| x | 1 |\n\n");
    }
}
