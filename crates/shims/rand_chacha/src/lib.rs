//! Minimal offline stand-in for `rand_chacha`.
//!
//! `ChaCha8Rng` here is a seeded SplitMix64 generator, not real ChaCha: the
//! workloads only need a deterministic, well-mixed stream per seed, not
//! cryptographic output or bit-compatibility with the real crate.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded RNG (SplitMix64 under the hood).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Vigna): passes BigCrush, one addition + two xorshifts.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_with_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let v = r.gen_range(0..100);
        assert!(v < 100);
    }
}
