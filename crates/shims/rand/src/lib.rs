//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `RngCore`/`Rng`/`SeedableRng`/`SliceRandom` with uniform range
//! sampling — the surface the fsstress workload uses. Distribution quality
//! matches a 64-bit mix function, which is plenty for workload shuffling.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, automatically available on every RNG.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random access into slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.next_u64() as usize % self.len())
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 >> 16
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = r.gen_range(0..8);
            assert!((0..8).contains(&w));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = Counter(1);
        let xs = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*xs.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
