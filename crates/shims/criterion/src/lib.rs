//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides a wall-clock timing loop under criterion's API (groups,
//! `bench_function`, `iter`, `iter_batched`) so `cargo bench` runs and
//! prints ns/iter, without statistics, plots, or comparisons.

use std::time::Instant;

/// Declared throughput of a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched` (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            throughput: None,
            sample_iters: 0,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
    sample_iters: u64,
}

impl BenchmarkGroup {
    /// Declares the per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the iteration count (criterion's sample count knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = n as u64;
        self
    }

    /// Times one benchmark closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            iters: if self.sample_iters > 0 {
                self.sample_iters
            } else {
                1000
            },
            elapsed_ns: 0,
            done: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns.checked_div(b.done).unwrap_or(0);
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0 => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 * 1e9 / (per_iter as f64 * 1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                format!(" ({:.0} elem/s)", n as f64 * 1e9 / per_iter as f64)
            }
            _ => String::new(),
        };
        println!("  {name}: {per_iter} ns/iter{extra}");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
    done: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as u64;
        self.done += self.iters;
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`
    /// (the shim times both; our setups are trivial).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        for _ in 0..self.iters {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        self.elapsed_ns += start.elapsed().as_nanos() as u64;
        self.done += self.iters;
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares `main()` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut count = 0u64;
        g.sample_size(10);
        g.throughput(Throughput::Elements(1));
        g.bench_function("inc", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 1u64, |x| x + 1, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(count, 10);
    }
}
