//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements randomized case generation (no shrinking) for the strategy
//! combinators this workspace's property tests use: integer ranges, tuples,
//! `any::<T>()`, `prop_map`/`prop_filter`, `prop_oneof!`, collection `vec`,
//! and simple `[class]{m,n}` regex string strategies. Failures report the
//! generated inputs via `Debug` so cases stay reproducible (generation is
//! seeded deterministically per test).

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (the proptest combinator surface,
    /// without shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`, regenerating (bounded retries).
        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            whence: R,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// String strategy from a simple regex of the form `[class]{m,n}`
    /// (character classes with ranges; the only shape our tests use).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
            let len = min + (rng.next_u64() as usize) % (max - min + 1);
            (0..len)
                .map(|_| alphabet[rng.next_u64() as usize % alphabet.len()])
                .collect()
        }
    }

    /// Parses `[abc0-9_]{m,n}` into (alphabet, m, n).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let (min, max) = (reps.0.parse().ok()?, reps.1.parse().ok()?);
        if alphabet.is_empty() || min > max {
            return None;
        }
        Some((alphabet, min, max))
    }

    /// One pre-boxed generator arm of a [`OneOf`].
    pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice among same-valued strategies (see `prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<OneOfArm<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds a choice over pre-boxed generator arms.
        pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.arms[rng.next_u64() as usize % self.arms.len()])(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy behind [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + (rng.next_u64() as usize) % (self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic generation source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG seeded for a named test's case stream.
        pub fn for_seed(seed: u64) -> TestRng {
            TestRng(seed ^ 0x5851F42D4C957F2D)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion-failure error.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Per-test configuration (`cases` is the only knob our tests set).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                // Seed from the test name so each test gets a distinct but
                // reproducible case stream.
                let seed = {
                    let mut h: u64 = 0xcbf29ce484222325;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                    h
                };
                let mut rng = $crate::test_runner::TestRng::for_seed(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let args_dbg = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, args_dbg
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            l, r, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_class_strategy_parses() {
        let mut rng = crate::test_runner::TestRng::for_seed(1);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-c_]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(v in prop::collection::vec((0..10usize, any::<u8>()), 1..5)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 5, "len {}", v.len());
            for (a, _b) in &v {
                prop_assert!(*a < 10);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0..5usize).prop_map(|v| v * 2),
            (10..15usize).prop_map(|v| v),
        ]) {
            prop_assert!(x < 15usize);
            prop_assert_eq!(x, x);
        }
    }
}
