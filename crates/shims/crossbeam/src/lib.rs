//! Minimal offline stand-in for the `crossbeam` crate: only
//! `utils::CachePadded`, which the virtual clocks use to keep per-core
//! counters on separate cache lines.

pub mod utils {
    /// Pads and aligns a value to 128 bytes (two x86 cache lines, matching
    /// crossbeam's choice on modern Intel parts to defeat adjacent-line
    /// prefetching).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T>(T);

    impl<T> CachePadded<T> {
        /// Wraps `t` in padding.
        pub const fn new(t: T) -> Self {
            CachePadded(t)
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;

    #[test]
    fn aligned_and_transparent() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of_val(&c), 128);
        assert_eq!(c.into_inner(), 7);
    }
}
