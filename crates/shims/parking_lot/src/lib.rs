//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly; a poisoned lock is recovered
//! transparently, matching parking_lot's "no poisoning" semantics closely
//! enough for this workspace).

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting
    /// (parking_lot signature: the guard is reacquired in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the std guard is moved out for the duration of the wait and
        // the reacquired guard written back before anyone can observe the
        // hole; `Condvar::wait` only fails on poisoning, which we recover.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let reacquired = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(&mut guard.0, reacquired);
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock with parking_lot's panic-free accessors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard.
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
