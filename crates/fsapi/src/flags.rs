//! Open flags, file modes, and seek whence values.

use std::ops::{BitAnd, BitOr, BitOrAssign};

/// Flags accepted by [`crate::ProcFs::open`], a subset of POSIX `O_*`.
///
/// Implemented by hand (rather than via the `bitflags` crate) to keep the
/// dependency set to the pre-approved list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags(pub u32);

impl OpenFlags {
    /// Open for reading only.
    pub const RDONLY: OpenFlags = OpenFlags(0o0);
    /// Open for writing only.
    pub const WRONLY: OpenFlags = OpenFlags(0o1);
    /// Open for reading and writing.
    pub const RDWR: OpenFlags = OpenFlags(0o2);
    /// Create the file if it does not exist.
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    /// With [`Self::CREAT`], fail if the file already exists.
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    /// Truncate the file to length 0 on open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    /// All writes append to the end of the file.
    pub const APPEND: OpenFlags = OpenFlags(0o2000);
    /// Expect a directory; fail with `ENOTDIR` otherwise.
    pub const DIRECTORY: OpenFlags = OpenFlags(0o200000);

    const ACCESS_MASK: u32 = 0o3;

    /// True if every flag in `other` is set in `self`.
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if the access mode permits reading.
    pub fn readable(self) -> bool {
        matches!(self.0 & Self::ACCESS_MASK, 0o0 | 0o2)
    }

    /// True if the access mode permits writing.
    pub fn writable(self) -> bool {
        matches!(self.0 & Self::ACCESS_MASK, 0o1 | 0o2)
    }
}

impl BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for OpenFlags {
    fn bitor_assign(&mut self, rhs: OpenFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for OpenFlags {
    type Output = OpenFlags;
    fn bitand(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 & rhs.0)
    }
}

/// A POSIX permission mode (e.g. `0o644`).
///
/// Hare performs "the standard POSIX permission checks" at the file server on
/// open (paper §3.2); this reproduction carries modes through the protocol
/// and checks the owner-class bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode(pub u16);

impl Mode {
    /// Returns true if the owner class may read.
    pub fn owner_read(self) -> bool {
        self.0 & 0o400 != 0
    }

    /// Returns true if the owner class may write.
    pub fn owner_write(self) -> bool {
        self.0 & 0o200 != 0
    }
}

impl Default for Mode {
    /// The conventional `0o644` default.
    fn default() -> Self {
        Mode(0o644)
    }
}

/// The `whence` argument of [`crate::ProcFs::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Offset is absolute.
    Set,
    /// Offset is relative to the current position.
    Cur,
    /// Offset is relative to end of file.
    End,
}

/// Computes a new file offset from an lseek request.
///
/// Returns `Err(Errno::EINVAL)` if the resulting offset would be negative.
pub fn apply_seek(cur: u64, size: u64, offset: i64, whence: Whence) -> Result<u64, crate::Errno> {
    let base = match whence {
        Whence::Set => 0,
        Whence::Cur => cur as i64,
        Whence::End => size as i64,
    };
    let new = base.checked_add(offset).ok_or(crate::Errno::EINVAL)?;
    if new < 0 {
        Err(crate::Errno::EINVAL)
    } else {
        Ok(new as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(OpenFlags::RDWR.readable());
        assert!(OpenFlags::RDWR.writable());
    }

    #[test]
    fn combined_flags_preserve_access_mode() {
        let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        assert!(f.writable());
        assert!(!f.readable());
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::TRUNC));
        assert!(!f.contains(OpenFlags::EXCL));
    }

    #[test]
    fn seek_arithmetic() {
        assert_eq!(apply_seek(0, 100, 10, Whence::Set), Ok(10));
        assert_eq!(apply_seek(10, 100, -5, Whence::Cur), Ok(5));
        assert_eq!(apply_seek(10, 100, -5, Whence::End), Ok(95));
        assert_eq!(apply_seek(10, 100, 5, Whence::End), Ok(105));
        assert!(apply_seek(0, 0, -1, Whence::Cur).is_err());
        assert!(apply_seek(0, 0, i64::MAX, Whence::End).is_ok());
    }

    #[test]
    fn default_mode_is_644() {
        let m = Mode::default();
        assert!(m.owner_read());
        assert!(m.owner_write());
        assert_eq!(m.0, 0o644);
    }

    #[test]
    fn mode_bits() {
        assert!(!Mode(0o000).owner_read());
        assert!(!Mode(0o044).owner_write());
        assert!(Mode(0o200).owner_write());
    }
}
