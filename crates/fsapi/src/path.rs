//! Absolute path parsing and normalization.
//!
//! Hare resolves pathnames iteratively, one component per directory-server
//! RPC (paper §3.6.1). The helpers here split paths into the component lists
//! that resolution walks. Only absolute paths are supported; `.` components
//! are dropped and `..` components are resolved lexically (the paper's
//! benchmarks never traverse `..` through renamed directories, so lexical
//! resolution is equivalent).

use crate::errno::{Errno, FsResult};

/// Maximum length of a single path component, as in Linux (`NAME_MAX`).
pub const NAME_MAX: usize = 255;

/// Maximum length of a whole path, as in Linux (`PATH_MAX`).
pub const PATH_MAX: usize = 4096;

/// Validates a single directory-entry name.
///
/// Names must be non-empty, at most [`NAME_MAX`] bytes, contain no `/` or NUL
/// bytes, and must not be `.` or `..`.
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name == "." || name == ".." {
        return Err(Errno::EINVAL);
    }
    if name.len() > NAME_MAX {
        return Err(Errno::ENAMETOOLONG);
    }
    if name.bytes().any(|b| b == b'/' || b == 0) {
        return Err(Errno::EINVAL);
    }
    Ok(())
}

/// Splits an absolute path into normalized components.
///
/// Returns the empty vector for the root directory `/`.
///
/// # Examples
///
/// ```
/// let c = fsapi::path::components("/a//b/./c/../d").unwrap();
/// assert_eq!(c, vec!["a", "b", "d"]);
/// ```
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(Errno::EINVAL);
    }
    if path.len() > PATH_MAX {
        return Err(Errno::ENAMETOOLONG);
    }
    // Sized to the separator count up front: one exact allocation instead
    // of doubling growth on deep paths (resolution is a hot path).
    let mut out: Vec<&str> = Vec::with_capacity(path.bytes().filter(|&b| b == b'/').count());
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                // Lexical parent: `..` at the root stays at the root, as in
                // POSIX.
                out.pop();
            }
            name => {
                if name.len() > NAME_MAX {
                    return Err(Errno::ENAMETOOLONG);
                }
                out.push(name);
            }
        }
    }
    Ok(out)
}

/// Splits a path into `(parent_components, last_name)`.
///
/// Fails with `EINVAL` for the root directory, which has no parent entry.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(Errno::EINVAL),
    }
}

/// Joins a directory path and an entry name.
pub fn join(dir: &str, name: &str) -> String {
    if dir.ends_with('/') {
        format!("{dir}{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// Normalizes an absolute path to its canonical text form.
pub fn normalize(path: &str) -> FsResult<String> {
    let comps = components(path)?;
    if comps.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", comps.join("/")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_components() {
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("///").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn relative_paths_rejected() {
        assert_eq!(components("a/b"), Err(Errno::EINVAL));
        assert_eq!(components(""), Err(Errno::EINVAL));
    }

    #[test]
    fn dot_and_dotdot() {
        assert_eq!(components("/a/./b").unwrap(), vec!["a", "b"]);
        assert_eq!(components("/a/../b").unwrap(), vec!["b"]);
        assert_eq!(components("/../a").unwrap(), vec!["a"]);
        assert_eq!(components("/a/b/../..").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn split_parent_basic() {
        let (dir, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(dir, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("ok").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".").is_err());
        assert!(validate_name("..").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name(&"x".repeat(NAME_MAX)).is_ok());
        assert!(validate_name(&"x".repeat(NAME_MAX + 1)).is_err());
    }

    #[test]
    fn join_and_normalize() {
        assert_eq!(join("/a", "b"), "/a/b");
        assert_eq!(join("/", "b"), "/b");
        assert_eq!(normalize("/a//b/.").unwrap(), "/a/b");
        assert_eq!(normalize("/").unwrap(), "/");
    }

    #[test]
    fn long_path_rejected() {
        let long = format!("/{}", "a/".repeat(PATH_MAX));
        assert_eq!(components(&long), Err(Errno::ENAMETOOLONG));
    }
}
