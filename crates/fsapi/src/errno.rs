//! POSIX-style error numbers.
//!
//! Hare strives to implement the POSIX system call API faithfully enough to
//! run unmodified applications (paper §1), so errors cross the client/server
//! protocol as errno values rather than rich error types.

/// Result alias used across all file system interfaces.
pub type FsResult<T> = Result<T, Errno>;

/// POSIX error numbers used by this reproduction.
///
/// The set covers every failure mode the Hare protocol and the paper's
/// benchmarks can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// No such file or directory.
    ENOENT,
    /// File exists.
    EEXIST,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Directory not empty.
    ENOTEMPTY,
    /// Bad file descriptor.
    EBADF,
    /// Invalid argument.
    EINVAL,
    /// No space left on device (buffer cache partition exhausted).
    ENOSPC,
    /// File name too long.
    ENAMETOOLONG,
    /// Device or resource busy (e.g. directory marked for deletion).
    EBUSY,
    /// Resource temporarily unavailable.
    EAGAIN,
    /// Broken pipe: write with no readers.
    EPIPE,
    /// Illegal seek (on a pipe).
    ESPIPE,
    /// Permission denied.
    EACCES,
    /// Too many open files in this process.
    EMFILE,
    /// Operation not supported by this system (e.g. shared descriptors on
    /// the NFS baseline, paper §2.2).
    ENOSYS,
    /// Low-level I/O error (protocol failure).
    EIO,
    /// Cross-device link (rename across file systems).
    EXDEV,
    /// Too many links.
    EMLINK,
    /// Argument list too long (spawn).
    E2BIG,
    /// No child processes.
    ECHILD,
    /// Interrupted system call.
    EINTR,
    /// Too many levels of indirection (a forwarding chain exceeded its
    /// hop budget).
    ELOOP,
}

impl Errno {
    /// The conventional numeric value (Linux x86-64 ABI) for this errno.
    pub fn code(self) -> i32 {
        match self {
            Errno::ENOENT => 2,
            Errno::EINTR => 4,
            Errno::EIO => 5,
            Errno::E2BIG => 7,
            Errno::EBADF => 9,
            Errno::ECHILD => 10,
            Errno::EAGAIN => 11,
            Errno::EACCES => 13,
            Errno::EBUSY => 16,
            Errno::EEXIST => 17,
            Errno::EXDEV => 18,
            Errno::ENOTDIR => 20,
            Errno::EISDIR => 21,
            Errno::EINVAL => 22,
            Errno::EMFILE => 24,
            Errno::ENOSPC => 28,
            Errno::ESPIPE => 29,
            Errno::EMLINK => 31,
            Errno::EPIPE => 32,
            Errno::ENAMETOOLONG => 36,
            Errno::ENOTEMPTY => 39,
            Errno::ENOSYS => 38,
            Errno::ELOOP => 40,
        }
    }

    /// A short human-readable description, as `strerror` would produce.
    pub fn message(self) -> &'static str {
        match self {
            Errno::ENOENT => "No such file or directory",
            Errno::EINTR => "Interrupted system call",
            Errno::EIO => "Input/output error",
            Errno::E2BIG => "Argument list too long",
            Errno::EBADF => "Bad file descriptor",
            Errno::ECHILD => "No child processes",
            Errno::EAGAIN => "Resource temporarily unavailable",
            Errno::EACCES => "Permission denied",
            Errno::EBUSY => "Device or resource busy",
            Errno::EEXIST => "File exists",
            Errno::EXDEV => "Invalid cross-device link",
            Errno::ENOTDIR => "Not a directory",
            Errno::EISDIR => "Is a directory",
            Errno::EINVAL => "Invalid argument",
            Errno::EMFILE => "Too many open files",
            Errno::ENOSPC => "No space left on device",
            Errno::ESPIPE => "Illegal seek",
            Errno::EMLINK => "Too many links",
            Errno::EPIPE => "Broken pipe",
            Errno::ENAMETOOLONG => "File name too long",
            Errno::ENOTEMPTY => "Directory not empty",
            Errno::ENOSYS => "Function not implemented",
            Errno::ELOOP => "Too many levels of symbolic links",
        }
    }
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self, self.message())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux_abi() {
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EEXIST.code(), 17);
        assert_eq!(Errno::ENOTEMPTY.code(), 39);
        assert_eq!(Errno::EPIPE.code(), 32);
    }

    #[test]
    fn display_includes_message() {
        let s = Errno::ENOENT.to_string();
        assert!(s.contains("ENOENT"));
        assert!(s.contains("No such file or directory"));
    }

    #[test]
    fn codes_are_distinct() {
        let all = [
            Errno::ENOENT,
            Errno::EEXIST,
            Errno::ENOTDIR,
            Errno::EISDIR,
            Errno::ENOTEMPTY,
            Errno::EBADF,
            Errno::EINVAL,
            Errno::ENOSPC,
            Errno::ENAMETOOLONG,
            Errno::EBUSY,
            Errno::EAGAIN,
            Errno::EPIPE,
            Errno::ESPIPE,
            Errno::EACCES,
            Errno::EMFILE,
            Errno::ENOSYS,
            Errno::EIO,
            Errno::EXDEV,
            Errno::EMLINK,
            Errno::E2BIG,
            Errno::ECHILD,
            Errno::EINTR,
        ];
        let mut codes: Vec<i32> = all.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }
}
