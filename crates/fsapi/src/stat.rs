//! File metadata types (`stat`, directory entries).

/// The type of a file system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileType {
    /// Regular file backed by buffer cache blocks.
    Regular,
    /// Directory (centralized or distributed in Hare).
    Directory,
    /// Pipe endpoint (Hare implements pipes at a file server so they can be
    /// shared across cores, e.g. make's jobserver — paper §5.2).
    Pipe,
}

impl FileType {
    /// True for [`FileType::Directory`].
    pub fn is_dir(self) -> bool {
        matches!(self, FileType::Directory)
    }

    /// True for [`FileType::Regular`].
    pub fn is_file(self) -> bool {
        matches!(self, FileType::Regular)
    }
}

/// Metadata describing one file system object, as returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number, unique within the owning server.
    pub ino: u64,
    /// Identifier of the file server storing the inode. Hare names inodes
    /// with a `(server, number)` tuple for uniqueness and scalable allocation
    /// (paper §3.6.4); baselines report 0.
    pub server: u16,
    /// Object type.
    pub ftype: FileType,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Number of hard links.
    pub nlink: u32,
    /// Permission bits.
    pub mode: u16,
    /// Number of buffer-cache blocks allocated to the file.
    pub blocks: u64,
}

/// One entry of a directory listing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Inode number of the target.
    pub ino: u64,
    /// Server storing the target's inode (Hare directory entries record both
    /// the inode and the server, paper §3.6.1).
    pub server: u16,
    /// Target type.
    pub ftype: FileType,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_type_predicates() {
        assert!(FileType::Directory.is_dir());
        assert!(!FileType::Directory.is_file());
        assert!(FileType::Regular.is_file());
        assert!(!FileType::Pipe.is_dir());
        assert!(!FileType::Pipe.is_file());
    }

    #[test]
    fn dir_entries_sort_by_name() {
        let mut v = [
            DirEntry {
                name: "b".into(),
                ino: 1,
                server: 0,
                ftype: FileType::Regular,
            },
            DirEntry {
                name: "a".into(),
                ino: 2,
                server: 1,
                ftype: FileType::Directory,
            },
        ];
        v.sort();
        assert_eq!(v[0].name, "a");
        assert_eq!(v[1].name, "b");
    }
}
