//! Common POSIX-like file system interface.
//!
//! The Hare paper evaluates three systems against the same POSIX workloads:
//! Hare itself, Linux `ramfs`/`tmpfs`, and the user-space NFS server UNFS3.
//! This crate defines the narrow waist those systems share in this
//! reproduction: a process-scoped file system handle ([`ProcFs`]), a process
//! spawning interface ([`ProcHandle`]), and the plain-old-data types that
//! cross it ([`OpenFlags`], [`Stat`], [`DirEntry`], [`Errno`], ...).
//!
//! Workloads (crate `hare-workloads`) are written once against these traits
//! and run unchanged on every system, mirroring how the paper runs unmodified
//! POSIX applications on all three systems.

pub mod errno;
pub mod flags;
pub mod path;
pub mod stat;

pub use errno::{Errno, FsResult};
pub use flags::{Mode, OpenFlags, Whence};
pub use stat::{DirEntry, FileType, Stat};

/// A process-local file descriptor.
///
/// Descriptors are small integers scoped to one process, exactly as in POSIX.
/// They are handed out by [`ProcFs::open`] and friends and retired by
/// [`ProcFs::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Options controlling directory creation.
///
/// Hare lets applications choose, per directory, whether its entries are
/// distributed across all file servers or kept at a single home server
/// (paper §3.3, "determined by a flag at directory creation time").
/// Baseline systems ignore the flag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MkdirOpts {
    /// `Some(true)` forces a distributed directory, `Some(false)` forces a
    /// centralized one, and `None` defers to the system-wide default.
    pub distributed: Option<bool>,
}

impl MkdirOpts {
    /// Options requesting a distributed directory.
    pub const DISTRIBUTED: MkdirOpts = MkdirOpts {
        distributed: Some(true),
    };
    /// Options requesting a centralized directory.
    pub const CENTRALIZED: MkdirOpts = MkdirOpts {
        distributed: Some(false),
    };
}

/// The entry point a spawned process runs, analogous to `main()`.
///
/// The closure receives the child's process handle and returns the process
/// exit status.
pub type ProcMain<P> = Box<dyn FnOnce(&P) -> i32 + Send + 'static>;

/// A handle for waiting on a spawned process, analogous to `waitpid`.
///
/// In Hare the parent of a remotely-executed process waits on a local *proxy*
/// which relays the exit status from the remote core's scheduling server
/// (paper §3.5); this type is the caller-facing end of that relay.
pub struct ProcJoin {
    waiter: Box<dyn FnOnce() -> i32 + Send + 'static>,
}

impl ProcJoin {
    /// Wraps an implementation-specific wait mechanism.
    pub fn new(waiter: impl FnOnce() -> i32 + Send + 'static) -> Self {
        ProcJoin {
            waiter: Box::new(waiter),
        }
    }

    /// Blocks until the process exits and returns its exit status.
    pub fn wait(self) -> i32 {
        (self.waiter)()
    }
}

impl std::fmt::Debug for ProcJoin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProcJoin")
    }
}

/// File system operations available to one process.
///
/// This is the slice of the POSIX API the paper's benchmarks exercise
/// (Figure 5): file and directory namespace operations, file I/O through
/// descriptors, pipes, and descriptor duplication. All paths are absolute.
pub trait ProcFs {
    /// Opens `path`, optionally creating it, and returns a new descriptor.
    fn open(&self, path: &str, flags: OpenFlags, mode: Mode) -> FsResult<Fd>;

    /// Closes a descriptor. For Hare this triggers the write-back half of
    /// close-to-open consistency (paper §3.2).
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Reads up to `buf.len()` bytes at the descriptor's current offset,
    /// advancing the offset. Returns the number of bytes read; 0 means EOF.
    fn read(&self, fd: Fd, buf: &mut [u8]) -> FsResult<usize>;

    /// Writes `buf` at the descriptor's current offset, advancing the offset
    /// (or at end of file when the descriptor is `O_APPEND`).
    fn write(&self, fd: Fd, buf: &[u8]) -> FsResult<usize>;

    /// Repositions the descriptor offset and returns the new offset.
    fn lseek(&self, fd: Fd, offset: i64, whence: Whence) -> FsResult<u64>;

    /// Forces written data of `fd` to the shared store. For Hare this writes
    /// back dirty private-cache blocks to shared DRAM (paper §3.2).
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Truncates the file open at `fd` to `len` bytes.
    fn ftruncate(&self, fd: Fd, len: u64) -> FsResult<()>;

    /// Duplicates a descriptor (`dup`). The two descriptors share one offset.
    fn dup(&self, fd: Fd) -> FsResult<Fd>;

    /// Creates a pipe, returning `(read_end, write_end)`.
    fn pipe(&self) -> FsResult<(Fd, Fd)>;

    /// Removes the directory entry `path`; the file's data remains readable
    /// through already-open descriptors (orphan semantics, paper §3.4).
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Creates a directory with default distribution policy.
    fn mkdir(&self, path: &str, mode: Mode) -> FsResult<()> {
        self.mkdir_opts(path, mode, MkdirOpts::default())
    }

    /// Creates a directory with an explicit distribution choice.
    fn mkdir_opts(&self, path: &str, mode: Mode, opts: MkdirOpts) -> FsResult<()>;

    /// Removes an empty directory. For distributed directories Hare runs the
    /// three-phase removal protocol (paper §3.3).
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Atomically renames `old` to `new`, replacing `new` if it exists.
    fn rename(&self, old: &str, new: &str) -> FsResult<()>;

    /// Lists the entries of a directory (excluding `.` and `..`).
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Returns metadata for `path`.
    fn stat(&self, path: &str) -> FsResult<Stat>;

    /// Returns metadata for an open descriptor.
    fn fstat(&self, fd: Fd) -> FsResult<Stat>;
}

/// A handle to a running process on one of the machine's cores.
///
/// [`ProcHandle::spawn`] is the `fork` + `exec` idiom the paper's workloads
/// use: the child inherits every open descriptor of the parent (making those
/// descriptors *shared* in Hare's hybrid descriptor tracking, paper §3.4) and
/// begins execution on a core chosen by the system's placement policy
/// (paper §3.5).
pub trait ProcHandle: ProcFs + Send + Sized + 'static {
    /// Spawns a child process running `main`, inheriting all open
    /// descriptors. Returns a join handle delivering the exit status.
    fn spawn(&self, main: ProcMain<Self>) -> FsResult<ProcJoin>;

    /// The virtual core this process currently runs on.
    fn core(&self) -> usize;

    /// Burns `cycles` of virtual CPU time on this process's core (models
    /// application compute, e.g. the compiler work in the build-linux
    /// workload).
    fn compute(&self, cycles: u64);
}

/// Virtual-clock access for one process: the hook trace replay needs.
///
/// Every simulated process carries a logical timeline in virtual cycles
/// (see the `vtime` crate). The trace-replay driver schedules per-client
/// operation streams on that timeline — an operation's *think time* is
/// idle waiting, so the driver needs to read a process's clock after each
/// operation and park it (without consuming CPU) until the next one is
/// due. [`ProcHandle::compute`] cannot express that: compute is *busy*
/// time and would charge think time to the core.
pub trait VClock {
    /// This process's current virtual time, in cycles.
    fn vnow(&self) -> u64;

    /// Advances this process's virtual clock to at least `t` without
    /// consuming CPU (idle think time; never moves the clock backwards).
    fn vwait(&self, t: u64);
}

/// A complete system under test: a machine image that can host processes.
pub trait System: Send + Sync + 'static {
    /// The process handle type for this system.
    type Proc: ProcHandle;

    /// Starts the initial process (the benchmark driver) on core 0.
    fn start_proc(&self) -> Self::Proc;

    /// Total virtual cycles consumed so far (max over all core clocks).
    fn elapsed_cycles(&self) -> u64;

    /// Synchronizes every core clock to the global maximum: a barrier
    /// between experiment phases, so measured work cannot overlap setup.
    fn sync_cores(&self);

    /// Number of cores in the simulated machine.
    fn ncores(&self) -> usize;
}

/// Convenience: read the entire contents of `path`.
pub fn read_to_vec<P: ProcFs + ?Sized>(p: &P, path: &str) -> FsResult<Vec<u8>> {
    let fd = p.open(path, OpenFlags::RDONLY, Mode::default())?;
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = p.read(fd, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    p.close(fd)?;
    Ok(out)
}

/// Convenience: create (or truncate) `path` and write `data` to it.
pub fn write_file<P: ProcFs + ?Sized>(p: &P, path: &str, data: &[u8]) -> FsResult<()> {
    let fd = p.open(
        path,
        OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
        Mode::default(),
    )?;
    let mut off = 0;
    while off < data.len() {
        off += p.write(fd, &data[off..])?;
    }
    p.close(fd)
}

/// Convenience: `mkdir -p` — creates all missing ancestors of `path`.
pub fn mkdir_p<P: ProcFs + ?Sized>(p: &P, path: &str, opts: MkdirOpts) -> FsResult<()> {
    let comps = path::components(path)?;
    let mut cur = String::new();
    for c in comps {
        cur.push('/');
        cur.push_str(c);
        match p.mkdir_opts(&cur, Mode::default(), opts) {
            Ok(()) | Err(Errno::EEXIST) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_display() {
        assert_eq!(Fd(3).to_string(), "fd3");
    }

    #[test]
    fn proc_join_delivers_status() {
        let j = ProcJoin::new(|| 42);
        assert_eq!(j.wait(), 42);
    }

    #[test]
    fn mkdir_opts_constants() {
        assert_eq!(MkdirOpts::DISTRIBUTED.distributed, Some(true));
        assert_eq!(MkdirOpts::CENTRALIZED.distributed, Some(false));
        assert_eq!(MkdirOpts::default().distributed, None);
    }
}
