//! Property tests for path normalization.

use fsapi::path;
use proptest::prelude::*;

/// Strategy producing valid path component names.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,12}".prop_filter("no dot names", |s| s != "." && s != "..")
}

proptest! {
    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(comps in prop::collection::vec(name_strategy(), 0..8)) {
        let p = format!("/{}", comps.join("/"));
        let n1 = path::normalize(&p).unwrap();
        let n2 = path::normalize(&n1).unwrap();
        prop_assert_eq!(n1, n2);
    }

    /// components() of a path built by joining names returns those names.
    #[test]
    fn components_roundtrip(comps in prop::collection::vec(name_strategy(), 0..8)) {
        let p = format!("/{}", comps.join("/"));
        let got = path::components(&p).unwrap();
        prop_assert_eq!(got, comps.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }

    /// Redundant slashes and `.` components never change the result.
    #[test]
    fn noise_invariant(comps in prop::collection::vec(name_strategy(), 1..6)) {
        let clean = format!("/{}", comps.join("/"));
        let noisy = format!("//{}/.", comps.join("/./"));
        prop_assert_eq!(
            path::components(&clean).unwrap(),
            path::components(&noisy).unwrap()
        );
    }

    /// split_parent + join reconstructs the normalized path.
    #[test]
    fn split_join_roundtrip(comps in prop::collection::vec(name_strategy(), 1..8)) {
        let p = format!("/{}", comps.join("/"));
        let (parent, name) = path::split_parent(&p).unwrap();
        let parent_path = if parent.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", parent.join("/"))
        };
        prop_assert_eq!(path::join(&parent_path, name), path::normalize(&p).unwrap());
    }

    /// `..` never escapes the root.
    #[test]
    fn dotdot_contained(n in 0usize..10) {
        let p = format!("/{}x", "../".repeat(n));
        let comps = path::components(&p).unwrap();
        prop_assert_eq!(comps, vec!["x"]);
    }
}
