//! NUMA topology of the simulated machine.

/// Relative distance between two cores, determining message latency and the
/// benefit of Hare's creation-affinity heuristic (paper §3.6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Same core: no interconnect hop, but a context switch if two entities
    /// time-share the core.
    SameCore,
    /// Different cores on one socket.
    SameSocket,
    /// Cores on different sockets (QPI hop on the paper's machine).
    CrossSocket,
}

/// A sockets × cores-per-socket machine layout.
///
/// The paper's testbed is 4 × Intel Xeon E7-4850 (10 cores each), i.e.
/// `Topology::new(4, 10)`. Core ids are dense: socket = id / cores_per_socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    sockets: usize,
    cores_per_socket: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sockets: usize, cores_per_socket: usize) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0);
        Topology {
            sockets,
            cores_per_socket,
        }
    }

    /// The paper's 40-core evaluation machine: 4 sockets × 10 cores.
    pub fn paper_machine() -> Self {
        Topology::new(4, 10)
    }

    /// A topology with `n` cores spread over up to 4 sockets, mirroring how
    /// the paper's experiments use core subsets of the 4-socket machine.
    pub fn with_cores(n: usize) -> Self {
        assert!(n > 0);
        if n <= 10 {
            Topology::new(1, n)
        } else {
            Topology::new(4, n.div_ceil(4))
        }
    }

    /// Total number of cores.
    pub fn ncores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// The socket a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of(&self, core: usize) -> usize {
        assert!(core < self.ncores(), "core {core} out of range");
        core / self.cores_per_socket
    }

    /// Distance class between two cores.
    pub fn distance(&self, a: usize, b: usize) -> Distance {
        if a == b {
            Distance::SameCore
        } else if self.socket_of(a) == self.socket_of(b) {
            Distance::SameSocket
        } else {
            Distance::CrossSocket
        }
    }

    /// Cores sharing a socket with `core` (including itself).
    pub fn socket_peers(&self, core: usize) -> std::ops::Range<usize> {
        let s = self.socket_of(core);
        s * self.cores_per_socket..(s + 1) * self.cores_per_socket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let t = Topology::paper_machine();
        assert_eq!(t.ncores(), 40);
        assert_eq!(t.sockets(), 4);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(9), 0);
        assert_eq!(t.socket_of(10), 1);
        assert_eq!(t.socket_of(39), 3);
    }

    #[test]
    fn distances() {
        let t = Topology::paper_machine();
        assert_eq!(t.distance(3, 3), Distance::SameCore);
        assert_eq!(t.distance(3, 7), Distance::SameSocket);
        assert_eq!(t.distance(3, 13), Distance::CrossSocket);
    }

    #[test]
    fn with_cores_small_is_single_socket() {
        let t = Topology::with_cores(8);
        assert_eq!(t.sockets(), 1);
        assert!(t.ncores() >= 8);
        let t = Topology::with_cores(40);
        assert_eq!(t.sockets(), 4);
        assert_eq!(t.ncores(), 40);
    }

    #[test]
    fn socket_peers_range() {
        let t = Topology::paper_machine();
        assert_eq!(t.socket_peers(12), 10..20);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core() {
        Topology::new(1, 2).socket_of(2);
    }
}
