//! The calibrated cost model.
//!
//! All costs are in cycles of the simulated 2 GHz machine. The calibration
//! anchors come from the paper's own measurements (§5.3.3):
//!
//! * `rename()` issues two RPCs, ADD_MAP and RM_MAP, costing 2434 and 1767
//!   cycles at the client while the server spends 1211 and 756 cycles —
//!   so the messaging overhead is "roughly 1000 cycles per operation".
//!   With `msg_send + msg_recv + 2 × latency(same socket)` =
//!   300 + 250 + 2×250 = 1050, our model lands in the same place.
//! * `rename()` takes 7.204 µs when client and server time-share one core
//!   versus 4.171 µs on separate cores; the ~6000-cycle difference over two
//!   RPCs gives ~1500 cycles per context switch (two switches per same-core
//!   RPC), which is `ctx_switch` below.

use crate::topology::Distance;

/// Cost constants (cycles @ 2 GHz) for every simulated action.
///
/// The struct is plain data so experiments can perturb individual costs
/// (e.g. the "better hardware support for IPC" discussion in paper §6 maps
/// to lowering `msg_*` and `ctx_switch`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // --- Messaging (Hare's Pika-derived message passing library) ---
    /// Client/server CPU cost to send one message.
    pub msg_send: u64,
    /// CPU cost to receive/dispatch one message.
    pub msg_recv: u64,
    /// Wire latency between distinct cores on one socket.
    pub lat_same_socket: u64,
    /// Wire latency across sockets.
    pub lat_cross_socket: u64,
    /// Delivery latency when sender and receiver share a core.
    pub lat_same_core: u64,
    /// Context switch when a message crosses entities time-sharing a core
    /// (Linux schedule + switch in the paper's prototype; reduced by their
    /// PCID patch but still dominant, §4, §5.3.3).
    pub ctx_switch: u64,

    // --- Hare client library ---
    /// Client-library entry/exit per intercepted syscall.
    pub syscall_base: u64,
    /// Directory-cache hit (drain invalidation queue + hash lookup).
    pub dircache_hit: u64,

    // --- Buffer cache (through the non-coherent private cache) ---
    /// Access to a block resident in the private cache.
    pub cache_hit_blk: u64,
    /// Fetch of a block from shared DRAM on a private-cache miss.
    pub cache_miss_blk: u64,
    /// Write-back of one dirty block to shared DRAM (close/fsync).
    pub writeback_blk: u64,
    /// Invalidate of one block (open).
    pub invalidate_blk: u64,
    /// Server-side direct DRAM access per block (shared-fd I/O and the
    /// no-direct-access ablation route data through the server).
    pub dram_direct_blk: u64,

    // --- Linux (ramfs/tmpfs) baseline: coherent shared memory ---
    /// VFS syscall entry/exit.
    pub ramfs_syscall: u64,
    /// Typical metadata operation body.
    pub ramfs_op: u64,
    /// Directory-lock hold time for a namespace mutation (serialized per
    /// directory — the CC-SMP scalability bottleneck of paper §2.1).
    pub ramfs_dirlock_hold: u64,
    /// Per-block data copy (coherent caches, no protocol).
    pub ramfs_data_blk: u64,
    /// Cache-line contention penalty per cross-core shared-lock acquisition.
    pub ramfs_contention: u64,

    // --- UNFS3 baseline: user-space NFS over loopback ---
    /// One loopback RPC through the kernel network stack (both directions).
    pub unfs_rpc: u64,
    /// Server-side cost per NFS operation.
    pub unfs_op: u64,
    /// Per-block data transfer cost through the socket.
    pub unfs_data_blk: u64,
}

impl CostModel {
    /// Message latency for a distance class.
    pub fn latency(&self, d: Distance) -> u64 {
        match d {
            Distance::SameCore => self.lat_same_core,
            Distance::SameSocket => self.lat_same_socket,
            Distance::CrossSocket => self.lat_cross_socket,
        }
    }

    /// A cost model with all messaging and context-switch costs zeroed,
    /// useful in unit tests that check functional behaviour only.
    pub fn free() -> Self {
        CostModel {
            msg_send: 0,
            msg_recv: 0,
            lat_same_socket: 0,
            lat_cross_socket: 0,
            lat_same_core: 0,
            ctx_switch: 0,
            syscall_base: 0,
            dircache_hit: 0,
            cache_hit_blk: 0,
            cache_miss_blk: 0,
            writeback_blk: 0,
            invalidate_blk: 0,
            dram_direct_blk: 0,
            ramfs_syscall: 0,
            ramfs_op: 0,
            ramfs_dirlock_hold: 0,
            ramfs_data_blk: 0,
            ramfs_contention: 0,
            unfs_rpc: 0,
            unfs_op: 0,
            unfs_data_blk: 0,
        }
    }
}

impl Default for CostModel {
    /// The calibrated model (see module docs for the anchors).
    fn default() -> Self {
        CostModel {
            msg_send: 300,
            msg_recv: 250,
            lat_same_socket: 250,
            lat_cross_socket: 750,
            lat_same_core: 100,
            ctx_switch: 1500,
            syscall_base: 300,
            dircache_hit: 120,
            cache_hit_blk: 150,
            cache_miss_blk: 1000,
            writeback_blk: 800,
            invalidate_blk: 60,
            dram_direct_blk: 1200,
            ramfs_syscall: 350,
            ramfs_op: 1000,
            ramfs_dirlock_hold: 700,
            ramfs_data_blk: 350,
            ramfs_contention: 400,
            unfs_rpc: 60_000,
            unfs_op: 2500,
            unfs_data_blk: 5000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::us_to_cycles;

    /// The model must reproduce the paper's §5.3.3 calibration anchors to
    /// first order.
    #[test]
    fn rename_rpc_overhead_matches_paper() {
        let m = CostModel::default();
        // Client-side overhead beyond server service, same-socket split
        // configuration: the paper reports ~1000-1200 cycles.
        let overhead = m.msg_send + m.msg_recv + 2 * m.lat_same_socket;
        assert!(
            (900..=1400).contains(&overhead),
            "client-side RPC overhead {overhead} out of calibration band"
        );
    }

    #[test]
    fn same_core_penalty_matches_paper() {
        let m = CostModel::default();
        // Same-core rename is ~3 µs slower than split over two RPCs
        // (7.204 µs vs 4.171 µs): two context switches per RPC.
        let penalty = 2 * 2 * m.ctx_switch;
        let paper = us_to_cycles(7) - us_to_cycles(4);
        assert!(
            penalty.abs_diff(paper) < 1500,
            "ctx-switch penalty {penalty} too far from paper's ~{paper}"
        );
    }

    #[test]
    fn latency_ordering() {
        let m = CostModel::default();
        assert!(m.latency(Distance::SameCore) < m.latency(Distance::SameSocket));
        assert!(m.latency(Distance::SameSocket) < m.latency(Distance::CrossSocket));
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.msg_send + m.ctx_switch + m.cache_miss_blk, 0);
    }
}
