//! Per-core virtual clocks.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// The set of per-core virtual clocks of one simulated machine.
///
/// Clocks are monotone `u64` cycle counters. Entities (application client
/// libraries, file servers, scheduling servers) bound to a core advance that
/// core's clock; entities sharing a core therefore automatically time-share
/// it, which is how the paper's "timeshare" configuration (server and
/// application on every core, §5.3.2) is modelled.
///
/// All operations are thread-safe: real OS threads simulate the entities
/// concurrently and race on these counters with atomic read-modify-write.
pub struct Clocks {
    cores: Vec<CachePadded<AtomicU64>>,
}

impl Clocks {
    /// Creates `n` clocks at time zero.
    pub fn new(n: usize) -> Self {
        Clocks {
            cores: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// Current virtual time of `core`.
    pub fn now(&self, core: usize) -> u64 {
        self.cores[core].load(Ordering::SeqCst)
    }

    /// Advances `core` by `cycles` of busy work; returns the new time.
    pub fn advance(&self, core: usize, cycles: u64) -> u64 {
        self.cores[core].fetch_add(cycles, Ordering::SeqCst) + cycles
    }

    /// Moves `core` forward to at least `t` (waiting for an event that
    /// completes at `t`); returns the resulting time.
    pub fn observe(&self, core: usize, t: u64) -> u64 {
        self.cores[core].fetch_max(t, Ordering::SeqCst).max(t)
    }

    /// Serves a request on `core`: the core becomes busy from
    /// `max(now, arrival)` for `service` cycles; returns the completion time.
    ///
    /// This is the queueing primitive: concurrent requests to the same core
    /// serialize, so a hot server core accumulates virtual queueing delay
    /// exactly as a real single server would.
    pub fn serve(&self, core: usize, arrival: u64, service: u64) -> u64 {
        let cell = &self.cores[core];
        let mut cur = cell.load(Ordering::SeqCst);
        loop {
            let done = cur.max(arrival) + service;
            match cell.compare_exchange_weak(cur, done, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return done,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Maximum clock over all cores: the virtual runtime of everything that
    /// has executed on this machine so far.
    pub fn max_time(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0)
    }

    /// Advances every core to the global maximum: a synchronization
    /// barrier between experiment phases (setup vs. measured region), so
    /// work done after the barrier cannot overlap work done before it.
    pub fn sync_all(&self) -> u64 {
        let t = self.max_time();
        for c in &self.cores {
            c.fetch_max(t, Ordering::SeqCst);
        }
        t
    }

    /// Snapshot of all core clocks (for per-core utilization reports).
    pub fn snapshot(&self) -> Vec<u64> {
        self.cores
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect()
    }
}

/// A virtual clock for a single serialization point that is not a core:
/// a lock, a single-threaded server, a loopback NFS daemon.
///
/// `serve` has the same queueing semantics as [`Clocks::serve`]: requests
/// arriving while the resource is busy accumulate virtual queueing delay.
/// This is how the baselines model Linux's per-directory lock contention
/// and UNFS3's single-server bottleneck.
#[derive(Debug, Default)]
pub struct ResourceClock(AtomicU64);

impl ResourceClock {
    /// A resource clock at time zero.
    pub fn new() -> Self {
        ResourceClock(AtomicU64::new(0))
    }

    /// Occupies the resource from `max(now, arrival)` for `hold` cycles;
    /// returns the release time.
    pub fn serve(&self, arrival: u64, hold: u64) -> u64 {
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let done = cur.max(arrival) + hold;
            match self
                .0
                .compare_exchange_weak(cur, done, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return done,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current virtual time of the resource.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn resource_clock_serializes() {
        let r = ResourceClock::new();
        assert_eq!(r.serve(0, 10), 10);
        assert_eq!(r.serve(0, 10), 20);
        assert_eq!(r.serve(100, 10), 110);
        assert_eq!(r.now(), 110);
    }

    #[test]
    fn advance_and_observe() {
        let c = Clocks::new(2);
        assert_eq!(c.advance(0, 100), 100);
        assert_eq!(c.advance(0, 50), 150);
        assert_eq!(c.observe(0, 120), 150, "observe never goes backwards");
        assert_eq!(c.observe(0, 500), 500);
        assert_eq!(c.now(1), 0);
        assert_eq!(c.max_time(), 500);
    }

    #[test]
    fn serve_serializes() {
        let c = Clocks::new(1);
        // Two requests arriving at t=0 with service 100 finish at 100, 200.
        let d1 = c.serve(0, 0, 100);
        let d2 = c.serve(0, 0, 100);
        assert_eq!(d1, 100);
        assert_eq!(d2, 200);
        // A request arriving after the core went idle starts at its arrival.
        let d3 = c.serve(0, 1000, 10);
        assert_eq!(d3, 1010);
    }

    #[test]
    fn serve_is_thread_safe() {
        let c = Arc::new(Clocks::new(1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.serve(0, 0, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8000 services of 1 cycle each, all arriving at 0: exactly 8000.
        assert_eq!(c.now(0), 8000);
    }

    #[test]
    fn snapshot_reports_all_cores() {
        let c = Clocks::new(3);
        c.advance(1, 7);
        assert_eq!(c.snapshot(), vec![0, 7, 0]);
    }
}
