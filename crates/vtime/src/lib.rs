//! Virtual-time cost accounting for the Hare reproduction.
//!
//! The paper evaluates Hare on a 40-core, 4-socket Xeon E7-4850 machine.
//! This reproduction runs on whatever machine it is given (possibly one
//! core), so wall-clock time cannot reproduce the paper's scalability
//! results. Instead, every simulated core carries a **virtual clock**
//! (in CPU cycles) and every action — client-side syscall work, message
//! latency, server service time, context switches when a server time-shares
//! a core with an application, private-cache hits/misses/write-backs —
//! advances the clock of the core it runs on by a calibrated cost.
//!
//! Contention falls out naturally: a server entity serializes its requests
//! on its core's clock (`clock = max(clock, arrival) + service`), so a
//! single hot server becomes a queueing bottleneck exactly as the paper's
//! `pfind sparse` benchmark demonstrates (§5.3.1), while sharded directory
//! operations spread load over many clocks and scale.
//!
//! A benchmark's virtual runtime is the maximum participating core clock;
//! speedups are ratios of virtual runtimes. The cost constants in
//! [`CostModel`] are calibrated against the measurements the paper reports
//! in §5.3.3 (e.g. 2434/1767-cycle client-side cost of the two rename RPCs,
//! 7.2 µs vs 4.2 µs single-core vs split rename latency).

pub mod clock;
pub mod cost;
pub mod topology;

pub use clock::{Clocks, ResourceClock};
pub use cost::CostModel;
pub use topology::{Distance, Topology};

/// Cycles per microsecond of the simulated machine (2 GHz, matching the
/// Xeon E7-4850's nominal clock).
pub const CYCLES_PER_US: u64 = 2000;

/// Converts cycles to nanoseconds at the simulated clock rate.
pub fn cycles_to_ns(cycles: u64) -> u64 {
    cycles * 1000 / CYCLES_PER_US
}

/// Converts microseconds to cycles at the simulated clock rate.
pub fn us_to_cycles(us: u64) -> u64 {
    us * CYCLES_PER_US
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion() {
        assert_eq!(us_to_cycles(1), 2000);
        assert_eq!(cycles_to_ns(2000), 1000);
        assert_eq!(cycles_to_ns(1), 0);
    }
}
