//! Machine-wide messaging counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared by every channel of one simulated machine.
///
/// The evaluation uses these to report messages-per-operation, the paper's
/// main sequential-overhead diagnosis ("the messaging overhead is roughly
/// 1000 cycles per operation", §5.3.3).
#[derive(Debug, Default)]
pub struct MsgStats {
    sends: AtomicU64,
    batched_ops: AtomicU64,
}

impl MsgStats {
    /// A fresh shared counter block.
    pub fn shared() -> Arc<MsgStats> {
        Arc::new(MsgStats::default())
    }

    /// Records one message send.
    pub fn record_send(&self) {
        self.sends.fetch_add(1, Ordering::Relaxed);
    }

    /// Total messages sent so far.
    pub fn sends(&self) -> u64 {
        self.sends.load(Ordering::Relaxed)
    }

    /// Records `n` operations shipped inside one batched exchange (the
    /// envelope itself is counted by [`MsgStats::record_send`] as usual).
    pub fn record_batched_ops(&self, n: u64) {
        self.batched_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Total operations that traveled inside batch envelopes. Tests and
    /// benches use this to verify a path really went through the batched
    /// transport, since a k-entry batch is indistinguishable from a single
    /// RPC in [`MsgStats::sends`].
    pub fn batched_ops(&self) -> u64 {
        self.batched_ops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let s = MsgStats::default();
        assert_eq!(s.sends(), 0);
        s.record_send();
        s.record_send();
        assert_eq!(s.sends(), 2);
    }

    #[test]
    fn batched_op_counts_are_separate() {
        let s = MsgStats::default();
        s.record_batched_ops(3);
        s.record_batched_ops(1);
        assert_eq!(s.batched_ops(), 4);
        assert_eq!(s.sends(), 0);
    }
}
