//! Machine-wide messaging counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared by every channel of one simulated machine.
///
/// The evaluation uses these to report messages-per-operation, the paper's
/// main sequential-overhead diagnosis ("the messaging overhead is roughly
/// 1000 cycles per operation", §5.3.3).
#[derive(Debug, Default)]
pub struct MsgStats {
    sends: AtomicU64,
}

impl MsgStats {
    /// A fresh shared counter block.
    pub fn shared() -> Arc<MsgStats> {
        Arc::new(MsgStats::default())
    }

    /// Records one message send.
    pub fn record_send(&self) {
        self.sends.fetch_add(1, Ordering::Relaxed);
    }

    /// Total messages sent so far.
    pub fn sends(&self) -> u64 {
        self.sends.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let s = MsgStats::default();
        assert_eq!(s.sends(), 0);
        s.record_send();
        s.record_send();
        assert_eq!(s.sends(), 2);
    }
}
