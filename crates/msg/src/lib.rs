//! Message passing with atomic delivery.
//!
//! Hare's messaging layer (derived from the Pika network stack) guarantees
//! **atomic message delivery**: "when the `send()` function completes, the
//! message is guaranteed to be present in the receiver's queue" (paper
//! §3.6.1). Hare's directory-cache invalidation protocol depends on this: a
//! server may proceed as soon as `send()` of an invalidation returns, and a
//! client that drains its invalidation queue before a lookup is guaranteed
//! to observe every invalidation sent before the lookup began — no
//! acknowledgment round trip needed.
//!
//! [`channel()`] provides exactly that property (the message is enqueued under
//! the receiver's lock before `send` returns), plus virtual-time stamps on
//! every envelope so the receiving entity can charge arrival latency.
//!
//! In the paper the transport is cache-coherent shared memory used *only*
//! for these queues; here it is a mutex-protected queue, which is the same
//! abstraction boundary.

pub mod channel;
pub mod stats;

pub use channel::{channel, Envelope, Receiver, RecvError, SendError, Sender};
pub use stats::MsgStats;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn atomic_delivery_property() {
        // After send() returns, the message must already be in the queue:
        // try_recv (no blocking, no waiting) must see it.
        let (tx, rx) = channel::<u32>(MsgStats::shared());
        tx.send(7, 123, 0).unwrap();
        let env = rx
            .try_recv()
            .expect("message must be present once send returned");
        assert_eq!(env.payload, 7);
        assert_eq!(env.deliver_at, 123);
        assert_eq!(env.src_core, 0);
    }

    #[test]
    fn fifo_per_sender() {
        let (tx, rx) = channel::<u32>(MsgStats::shared());
        for i in 0..100 {
            tx.send(i, 0, 0).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap().payload, i);
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = channel::<u64>(MsgStats::shared());
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i, i, 1).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..1000 {
            sum += rx.recv().unwrap().payload;
        }
        producer.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn close_wakes_receiver() {
        let (tx, rx) = channel::<u8>(MsgStats::shared());
        let rx = Arc::new(rx);
        let rx2 = Arc::clone(&rx);
        let waiter = thread::spawn(move || rx2.recv());
        thread::sleep(std::time::Duration::from_millis(10));
        tx.close();
        assert!(matches!(waiter.join().unwrap(), Err(RecvError::Closed)));
    }
}
