//! The atomic-delivery channel.

use crate::stats::MsgStats;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// A message plus the simulation metadata Hare needs.
#[derive(Debug, Clone)]
pub struct Envelope<T> {
    /// The message body.
    pub payload: T,
    /// Virtual time (cycles) at which the message is available at the
    /// receiver: sender's clock at send plus wire latency. The receiving
    /// entity advances its core clock to at least this value.
    pub deliver_at: u64,
    /// Core the sender was running on (for distance-dependent reply
    /// latency).
    pub src_core: usize,
}

/// Error returned by [`Sender::send`] when the channel is closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

/// Error returned by receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Queue empty (only from `try_recv`).
    Empty,
    /// Channel closed and drained.
    Closed,
}

struct Shared<T> {
    queue: Mutex<State<T>>,
    avail: Condvar,
    stats: Arc<MsgStats>,
}

struct State<T> {
    queue: VecDeque<Envelope<T>>,
    closed: bool,
}

/// Sending half; cheap to clone (multiple producers).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender")
    }
}

/// Receiving half (single consumer by convention; `recv` is `&self` so the
/// owning entity can be shared behind an `Arc`).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver")
    }
}

/// Creates a channel. `stats` accumulates machine-wide message counters.
pub fn channel<T>(stats: Arc<MsgStats>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            queue: VecDeque::new(),
            closed: false,
        }),
        avail: Condvar::new(),
        stats,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends a message with atomic delivery: when this returns `Ok`, the
    /// envelope is already in the receiver's queue.
    pub fn send(&self, payload: T, deliver_at: u64, src_core: usize) -> Result<(), SendError> {
        let mut st = self.shared.queue.lock();
        if st.closed {
            return Err(SendError);
        }
        st.queue.push_back(Envelope {
            payload,
            deliver_at,
            src_core,
        });
        self.shared.stats.record_send();
        drop(st);
        self.shared.avail.notify_one();
        Ok(())
    }

    /// Closes the channel; pending messages remain receivable, after which
    /// receivers observe [`RecvError::Closed`].
    pub fn close(&self) {
        let mut st = self.shared.queue.lock();
        st.closed = true;
        drop(st);
        self.shared.avail.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive: polls the queue, as Hare's client library polls
    /// its invalidation queue before each directory-cache lookup (§3.6.1).
    pub fn try_recv(&self) -> Result<Envelope<T>, RecvError> {
        let mut st = self.shared.queue.lock();
        match st.queue.pop_front() {
            Some(env) => Ok(env),
            None if st.closed => Err(RecvError::Closed),
            None => Err(RecvError::Empty),
        }
    }

    /// Drains every currently queued message without blocking.
    pub fn drain(&self) -> Vec<Envelope<T>> {
        let mut st = self.shared.queue.lock();
        st.queue.drain(..).collect()
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope<T>, RecvError> {
        let mut st = self.shared.queue.lock();
        loop {
            if let Some(env) = st.queue.pop_front() {
                return Ok(env);
            }
            if st.closed {
                return Err(RecvError::Closed);
            }
            self.shared.avail.wait(&mut st);
        }
    }

    /// Number of queued messages (diagnostics).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates another sender for this queue (servers hand these out so any
    /// client can message them).
    pub fn sender(&self) -> Sender<T> {
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_recv_empty_then_closed() {
        let (tx, rx) = channel::<u8>(MsgStats::shared());
        assert_eq!(rx.try_recv().unwrap_err(), RecvError::Empty);
        tx.send(1, 0, 0).unwrap();
        tx.close();
        // Pending message still delivered after close.
        assert_eq!(rx.try_recv().unwrap().payload, 1);
        assert_eq!(rx.try_recv().unwrap_err(), RecvError::Closed);
        assert!(tx.send(2, 0, 0).is_err());
    }

    #[test]
    fn drain_empties_queue() {
        let (tx, rx) = channel::<u8>(MsgStats::shared());
        for i in 0..5 {
            tx.send(i, i as u64, 0).unwrap();
        }
        let all = rx.drain();
        assert_eq!(all.len(), 5);
        assert!(rx.is_empty());
        assert_eq!(all[4].deliver_at, 4);
    }

    #[test]
    fn stats_count_sends() {
        let stats = MsgStats::shared();
        let (tx, _rx) = channel::<u8>(Arc::clone(&stats));
        for _ in 0..3 {
            tx.send(0, 0, 0).unwrap();
        }
        assert_eq!(stats.sends(), 3);
    }

    #[test]
    fn receiver_can_mint_senders() {
        let (_tx, rx) = channel::<u8>(MsgStats::shared());
        let tx2 = rx.sender();
        tx2.send(9, 0, 0).unwrap();
        assert_eq!(rx.recv().unwrap().payload, 9);
    }
}
