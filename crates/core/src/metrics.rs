//! Time-series observability: machine counters windowed over virtual time.
//!
//! The fig benches report one number per run. That is the wrong shape for
//! the dynamic subsystems — a rebalancer *reacting to a shifting hotspot*
//! or write-behind *absorbing a burst* is only visible as a sequence of
//! per-window samples. This module turns the machine's monotone counters
//! ([`Machine::server_ops`], [`msg::MsgStats`], [`Machine::events`]) into
//! exactly that: fixed-width virtual-time windows, each carrying the
//! counter *deltas* that landed in it plus the operation completions the
//! driver observed.
//!
//! ## Who closes windows
//!
//! The recorder does not poll. The replay driver (or any other workload
//! loop) owns the clock and calls:
//!
//! * [`TimeSeries::op`] after every operation, with its completion time —
//!   ops bucket into the window their completion falls in;
//! * [`TimeSeries::close_window`] at each window boundary — counter
//!   deltas since the previous close are attributed to the window just
//!   ended (in-flight work that *started* in the window is included, the
//!   driver guarantees it has completed; see `hare_workloads::trace`);
//! * [`TimeSeries::finish`] once at the end, closing the final partial
//!   window.
//!
//! ## Determinism
//!
//! Everything recorded is an integer derived from virtual time, so the
//! JSON from [`TimeSeries::to_json`] is **byte-identical** across replays
//! of the same trace (pinned by `tests/metrics_windows.rs` and the bench
//! crate's `trace_replay` test). Derived rates (ops/ms, RPCs/op) are left
//! to presentation code — floats never enter the stored series.

use crate::machine::Machine;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Counter deltas and operation completions of one virtual-time window
/// `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowMetrics {
    /// Window start (inclusive), virtual cycles.
    pub start: u64,
    /// Window end (exclusive), virtual cycles.
    pub end: u64,
    /// Operations whose completion fell in the window.
    pub ops: u64,
    /// Of those, how many failed.
    pub failures: u64,
    /// One-way message sends in the window (an RPC exchange is two).
    pub sends: u64,
    /// Operations served per file server (the load distribution).
    pub server_ops: Vec<u64>,
    /// Directory migrations committed.
    pub migrations: u64,
    /// Cache-invalidation notices sent.
    pub invalidations: u64,
    /// Readahead stripe fetches issued.
    pub readaheads: u64,
    /// `NotOwner` bounces served (client routed a request to the wrong
    /// server and was redirected).
    pub not_owner_bounces: u64,
    /// Requests replayed after parking behind a migration or rmdir lock.
    pub park_replays: u64,
    /// The window's costliest traced operations, `(label, sends, cycles)`,
    /// most expensive first. Empty unless op tracing is enabled.
    pub top_ops: Vec<(String, u64, u64)>,
}

impl WindowMetrics {
    /// RPC exchanges per completed operation (`NaN`-free: 0 for an idle
    /// window). Presentation helper; not stored in the JSON.
    pub fn rpcs_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.sends as f64 / 2.0 / self.ops as f64
        }
    }

    /// Load imbalance: busiest server's ops over the per-server mean
    /// (1.0 = perfectly even; 0 for an idle window).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.server_ops.iter().sum();
        if total == 0 || self.server_ops.is_empty() {
            return 0.0;
        }
        let max = *self.server_ops.iter().max().unwrap() as f64;
        max * self.server_ops.len() as f64 / total as f64
    }
}

/// Snapshot of every monotone counter the series windows.
#[derive(Debug, Clone)]
struct Snapshot {
    sends: u64,
    server_ops: Vec<u64>,
    migrations: u64,
    invalidations: u64,
    readaheads: u64,
    not_owner_bounces: u64,
    park_replays: u64,
}

impl Snapshot {
    fn take(machine: &Machine) -> Snapshot {
        // `server_ops` is the machine-level mirror, NOT the servers'
        // protocol counters: a rebalancer probe (`LoadReport{reset:true}`)
        // clears the latter mid-run and would corrupt the series.
        Snapshot {
            sends: machine.msg_stats.sends(),
            server_ops: machine.server_ops(),
            migrations: machine.events.migrations.load(Ordering::Relaxed),
            invalidations: machine.events.invalidations.load(Ordering::Relaxed),
            readaheads: machine.events.readaheads.load(Ordering::Relaxed),
            not_owner_bounces: machine.events.not_owner_bounces.load(Ordering::Relaxed),
            park_replays: machine.events.park_replays.load(Ordering::Relaxed),
        }
    }
}

/// A growing sequence of [`WindowMetrics`], fed by a driver that owns the
/// virtual clock.
#[derive(Debug)]
pub struct TimeSeries {
    /// Window width in virtual cycles.
    window: u64,
    /// Closed windows, in time order.
    windows: Vec<WindowMetrics>,
    /// Completions not yet claimed by a closed window:
    /// window index → (ops, failures).
    pending: BTreeMap<u64, (u64, u64)>,
    /// Counter values at the last close.
    last: Snapshot,
    /// The boundary the next [`TimeSeries::close_window`] must carry
    /// (`None` until the first close fixes the origin).
    expect: Option<u64>,
}

impl TimeSeries {
    /// Starts recording against `machine` with `window`-cycle windows,
    /// snapshotting every counter now (setup traffic before this call
    /// never pollutes the first window).
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn start(machine: &Machine, window: u64) -> TimeSeries {
        assert!(window > 0, "window width must be positive");
        TimeSeries {
            window,
            windows: Vec::new(),
            pending: BTreeMap::new(),
            last: Snapshot::take(machine),
            expect: None,
        }
    }

    /// Window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window
    }

    /// Records one operation completion at virtual time `t`.
    pub fn op(&mut self, t: u64, ok: bool) {
        let e = self.pending.entry(t / self.window).or_insert((0, 0));
        e.0 += 1;
        e.1 += u64::from(!ok);
    }

    /// Closes the window ending at `boundary` (a multiple of the window
    /// width; boundaries must arrive consecutively — the driver emits one
    /// call per elapsed window, so idle windows appear as zero rows rather
    /// than silent gaps).
    pub fn close_window(&mut self, machine: &Machine, boundary: u64) {
        assert!(
            boundary.is_multiple_of(self.window) && boundary > 0,
            "boundary {boundary} is not a positive multiple of {}",
            self.window
        );
        if let Some(e) = self.expect {
            assert_eq!(boundary, e, "window boundaries must be consecutive");
        }
        self.push(machine, boundary - self.window, boundary);
        self.expect = Some(boundary + self.window);
    }

    /// Closes the final partial window ending at `end` (no-op when `end`
    /// does not reach past the last closed boundary).
    pub fn finish(&mut self, machine: &Machine, end: u64) {
        let start = self
            .expect
            .map_or(end - end % self.window, |e| e - self.window);
        if end > start || !self.pending.is_empty() {
            self.push(machine, start, end.max(start + 1));
            self.expect = None;
        }
    }

    fn push(&mut self, machine: &Machine, start: u64, end: u64) {
        let cur = Snapshot::take(machine);
        let idx = start / self.window;
        // Claim this window's completions and any stragglers the driver
        // guaranteed are already done (finish() may cover several indices).
        let (ops, failures) = {
            let mut o = 0;
            let mut f = 0;
            let claimed: Vec<u64> = self
                .pending
                .range(..=idx.max(end.saturating_sub(1) / self.window))
                .map(|(&k, _)| k)
                .collect();
            for k in claimed {
                let (ko, kf) = self.pending.remove(&k).unwrap();
                o += ko;
                f += kf;
            }
            (o, f)
        };
        self.windows.push(WindowMetrics {
            start,
            end,
            ops,
            failures,
            sends: cur.sends - self.last.sends,
            server_ops: cur
                .server_ops
                .iter()
                .zip(&self.last.server_ops)
                .map(|(c, l)| c - l)
                .collect(),
            migrations: cur.migrations - self.last.migrations,
            invalidations: cur.invalidations - self.last.invalidations,
            readaheads: cur.readaheads - self.last.readaheads,
            not_owner_bounces: cur.not_owner_bounces - self.last.not_owner_bounces,
            park_replays: cur.park_replays - self.last.park_replays,
            top_ops: machine.otrace.window_top_ops(start, end, 3),
        });
        self.last = cur;
    }

    /// The closed windows, in time order.
    pub fn windows(&self) -> &[WindowMetrics] {
        &self.windows
    }

    /// Index (into [`TimeSeries::windows`]) of the last window containing
    /// a migration, if any — "when did the rebalancer last act".
    pub fn last_migration_window(&self) -> Option<usize> {
        self.windows.iter().rposition(|w| w.migrations > 0)
    }

    /// Total failed operations across all windows.
    pub fn total_failures(&self) -> u64 {
        self.windows.iter().map(|w| w.failures).sum()
    }

    /// Renders the series as JSON. All values are integers derived from
    /// virtual time, so the output is byte-identical across replays of the
    /// same trace.
    pub fn to_json(&self, name: &str) -> String {
        let mut s = String::with_capacity(256 + self.windows.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": \"{name}\",\n"));
        s.push_str(&format!("  \"window_cycles\": {},\n", self.window));
        s.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            let servers = w
                .server_ops
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            // Only traced runs carry top_ops; untraced JSON is unchanged.
            let top = if w.top_ops.is_empty() {
                String::new()
            } else {
                let entries = w
                    .top_ops
                    .iter()
                    .map(|(label, sends, cycles)| {
                        format!("{{\"op\": \"{label}\", \"sends\": {sends}, \"cycles\": {cycles}}}")
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(", \"top_ops\": [{entries}]")
            };
            s.push_str(&format!(
                "    {{\"start\": {}, \"end\": {}, \"ops\": {}, \"failures\": {}, \
                 \"sends\": {}, \"server_ops\": [{}], \"migrations\": {}, \
                 \"invalidations\": {}, \"readaheads\": {}, \
                 \"not_owner_bounces\": {}, \"park_replays\": {}{}}}{}\n",
                w.start,
                w.end,
                w.ops,
                w.failures,
                w.sends,
                servers,
                w.migrations,
                w.invalidations,
                w.readaheads,
                w.not_owner_bounces,
                w.park_replays,
                top,
                if i + 1 == self.windows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HareConfig;

    fn machine() -> std::sync::Arc<Machine> {
        Machine::new(&HareConfig::timeshare(4))
    }

    #[test]
    fn deltas_land_in_their_window() {
        let m = machine();
        m.record_server_op(0); // pre-start traffic must not count
        let mut ts = TimeSeries::start(&m, 100);
        m.record_server_op(1);
        m.msg_stats.record_send();
        m.msg_stats.record_send();
        ts.op(40, true);
        ts.close_window(&m, 100);
        m.record_server_op(2);
        m.events.migrations.fetch_add(1, Ordering::Relaxed);
        m.events.not_owner_bounces.fetch_add(2, Ordering::Relaxed);
        m.events.park_replays.fetch_add(1, Ordering::Relaxed);
        ts.op(150, false);
        ts.close_window(&m, 200);
        ts.finish(&m, 200);
        let w = ts.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].server_ops, vec![0, 1, 0, 0]);
        assert_eq!(w[0].sends, 2);
        assert_eq!((w[0].ops, w[0].failures), (1, 0));
        assert_eq!((w[0].not_owner_bounces, w[0].park_replays), (0, 0));
        assert_eq!(w[1].server_ops, vec![0, 0, 1, 0]);
        assert_eq!(w[1].migrations, 1);
        assert_eq!((w[1].not_owner_bounces, w[1].park_replays), (2, 1));
        assert_eq!((w[1].ops, w[1].failures), (1, 1));
        assert_eq!(ts.total_failures(), 1);
        assert_eq!(ts.last_migration_window(), Some(1));
    }

    #[test]
    fn idle_windows_are_zero_rows_not_gaps() {
        let m = machine();
        let mut ts = TimeSeries::start(&m, 100);
        ts.op(10, true);
        ts.close_window(&m, 100);
        ts.close_window(&m, 200); // idle
        ts.close_window(&m, 300); // idle
        ts.op(310, true);
        ts.finish(&m, 350);
        let w = ts.windows();
        assert_eq!(w.len(), 4);
        assert_eq!((w[1].ops, w[2].ops), (0, 0));
        assert_eq!(w[3].start, 300);
        assert_eq!(w[3].end, 350);
        assert_eq!(w[3].ops, 1);
    }

    #[test]
    fn straggler_completion_is_claimed_by_its_window() {
        // An op starts in window 0 but completes in window 1: the driver
        // closes window 0 only after the op ran, and the completion must
        // surface in window 1, not vanish.
        let m = machine();
        let mut ts = TimeSeries::start(&m, 100);
        ts.op(130, true); // completion past the first boundary
        ts.close_window(&m, 100);
        assert_eq!(ts.windows()[0].ops, 0);
        ts.close_window(&m, 200);
        assert_eq!(ts.windows()[1].ops, 1);
        ts.finish(&m, 200);
        assert_eq!(ts.windows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn skipping_a_boundary_panics() {
        let m = machine();
        let mut ts = TimeSeries::start(&m, 100);
        ts.close_window(&m, 100);
        ts.close_window(&m, 300); // skipped 200
    }

    #[test]
    fn json_is_stable_and_integer_only() {
        let m = machine();
        let mut ts = TimeSeries::start(&m, 100);
        ts.op(10, true);
        ts.close_window(&m, 100);
        ts.finish(&m, 150);
        let j = ts.to_json("t");
        assert!(j.contains("\"window_cycles\": 100"));
        assert!(j.contains("\"start\": 100, \"end\": 150"));
        assert!(j.contains("\"not_owner_bounces\": 0, \"park_replays\": 0"));
        assert!(
            !j.contains("top_ops"),
            "untraced runs must not emit top_ops"
        );
        assert!(!j.contains('.'), "floats must never enter the JSON: {j}");
        assert_eq!(j, ts.to_json("t"));
    }

    #[test]
    fn presentation_helpers() {
        let w = WindowMetrics {
            start: 0,
            end: 100,
            ops: 4,
            failures: 0,
            sends: 16,
            server_ops: vec![6, 2, 0, 0],
            migrations: 0,
            invalidations: 0,
            readaheads: 0,
            not_owner_bounces: 0,
            park_replays: 0,
            top_ops: Vec::new(),
        };
        assert_eq!(w.rpcs_per_op(), 2.0);
        assert_eq!(w.imbalance(), 3.0); // 6 / (8/4)
        let idle = WindowMetrics {
            ops: 0,
            sends: 0,
            server_ops: vec![0, 0],
            ..w
        };
        assert_eq!(idle.rpcs_per_op(), 0.0);
        assert_eq!(idle.imbalance(), 0.0);
    }
}
