//! The simulated machine: clocks, topology, shared DRAM, private caches.
//!
//! ## Virtual-time model
//!
//! Two kinds of time are tracked:
//!
//! * **Entity timelines** ([`Entity`]): each client library, file server,
//!   and scheduling server has a logical clock that advances with its own
//!   work *and* with waiting (an RPC reply moves the caller's timeline to
//!   the reply's delivery time). A saturated server delays completions by
//!   its accumulated service since the last phase barrier (see
//!   `Server::serve`), which is what makes a hot server a queueing
//!   bottleneck.
//! * **Per-core busy counters** ([`Machine::busy`]): CPU cycles actually
//!   executed on each core. Waiting is *not* busy: while a client polls
//!   for a reply, the other entities time-sharing its core run — exactly
//!   the overlap the paper's timeshare configuration relies on (§5.3.2).
//!
//! A run's virtual duration is `max(latest timeline, busiest core)`:
//! latency-bound executions are limited by their critical path, and
//! throughput-bound executions by the most-loaded core.

use crate::config::HareConfig;
use nccmem::{Dram, PrivateCache};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use vtime::{Clocks, CostModel, Distance, Topology};

/// One schedulable entity's logical clock, bound to a core.
///
/// Thread-safe: entities belonging to a process are driven by that
/// process's thread, but spawn plumbing may touch them from elsewhere.
#[derive(Debug)]
pub struct Entity {
    /// The core this entity runs on.
    pub core: usize,
    now: AtomicU64,
}

impl Entity {
    /// A fresh entity starting at logical time `start`.
    pub fn new(core: usize, start: u64) -> Entity {
        Entity {
            core,
            now: AtomicU64::new(start),
        }
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Executes `cycles` of CPU work: advances the timeline and the core's
    /// busy counter.
    pub fn work(&self, machine: &Machine, cycles: u64) -> u64 {
        machine.busy.advance(self.core, cycles);
        let t = self.now.fetch_add(cycles, Ordering::SeqCst) + cycles;
        machine.note(t);
        t
    }

    /// Waits (without consuming CPU) until logical time `t`.
    pub fn wait_until(&self, machine: &Machine, t: u64) -> u64 {
        let now = self.now.fetch_max(t, Ordering::SeqCst).max(t);
        machine.note(now);
        now
    }
}

/// Shared hardware state of one simulated non-cache-coherent machine.
///
/// Everything an entity (client library, file server, scheduling server)
/// touches lives here: the per-core busy counters, the NUMA topology, the
/// cost model, the shared DRAM holding the buffer cache, and the per-core
/// private caches. Entities on the same core time-share it: the machine
/// tracks how many entities are resident per core so message handling can
/// charge context switches only when a core actually multiplexes (the
/// paper's timeshare vs. split distinction, §5.3.2/§5.3.3).
pub struct Machine {
    /// Per-core busy-cycle counters.
    pub busy: Clocks,
    /// Latest entity timeline observed anywhere on the machine.
    timeline: AtomicU64,
    /// Virtual time of the last phase barrier (servers anchor their
    /// service accumulation here).
    sync_time: AtomicU64,
    /// NUMA layout.
    pub topology: Topology,
    /// Cost constants.
    pub cost: CostModel,
    /// Shared DRAM (the buffer cache's backing store).
    pub dram: Dram,
    /// Per-core private caches. Locked because several simulated processes
    /// time-share a core; the lock models exclusive use of the core's cache
    /// by whoever is running.
    caches: Vec<Mutex<PrivateCache>>,
    /// Machine-wide message counters.
    pub msg_stats: Arc<msg::MsgStats>,
    /// Number of runnable entities resident on each core.
    entities: Vec<AtomicUsize>,
    /// The cores hosting file servers, by server id (placement and
    /// load-aware exec need the core ↔ server mapping).
    server_cores: Vec<usize>,
    /// Operations served per file server — the machine-level mirror of the
    /// servers' own op counters, readable without an RPC (load-aware exec
    /// placement, diagnostics). The protocol-level view travels as
    /// `Request::LoadReport`.
    server_ops: Vec<AtomicU64>,
    /// Rolling baselines for load-aware exec placement: every
    /// [`PLACEMENT_WINDOW`]-th [`Machine::placement_tick`] snapshots
    /// `server_ops` here, so placement compares *recent* load, not
    /// ops-since-boot — a formerly hot but now idle server must not repel
    /// new processes forever.
    placement_base: Vec<AtomicU64>,
    /// Exec placements since boot (drives the baseline roll).
    placement_ticks: AtomicU64,
    /// Event counters for the time-series observability layer.
    pub events: EventCounters,
    /// Per-operation causal span recorder ([`crate::otrace`]); a no-op
    /// unless the config enabled `trace_ops`.
    pub otrace: crate::otrace::Tracer,
}

/// Exec placements between rolls of the load-aware placement baseline.
const PLACEMENT_WINDOW: u64 = 16;

/// Monotone counters for the rare-but-interesting events the time-series
/// observability layer (`crate::metrics`) windows over virtual time:
/// directory migrations committing, cache-invalidation notices sent,
/// readahead stripe fetches issued, `NotOwner` redirect bounces answered,
/// and parked operations replayed. Like [`Machine::server_ops`] these are
/// machine-level mirrors readable without an RPC — the protocol itself
/// never consults them.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Directory migrations committed (`MigrateCommit` applied).
    pub migrations: AtomicU64,
    /// Invalidation notices sent to registered sharers.
    pub invalidations: AtomicU64,
    /// Stripe fetches issued ahead of the requested range.
    pub readaheads: AtomicU64,
    /// `Reply::NotOwner` redirects answered to stale-routed clients (each
    /// costs the client one extra exchange before it folds the redirect).
    pub not_owner_bounces: AtomicU64,
    /// Operations replayed after parking behind an rmdir deletion mark or
    /// a migration copy window.
    pub park_replays: AtomicU64,
}

impl EventCounters {
    /// Snapshot as `(migrations, invalidations, readaheads,
    /// not_owner_bounces, park_replays)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.migrations.load(Ordering::Relaxed),
            self.invalidations.load(Ordering::Relaxed),
            self.readaheads.load(Ordering::Relaxed),
            self.not_owner_bounces.load(Ordering::Relaxed),
            self.park_replays.load(Ordering::Relaxed),
        )
    }
}

impl Machine {
    /// Builds the machine described by `cfg`.
    pub fn new(cfg: &HareConfig) -> Arc<Machine> {
        Arc::new(Machine {
            busy: Clocks::new(cfg.ncores),
            timeline: AtomicU64::new(0),
            sync_time: AtomicU64::new(0),
            topology: cfg.topology,
            cost: cfg.cost,
            dram: Dram::new(cfg.dram_blocks),
            caches: (0..cfg.ncores)
                .map(|_| Mutex::new(PrivateCache::new(cfg.cache_blocks)))
                .collect(),
            msg_stats: msg::MsgStats::shared(),
            entities: (0..cfg.ncores).map(|_| AtomicUsize::new(0)).collect(),
            server_cores: cfg.server_cores.clone(),
            server_ops: cfg.server_cores.iter().map(|_| AtomicU64::new(0)).collect(),
            placement_base: cfg.server_cores.iter().map(|_| AtomicU64::new(0)).collect(),
            placement_ticks: AtomicU64::new(0),
            events: EventCounters::default(),
            otrace: crate::otrace::Tracer::new(cfg.trace_ops),
        })
    }

    /// Records one operation served by file server `server`.
    pub fn record_server_op(&self, server: crate::types::ServerId) {
        self.server_ops[server as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of operations served per file server.
    pub fn server_ops(&self) -> Vec<u64> {
        self.server_ops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Operations served by the file server co-located on `core` (0 when
    /// the core hosts no server — a dedicated application core).
    pub fn server_ops_on_core(&self, core: usize) -> u64 {
        self.server_cores
            .iter()
            .position(|&c| c == core)
            .map_or(0, |s| self.server_ops[s].load(Ordering::Relaxed))
    }

    /// Advances the load-aware placement clock: every
    /// `PLACEMENT_WINDOW`-th call rolls the baselines so
    /// [`Machine::recent_server_ops_on_core`] reflects the current window.
    /// Called once per exec placement.
    pub fn placement_tick(&self) {
        if self
            .placement_ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(PLACEMENT_WINDOW)
        {
            for (base, ops) in self.placement_base.iter().zip(&self.server_ops) {
                base.store(ops.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
    }

    /// Operations served *this placement window* by the file server
    /// co-located on `core` (0 when the core hosts no server). The
    /// windowed signal load-aware exec placement compares.
    pub fn recent_server_ops_on_core(&self, core: usize) -> u64 {
        self.server_cores
            .iter()
            .position(|&c| c == core)
            .map_or(0, |s| {
                self.server_ops[s]
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.placement_base[s].load(Ordering::Relaxed))
            })
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.entities.len()
    }

    /// Registers a runnable entity on `core`.
    pub fn register_entity(&self, core: usize) {
        self.entities[core].fetch_add(1, Ordering::SeqCst);
    }

    /// Removes a runnable entity from `core`.
    pub fn unregister_entity(&self, core: usize) {
        self.entities[core].fetch_sub(1, Ordering::SeqCst);
    }

    /// True when `core` hosts more than one entity, so an incoming message
    /// costs a context switch (paper §5.3.3 measures this at ~1500 cycles
    /// per switch for the same-core rename case).
    pub fn timeshared(&self, core: usize) -> bool {
        self.entities[core].load(Ordering::SeqCst) > 1
    }

    /// Message latency between two cores.
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        self.cost.latency(self.topology.distance(from, to))
    }

    /// Distance class between two cores.
    pub fn distance(&self, from: usize, to: usize) -> Distance {
        self.topology.distance(from, to)
    }

    /// Runs `f` with exclusive access to `core`'s private cache.
    pub fn with_cache<R>(&self, core: usize, f: impl FnOnce(&mut PrivateCache, &Dram) -> R) -> R {
        let mut guard = self.caches[core].lock();
        f(&mut guard, &self.dram)
    }

    /// Aggregated private-cache statistics over all cores.
    pub fn cache_stats(&self) -> nccmem::CacheStats {
        self.caches
            .iter()
            .fold(Default::default(), |acc, c| acc.merged(c.lock().stats()))
    }

    /// Publishes an entity timeline value to the machine-wide maximum.
    pub fn note(&self, t: u64) {
        self.timeline.fetch_max(t, Ordering::SeqCst);
    }

    /// Virtual runtime so far: the later of the latest entity timeline and
    /// the busiest core's executed cycles.
    pub fn elapsed_cycles(&self) -> u64 {
        self.busy
            .max_time()
            .max(self.timeline.load(Ordering::SeqCst))
    }

    /// Phase barrier: raises every busy counter and the timeline to the
    /// current virtual runtime, so work after the barrier cannot overlap
    /// work before it.
    pub fn sync(&self) -> u64 {
        let t = self.elapsed_cycles();
        for core in 0..self.ncores() {
            self.busy.observe(core, t);
        }
        self.timeline.fetch_max(t, Ordering::SeqCst);
        self.sync_time.fetch_max(t, Ordering::SeqCst);
        t
    }

    /// Virtual time of the last phase barrier.
    pub fn sync_time(&self) -> u64 {
        self.sync_time.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Arc<Machine> {
        Machine::new(&HareConfig::timeshare(4))
    }

    #[test]
    fn entity_accounting() {
        let m = machine();
        assert!(!m.timeshared(0));
        m.register_entity(0);
        assert!(!m.timeshared(0));
        m.register_entity(0);
        assert!(m.timeshared(0));
        m.unregister_entity(0);
        assert!(!m.timeshared(0));
    }

    #[test]
    fn latency_uses_topology() {
        let m = Machine::new(&HareConfig::timeshare(40));
        assert_eq!(m.latency(0, 0), m.cost.lat_same_core);
        assert_eq!(m.latency(0, 5), m.cost.lat_same_socket);
        assert_eq!(m.latency(0, 15), m.cost.lat_cross_socket);
    }

    #[test]
    fn placement_load_is_windowed_not_cumulative() {
        let m = machine(); // timeshare(4): server s runs on core s
        for _ in 0..1_000 {
            m.record_server_op(0);
        }
        // First tick opens a window: the old million-op history vanishes
        // from the recent signal.
        m.placement_tick();
        assert_eq!(m.recent_server_ops_on_core(0), 0);
        assert_eq!(m.server_ops_on_core(0), 1_000, "cumulative view intact");
        // Load inside the window is visible...
        for _ in 0..7 {
            m.record_server_op(0);
        }
        m.record_server_op(1);
        assert_eq!(m.recent_server_ops_on_core(0), 7);
        assert_eq!(m.recent_server_ops_on_core(1), 1);
        // ...until enough placements roll the baseline again.
        for _ in 0..super::PLACEMENT_WINDOW {
            m.placement_tick();
        }
        assert_eq!(m.recent_server_ops_on_core(0), 0);
    }

    #[test]
    fn private_caches_are_per_core() {
        let m = machine();
        m.with_cache(0, |c, d| {
            c.write(d, nccmem::BlockId(0), 0, &[1]);
        });
        // Core 1 sees DRAM (zeros), not core 0's dirty private copy.
        let v = m.with_cache(1, |c, d| {
            let mut b = [0u8];
            c.read(d, nccmem::BlockId(0), 0, &mut b);
            b[0]
        });
        assert_eq!(v, 0);
    }
}
