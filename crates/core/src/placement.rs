//! The dynamic placement subsystem: epoch-versioned routing tables, the
//! live shard-migration protocol's bookkeeping, and the load-aware
//! rebalancing policy.
//!
//! The paper places every directory entry with a fixed hash over
//! `NSERVERS` ([`crate::types::dentry_shard`], §3.3). That is the **epoch-0
//! policy** here too, so with no migrations the system is byte-for-byte
//! the static system — same servers contacted, same message counts. On top
//! of it, a [`RoutingTable`] records per-directory *placement overrides*:
//! `dir → (owner, epoch)` pairs created by migrating a (centralized)
//! directory's dentry shard from one server to another. Routing a name
//! consults the override first and falls back to the hash.
//!
//! Tables are **distributed and lazily consistent**: every client library
//! and every server holds its own copy. A migration updates only the two
//! servers involved (source and destination); everyone else learns on
//! demand:
//!
//! * A *client* with a stale table sends an entry RPC to the old owner,
//!   which answers `Reply::NotOwner {dir, epoch, owner}`
//!   ([`crate::proto::Reply::NotOwner`]); the client folds the redirect
//!   into its table (epochs keep late redirects from regressing fresh
//!   knowledge) and retries at the named owner — **one extra exchange per
//!   stale directory**, after which the client routes directly.
//! * A *chained* [`crate::proto::Request::LookupPath`] hop landing on a
//!   stale owner is **re-forwarded** under the server's own table instead
//!   of bounced to the client: still feed-forward (a forward is a plain
//!   send carrying the reply channel), still bounded by the chain's hop
//!   budget, so the §3.3 no-deadlock argument and the `ELOOP` guard are
//!   untouched. The redirect costs one extra hop, not an extra exchange.
//!
//! Migration itself is client-composed from single-server RPCs, like every
//! other multi-server protocol in Hare (no server-to-server RPC, §3.3):
//! `MigrateBegin` at the source (marks the shard *migrating* — operations
//! on the directory park exactly like behind an rmdir deletion mark — and
//! snapshots the entries), `MigrateInstall` at the destination (installs
//! entries + the override), `MigrateCommit` back at the source (drops the
//! entries, records the redirect, invalidates every client tracked for the
//! directory through the existing tracking lists, and replays the parked
//! operations — which now answer `NotOwner`, so no in-flight operation is
//! ever failed by a migration). `MigrateAbort` undoes a begun migration
//! whose install failed.
//!
//! Only **centralized** directories migrate: a distributed directory's
//! entries are already spread over every server by the hash, so there is
//! no single hot shard to move (and an override would wrongly claim the
//! other servers' shards). The rebalancer enforces this; the scenario it
//! exists for — one hot mail-spool directory pinning a single server — is
//! exactly the centralized case.
//!
//! **Read replication** composes with all of this over the same table
//! (sharding and replication as two strategies on one hash-space map):
//! a read-hot *centralized* directory can additionally map to N read-only
//! replica servers ([`ReplicaSet`], sharing the override epoch space).
//! Reads — lookups, stats, readdir pages, chain hop 0 — pick the
//! least-loaded member of the read set; writes always go to the home,
//! which pushes an upsert-or-remove invalidation to every replica through
//! the same one-way send fabric as chain forwards (a replica is just a
//! very large tracked client, so the dircache's queue-drain soundness
//! argument carries over verbatim). Structural events evict before they
//! can strand staleness: an rmdir mark, a migration, and a replica
//! retirement all drop the copies outright.
//!
//! Inodes do **not** migrate: Hare names an inode by `(server, number)`
//! (§3.6.4), so moving one would break the global naming invariant every
//! descriptor and block list relies on. New files created under a migrated
//! directory *do* coalesce their inodes at the new owner (creation
//! placement follows the routing table), so a churning hot directory's
//! inode load drains to the new owner naturally.

use crate::proto::ExtentMap;
use crate::types::{dentry_shard_in, InodeId, ServerId};
use std::collections::HashMap;
use std::sync::Arc;

/// The striping policy: which servers *service* a file's stripe I/O (the
/// data-plane sibling of the dentry-shard hash above). Like the dentry
/// hash it is a pure function — every server and client derives the same
/// [`ExtentMap`] from the inode alone, so extent maps carry no durable
/// state: nothing migrates with a directory, nothing can be stranded, and
/// the epoch-0 default (`stripe_width < 2`, or a single-server machine)
/// is **byte-for-byte the paper's layout**: every block of a file is
/// serviced by its home server, pinned by test below.
///
/// With width `w ≥ 2`, stripe `k` is serviced by server
/// `(home + k) mod nservers` walked round-robin from the home server —
/// home-anchored so a file still leads with its own server (stripe 0 is
/// home: the first stripe of a cold read never leaves the inode's server)
/// and different files anchored at different homes interleave instead of
/// converging on server 0.
pub fn stripe_servers(ino: InodeId, stripe_width: usize, nservers: usize) -> Vec<ServerId> {
    let width = stripe_width.min(nservers);
    if width < 2 {
        return vec![ino.server];
    }
    (0..width)
        .map(|k| ((ino.server as usize + k) % nservers) as ServerId)
        .collect()
}

/// The servers a distributed directory's dentries can live on under a
/// shard width of `width` (`HareConfig::dir_shard_width`): the
/// home-anchored set `{(home + k) % nservers : k < width}` that
/// [`crate::types::dentry_shard_in`] selects within, returned in
/// ascending server order (the order every fan-out iterates). At full
/// width this is simply `0..nservers` — the paper's spread — so the
/// default readdir/rmdir fan-outs are byte-for-byte the seed's.
///
/// Like [`stripe_servers`] this is a pure function of the directory id
/// and the knobs: clients, servers, and tests all derive the same set
/// with no state to migrate or invalidate. It is what turns every
/// O(nservers) client fan-out into O(owned shards): a 4-shard directory
/// costs four `ListShard` sends whether the machine has 8 servers or 256.
pub fn dir_shard_servers(dir: InodeId, width: usize, nservers: usize) -> Vec<ServerId> {
    let width = if width == 0 {
        nservers
    } else {
        width.min(nservers)
    };
    let mut set: Vec<ServerId> = (0..width)
        .map(|k| ((dir.server as usize + k) % nservers) as ServerId)
        .collect();
    set.sort_unstable();
    set
}

/// The full extent map for `ino` under the policy: `None` when the
/// layout is the paper's all-blocks-home (width < 2), so every consumer
/// treats "no extent" and "epoch-0 layout" as the same thing.
pub fn extent_for(
    ino: InodeId,
    stripe_unit: u64,
    stripe_width: usize,
    nservers: usize,
) -> Option<ExtentMap> {
    let servers = stripe_servers(ino, stripe_width, nservers);
    (servers.len() >= 2).then_some(ExtentMap {
        stripe_unit,
        servers,
    })
}

/// One placement override: the directory's entries live at `owner` as of
/// migration `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnerRecord {
    /// The server holding every entry of the directory.
    pub owner: ServerId,
    /// Epoch of the migration that installed this override. Strictly
    /// increasing per directory; a table only accepts a record that is
    /// newer than what it holds.
    pub epoch: u64,
}

/// The read-replica record for a directory: the servers holding read-only
/// copies of its dentry shard (the home/override owner is *not* listed —
/// it always serves), as of placement `epoch`.
///
/// Replica epochs share the per-directory epoch space with migration
/// overrides: every install or retirement bumps the directory's epoch, and
/// a migration's `learn` at a newer epoch evicts the replica record
/// outright. One monotonic counter therefore orders *every* placement
/// change of a directory, which is what lets a late replica advertisement
/// and a late migration redirect be compared at all.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicaSet {
    /// Read-only replica servers (home excluded), in install order.
    pub servers: Vec<ServerId>,
    /// Epoch of the placement change that produced this set.
    pub epoch: u64,
}

/// An epoch-versioned routing table: the paper's hash plus per-directory
/// placement overrides. Every client library and every server holds one;
/// see the module docs for how copies converge.
///
/// The override map lives behind an [`Arc`], so [`RoutingTable::clone`]
/// is a pointer bump: hot paths that route many names in one operation
/// (a readdir fan-out, a multi-component resolve) take a snapshot clone
/// once instead of re-locking the owner's table per name. An epoch bump
/// ([`RoutingTable::learn`]) is **copy-on-write**: it mutates in place
/// while the table is unshared and clones the map only when a snapshot
/// is actually outstanding — never a full-table clone per bump.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    overrides: Arc<HashMap<InodeId, OwnerRecord>>,
    /// Read-replica sets, keyed like the overrides and sharing their
    /// epoch space. Empty on every epoch-0 table, so a system that never
    /// replicates routes byte-for-byte the paper's hash (pinned below).
    replicas: Arc<HashMap<InodeId, ReplicaSet>>,
}

impl RoutingTable {
    /// An empty (epoch-0) table: pure hash routing.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// The dentry shard for `name` in `dir`: the override owner when one
    /// exists, the paper's hash otherwise — bounded to the directory's
    /// shard set when `width < nservers` (see
    /// [`crate::types::dentry_shard_in`]). This is *the* routing function —
    /// clients route every entry RPC and servers route every chain hop
    /// through their table with the same `width`, which is what keeps a
    /// forwarded request landing at a server that either owns the shard
    /// or knows who does.
    pub fn route(
        &self,
        dir: InodeId,
        dist: bool,
        name: &str,
        width: usize,
        nservers: usize,
    ) -> ServerId {
        match self.overrides.get(&dir) {
            Some(rec) => rec.owner,
            None => dentry_shard_in(dir, dist, name, width, nservers),
        }
    }

    /// The server holding a **centralized** directory's entries: the
    /// override owner, or its home server. (Used for whole-directory
    /// operations — `ListShard` of a centralized directory, the emptiness
    /// side of `rmdir`.)
    pub fn dir_home(&self, dir: InodeId) -> ServerId {
        self.overrides.get(&dir).map_or(dir.server, |r| r.owner)
    }

    /// The override record for `dir`, if any.
    pub fn override_of(&self, dir: InodeId) -> Option<OwnerRecord> {
        self.overrides.get(&dir).copied()
    }

    /// The epoch of `dir`'s placement (0 = never migrated *or*
    /// replicated): the newest change from either the override or the
    /// replica record, since both draw from one per-directory counter.
    pub fn epoch_of(&self, dir: InodeId) -> u64 {
        let mig = self.overrides.get(&dir).map_or(0, |r| r.epoch);
        let rep = self.replicas.get(&dir).map_or(0, |r| r.epoch);
        mig.max(rep)
    }

    /// Folds a redirect (or a migration this party performed) into the
    /// table. Returns true when the record was news; an equal-or-older
    /// epoch is ignored, so a late redirect can never regress fresher
    /// knowledge. A migration at a newer epoch also evicts the
    /// directory's replica record: the copies were snapshotted from the
    /// old owner, so routing reads to them past a move would be
    /// staleness, not caching (eviction-before-staleness).
    pub fn learn(&mut self, dir: InodeId, owner: ServerId, epoch: u64) -> bool {
        // Check against the shared maps first: rejecting a stale record
        // must not fault a copy-on-write clone.
        if self.epoch_of(dir) >= epoch {
            return false;
        }
        Arc::make_mut(&mut self.overrides).insert(dir, OwnerRecord { owner, epoch });
        if self.replicas.contains_key(&dir) {
            Arc::make_mut(&mut self.replicas).remove(&dir);
        }
        true
    }

    /// Folds a replica advertisement into the table: `dir`'s read set
    /// gains the listed replica `servers` as of placement `epoch`. The
    /// same monotonic-epoch rule as [`RoutingTable::learn`] applies (and
    /// shares its counter), so a late advertisement can never resurrect a
    /// retired or migrated-away replica set. An empty `servers` list
    /// *retires* the record entirely.
    pub fn learn_replicas(&mut self, dir: InodeId, servers: Vec<ServerId>, epoch: u64) -> bool {
        if self.epoch_of(dir) >= epoch {
            return false;
        }
        // An empty set is stored too: it remembers the epoch of the
        // retirement so a stale late advertisement cannot re-install the
        // dropped replicas.
        Arc::make_mut(&mut self.replicas).insert(dir, ReplicaSet { servers, epoch });
        true
    }

    /// The replica record for `dir`, if any (an empty `servers` list is a
    /// remembered retirement, not a live set).
    pub fn replicas_of(&self, dir: InodeId) -> Option<&ReplicaSet> {
        self.replicas.get(&dir)
    }

    /// The **read set** for entries of centralized directory `dir`: the
    /// home (override owner or hash home) first, then every read replica.
    /// Epoch-0 (and any never-replicated directory) returns just the
    /// home, so read routing degenerates to the paper's single server.
    pub fn read_set(&self, dir: InodeId) -> Vec<ServerId> {
        let home = self.dir_home(dir);
        let mut set = vec![home];
        if let Some(rec) = self.replicas.get(&dir) {
            set.extend(rec.servers.iter().copied().filter(|s| *s != home));
        }
        set
    }

    /// Removes one server from `dir`'s replica read set in place — local
    /// route hygiene after a replica-aware `NotOwner` (that copy is
    /// gone), not an epoch event: what remains is the same set minus a
    /// dead route, so no epoch moves and a genuinely newer advertisement
    /// still supersedes the record normally.
    pub fn forget_replica(&mut self, dir: InodeId, server: ServerId) {
        if self
            .replicas
            .get(&dir)
            .is_some_and(|r| r.servers.contains(&server))
        {
            let rec = Arc::make_mut(&mut self.replicas)
                .get_mut(&dir)
                .expect("checked above");
            rec.servers.retain(|s| *s != server);
        }
    }

    /// Number of directories with a live (non-empty) replica set
    /// (diagnostics).
    pub fn replica_dirs(&self) -> usize {
        self.replicas
            .values()
            .filter(|r| !r.servers.is_empty())
            .count()
    }

    /// For a server's own table: the redirect to answer when this server
    /// (`me`) receives an entry operation for `dir` it no longer (or
    /// never) owns under its override knowledge. `None` means no override
    /// names another server — the hash decides, and a client that routed
    /// here by hash is correct.
    pub fn foreign_owner(&self, dir: InodeId, me: ServerId) -> Option<OwnerRecord> {
        self.overrides.get(&dir).copied().filter(|r| r.owner != me)
    }

    /// Number of overrides held (diagnostics).
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True when the table is pure epoch-0 hash routing (no overrides
    /// and no replica records).
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty() && self.replicas.is_empty()
    }
}

/// One server's load report: total operations served plus its hottest
/// directories by entry-operation count (what
/// [`crate::proto::Reply::Load`] carries).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The reporting server.
    pub server: ServerId,
    /// Operations served since the last reset.
    pub ops: u64,
    /// `(directory, entry ops, entry writes)` triples, hottest first. The
    /// write count (ADD_MAP / RM_MAP / coalesced creates) is what lets
    /// the planner tell a read-hot directory (worth replicating) from a
    /// churn-hot one (worth migrating): replicas amplify reads but every
    /// write still serializes at the home *and* fans out an invalidation
    /// per replica.
    pub hot_dirs: Vec<(InodeId, u64, u64)>,
}

/// A migration the rebalancer decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The directory whose dentry shard moves.
    pub dir: InodeId,
    /// Current owner (the overloaded server).
    pub from: ServerId,
    /// New owner (the least-loaded server).
    pub to: ServerId,
}

/// A replication the rebalancer decided on: install a read-only copy of
/// `dir`'s dentry shard (home `home`) at `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// The read-hot directory.
    pub dir: InodeId,
    /// Its current home (the overloaded server).
    pub home: ServerId,
    /// The server that gains the read-only copy (the least-loaded one).
    pub to: ServerId,
}

/// One placement action out of [`plan_rebalance_actions`]: either move a
/// (write-churning) hot shard or grow a read replica of a read-mostly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Move the shard wholesale (the PR 5 protocol).
    Migrate(MigrationPlan),
    /// Install one more read replica (this PR's protocol).
    Replicate(ReplicationPlan),
}

impl RebalanceAction {
    /// The directory the action concerns (hysteresis streaks key on it).
    pub fn dir(&self) -> InodeId {
        match self {
            RebalanceAction::Migrate(p) => p.dir,
            RebalanceAction::Replicate(p) => p.dir,
        }
    }
}

/// Tuning knobs for [`plan_rebalance`].
#[derive(Debug, Clone, Copy)]
pub struct RebalancePolicy {
    /// A server must have served at least this many operations to be
    /// considered hot (keeps cold systems, and every pinned test, inert).
    pub min_ops: u64,
    /// The hottest server must carry at least `imbalance` times the
    /// load of the coolest before a migration pays for itself.
    pub imbalance: f64,
    /// The candidate directory must account for at least this share of
    /// the hot server's operations — migrating a minor directory would
    /// not relieve the hotspot.
    pub min_dir_share: f64,
    /// Replicate-vs-migrate bar: a candidate whose write share
    /// (writes / entry ops) is at or below this replicates; above it,
    /// the churn would serialize at the home and fan an invalidation to
    /// every replica per write, so the shard migrates wholesale instead.
    pub max_replica_write_share: f64,
    /// Upper bound on read replicas per directory: once a directory's
    /// read set reaches `1 + max_replicas` servers the planner falls
    /// back to nominating other candidates.
    pub max_replicas: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            min_ops: 64,
            imbalance: 1.5,
            min_dir_share: 0.25,
            max_replica_write_share: 0.1,
            max_replicas: 3,
        }
    }
}

/// The load-aware rebalancing decision, as a pure function of the load
/// reports so it is unit-testable without a machine: find the hottest and
/// coolest servers; if the imbalance clears the policy bar, nominate
/// every hot-server directory that carries enough of its load, hottest
/// first. The root is never nominated; whether a candidate is
/// *distributed* (and therefore unmigratable) only its home server
/// knows, so the driver tries candidates in order and skips the ones the
/// source refuses — a hot-but-unmigratable directory must not mask a
/// migratable runner-up.
pub fn plan_rebalance(reports: &[LoadReport], policy: &RebalancePolicy) -> Vec<MigrationPlan> {
    nominate(reports, policy)
        .map(|(hot, cool, dirs)| {
            dirs.into_iter()
                .map(|(dir, _, _)| MigrationPlan {
                    dir,
                    from: hot,
                    to: cool,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// A nominated candidate's `(dir, ops, writes)` load triple.
type DirLoad = (InodeId, u64, u64);

/// The hottest-vs-coolest nomination shared by [`plan_rebalance`] and
/// [`plan_rebalance_actions`]: `(hot server, cool server, candidate
/// [`DirLoad`] triples hottest first)`, or `None` when the load picture
/// clears no bar.
fn nominate(
    reports: &[LoadReport],
    policy: &RebalancePolicy,
) -> Option<(ServerId, ServerId, Vec<DirLoad>)> {
    let (hot, cool) = (
        reports.iter().max_by_key(|r| r.ops)?,
        reports.iter().min_by_key(|r| r.ops)?,
    );
    if hot.server == cool.server || hot.ops < policy.min_ops {
        return None;
    }
    if (hot.ops as f64) < (cool.ops as f64).max(1.0) * policy.imbalance {
        return None;
    }
    let dirs: Vec<DirLoad> = hot
        .hot_dirs
        .iter()
        .filter(|(dir, dir_ops, _)| {
            *dir != InodeId::ROOT && (*dir_ops as f64) >= hot.ops as f64 * policy.min_dir_share
        })
        .copied()
        .collect();
    (!dirs.is_empty()).then_some((hot.server, cool.server, dirs))
}

/// The replication-aware sibling of [`plan_rebalance`]: the same
/// hottest-vs-coolest nomination, but each candidate is classified by its
/// **write share**. A read-mostly directory (writes / ops ≤
/// [`RebalancePolicy::max_replica_write_share`]) becomes a
/// [`RebalanceAction::Replicate`] targeting the coolest server — reads
/// multiply across the grown read set while writes keep serializing at
/// the home; a churning one becomes a [`RebalanceAction::Migrate`]
/// exactly as before. `routing` supplies the caller's replica knowledge
/// so a directory already replicated onto the cool server (or at the
/// [`RebalancePolicy::max_replicas`] cap) degrades to the migrate/skip
/// path instead of piling copies on one server.
pub fn plan_rebalance_actions(
    reports: &[LoadReport],
    policy: &RebalancePolicy,
    routing: &RoutingTable,
) -> Vec<RebalanceAction> {
    let Some((hot, cool, dirs)) = nominate(reports, policy) else {
        return Vec::new();
    };
    dirs.into_iter()
        .filter_map(|(dir, ops, writes)| {
            let read_mostly = (writes as f64) <= (ops as f64) * policy.max_replica_write_share;
            let replicas = routing
                .replicas_of(dir)
                .map(|r| r.servers.clone())
                .unwrap_or_default();
            if read_mostly && replicas.len() < policy.max_replicas && !replicas.contains(&cool) {
                Some(RebalanceAction::Replicate(ReplicationPlan {
                    dir,
                    home: hot,
                    to: cool,
                }))
            } else if !read_mostly {
                Some(RebalanceAction::Migrate(MigrationPlan {
                    dir,
                    from: hot,
                    to: cool,
                }))
            } else {
                // Read-mostly but already replicated onto the cool server
                // (or at the cap): nothing useful to do with this pair —
                // let a runner-up candidate through instead.
                None
            }
        })
        .collect()
}

/// Cadence knobs for the background rebalancer ([`Rebalancer`]).
///
/// All times are virtual cycles (`vtime::CYCLES_PER_US` per virtual µs).
#[derive(Debug, Clone, Copy)]
pub struct RebalanceCadence {
    /// Minimum virtual time between load probes. Probing costs one
    /// grouped exchange and resets the servers' load windows, so it must
    /// be slow relative to the traffic it observes.
    pub probe_interval: u64,
    /// Consecutive probes that must nominate the *same* hottest directory
    /// before a migration runs — the hysteresis that keeps a one-window
    /// blip (or a probe racing a phase change) from bouncing a directory
    /// back and forth.
    pub confirm: u32,
    /// Back-off after a committed migration, giving redirects time to
    /// propagate and the load picture time to re-form before the next
    /// probe (without it, the first post-migration probe still sees the
    /// old skew and double-migrates).
    pub cooldown: u64,
}

impl Default for RebalanceCadence {
    fn default() -> Self {
        RebalanceCadence {
            probe_interval: 2_000_000, // 1 virtual ms
            confirm: 2,
            cooldown: 4_000_000,
        }
    }
}

/// The background rebalancer's decision state: *when* to probe and *when*
/// a nomination is trustworthy. Pure virtual-time bookkeeping — the RPCs
/// (probing, migrating) live in `ClientLib::rebalance_tick`, so this is
/// unit-testable without a machine, like [`plan_rebalance`].
#[derive(Debug)]
pub struct Rebalancer {
    policy: RebalancePolicy,
    cadence: RebalanceCadence,
    /// Earliest virtual time of the next probe (0 = immediately).
    next_probe: u64,
    /// The directory the streak is building on, and its length.
    streak: Option<(InodeId, u32)>,
}

impl Rebalancer {
    /// A rebalancer with the given policy and cadence, ready to probe.
    pub fn new(policy: RebalancePolicy, cadence: RebalanceCadence) -> Rebalancer {
        Rebalancer {
            policy,
            cadence,
            next_probe: 0,
            streak: None,
        }
    }

    /// The load-plan policy probes are judged against.
    pub fn policy(&self) -> &RebalancePolicy {
        &self.policy
    }

    /// True when a probe is due at virtual time `now`.
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_probe
    }

    /// Feeds one probe's nominations (from [`plan_rebalance`], hottest
    /// first) taken at virtual time `now`. Returns the plans to execute —
    /// empty until [`RebalanceCadence::confirm`] consecutive probes have
    /// agreed on the hottest directory; an empty or disagreeing probe
    /// restarts the streak.
    pub fn observe(&mut self, now: u64, plans: &[MigrationPlan]) -> Vec<MigrationPlan> {
        if self.confirmed(now, plans.first().map(|p| p.dir)) {
            plans.to_vec()
        } else {
            Vec::new()
        }
    }

    /// The action-typed sibling of [`Rebalancer::observe`] for
    /// [`plan_rebalance_actions`] nominations: identical cadence and
    /// hysteresis (the streak keys on the nominated directory, so a
    /// candidate flapping between replicate and migrate still counts as
    /// agreement on *where* the heat is).
    pub fn observe_actions(
        &mut self,
        now: u64,
        actions: &[RebalanceAction],
    ) -> Vec<RebalanceAction> {
        if self.confirmed(now, actions.first().map(|a| a.dir())) {
            actions.to_vec()
        } else {
            Vec::new()
        }
    }

    /// Shared streak bookkeeping: feeds the hottest nominated directory
    /// (if any) of a probe at `now` and reports whether the hysteresis
    /// bar is cleared.
    fn confirmed(&mut self, now: u64, first_dir: Option<InodeId>) -> bool {
        self.next_probe = now + self.cadence.probe_interval;
        let Some(first) = first_dir else {
            self.streak = None;
            return false;
        };
        let n = match self.streak {
            Some((dir, n)) if dir == first => n + 1,
            _ => 1,
        };
        if n >= self.cadence.confirm {
            self.streak = None;
            true
        } else {
            self.streak = Some((first, n));
            false
        }
    }

    /// Records a committed migration at virtual time `now`: enter the
    /// cooldown and forget the streak.
    pub fn committed(&mut self, now: u64) {
        self.next_probe = now + self.cadence.cooldown;
        self.streak = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIR: InodeId = InodeId { server: 0, num: 7 };

    #[test]
    fn epoch_zero_is_the_paper_hash() {
        let t = RoutingTable::new();
        assert!(t.is_empty());
        for n in ["a", "b", "spool"] {
            assert_eq!(
                t.route(DIR, true, n, 8, 8),
                crate::types::dentry_shard(DIR, true, n, 8)
            );
        }
        assert_eq!(t.route(DIR, false, "a", 8, 8), 0);
        assert_eq!(t.dir_home(DIR), 0);
        assert_eq!(t.epoch_of(DIR), 0);
    }

    #[test]
    fn shard_set_is_home_anchored_and_full_width_is_everyone() {
        let dir = InodeId { server: 6, num: 9 };
        assert_eq!(dir_shard_servers(dir, 4, 8), vec![0, 1, 6, 7]);
        // Full width (or the 0 default) is every server, ascending — the
        // paper's fan-out order, byte for byte.
        assert_eq!(
            dir_shard_servers(dir, 0, 8),
            (0..8).map(|s| s as ServerId).collect::<Vec<_>>()
        );
        assert_eq!(dir_shard_servers(dir, 8, 8), dir_shard_servers(dir, 0, 8));
        assert_eq!(dir_shard_servers(dir, 99, 8), dir_shard_servers(dir, 0, 8));
        // The home server is always in the set (rmdir's inode removal and
        // a centralized fallback both rely on it).
        for w in 1..=8 {
            assert!(dir_shard_servers(dir, w, 8).contains(&dir.server));
        }
        // Routing always lands inside the set.
        for i in 0..128 {
            let n = format!("f{i}");
            let s = dentry_shard_in(dir, true, &n, 4, 8);
            assert!(dir_shard_servers(dir, 4, 8).contains(&s));
        }
    }

    #[test]
    fn epoch_bumps_are_copy_on_write() {
        let mut t = RoutingTable::new();
        assert!(t.learn(DIR, 5, 1));
        // An outstanding snapshot keeps routing at its epoch while the
        // owner's table moves on — and the bump clones the map rather
        // than mutating the shared one.
        let snap = t.clone();
        assert!(t.learn(DIR, 2, 2));
        assert_eq!(snap.dir_home(DIR), 5, "snapshot unperturbed");
        assert_eq!(t.dir_home(DIR), 2);
        // Rejecting a stale record never faults a clone (pointer-equal
        // maps before and after).
        let before = Arc::as_ptr(&t.overrides);
        assert!(!t.learn(DIR, 9, 1));
        assert_eq!(Arc::as_ptr(&t.overrides), before);
    }

    #[test]
    fn epoch_zero_striping_is_all_blocks_home() {
        // The paper's layout, byte for byte: width < 2 (or one server)
        // services every stripe at the file's home server and advertises
        // no extent map at all — so with striping off (or un-widened)
        // the data plane is indistinguishable from the seed.
        for ino in [InodeId::ROOT, InodeId { server: 3, num: 42 }] {
            assert_eq!(stripe_servers(ino, 1, 8), vec![ino.server]);
            assert_eq!(stripe_servers(ino, 0, 8), vec![ino.server]);
            assert_eq!(stripe_servers(ino, 4, 1), vec![ino.server]);
            assert!(extent_for(ino, 65536, 1, 8).is_none());
            assert!(extent_for(ino, 65536, 4, 1).is_none());
        }
    }

    #[test]
    fn striping_is_home_anchored_round_robin() {
        let ino = InodeId { server: 6, num: 9 };
        // Width 4 over 8 servers: home leads, then the next three.
        assert_eq!(stripe_servers(ino, 4, 8), vec![6, 7, 0, 1]);
        // Width clamps to the machine (home 6 ≡ 2 mod 4 servers).
        assert_eq!(stripe_servers(ino, 16, 4), vec![2, 3, 0, 1]);
        let e = extent_for(ino, 65536, 4, 8).unwrap();
        assert_eq!(e.server_of(0), 6, "stripe 0 stays home");
        assert_eq!(e.server_of(4), 6, "round robin wraps");
        // Deterministic: every party derives the same map.
        assert_eq!(e, extent_for(ino, 65536, 4, 8).unwrap());
    }

    #[test]
    fn override_redirects_all_names() {
        let mut t = RoutingTable::new();
        assert!(t.learn(DIR, 5, 1));
        for n in ["a", "b", "anything"] {
            assert_eq!(t.route(DIR, false, n, 8, 8), 5);
            assert_eq!(t.route(DIR, true, n, 8, 8), 5);
        }
        assert_eq!(t.dir_home(DIR), 5);
        assert_eq!(t.epoch_of(DIR), 1);
        // Other directories keep hashing.
        let other = InodeId { server: 3, num: 9 };
        assert_eq!(t.route(other, false, "a", 8, 8), 3);
    }

    #[test]
    fn stale_redirect_never_regresses_fresh_knowledge() {
        let mut t = RoutingTable::new();
        assert!(t.learn(DIR, 5, 2));
        // A late redirect from the original migration must be ignored.
        assert!(!t.learn(DIR, 3, 1));
        assert!(!t.learn(DIR, 3, 2));
        assert_eq!(t.dir_home(DIR), 5);
        // A newer migration wins.
        assert!(t.learn(DIR, 1, 3));
        assert_eq!(t.dir_home(DIR), 1);
    }

    #[test]
    fn foreign_owner_names_the_redirect_target() {
        let mut t = RoutingTable::new();
        assert!(t.foreign_owner(DIR, 0).is_none(), "no override: hash rules");
        t.learn(DIR, 5, 1);
        let r = t.foreign_owner(DIR, 0).unwrap();
        assert_eq!((r.owner, r.epoch), (5, 1));
        assert!(
            t.foreign_owner(DIR, 5).is_none(),
            "the owner is not foreign"
        );
    }

    fn report(server: ServerId, ops: u64, hot: &[(InodeId, u64)]) -> LoadReport {
        LoadReport {
            server,
            ops,
            // The migrate-only tests predate write counting: all-writes
            // keeps their nominations classified as migrations.
            hot_dirs: hot.iter().map(|&(d, n)| (d, n, n)).collect(),
        }
    }

    #[test]
    fn rebalance_plans_hot_directories_hottest_first() {
        let p = RebalancePolicy::default();
        let second = InodeId { server: 0, num: 9 };
        let reports = [
            report(
                0,
                1000,
                &[
                    (DIR, 600),
                    (second, 300),
                    (InodeId { server: 0, num: 11 }, 50),
                ],
            ),
            report(1, 100, &[]),
            report(2, 200, &[]),
        ];
        let plans = plan_rebalance(&reports, &p);
        // Both directories above the share bar are nominated (so an
        // unmigratable hottest cannot mask the runner-up); the 50-op one
        // is below the bar and dropped.
        assert_eq!(
            plans,
            vec![
                MigrationPlan {
                    dir: DIR,
                    from: 0,
                    to: 1
                },
                MigrationPlan {
                    dir: second,
                    from: 0,
                    to: 1
                },
            ]
        );
    }

    #[test]
    fn rebalance_never_nominates_the_root() {
        let p = RebalancePolicy::default();
        let plans = plan_rebalance(
            &[
                report(0, 1000, &[(InodeId::ROOT, 900), (DIR, 400)]),
                report(1, 10, &[]),
            ],
            &p,
        );
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].dir, DIR);
    }

    fn plan(dir: InodeId) -> MigrationPlan {
        MigrationPlan {
            dir,
            from: 0,
            to: 1,
        }
    }

    #[test]
    fn hysteresis_requires_consecutive_agreement() {
        let cadence = RebalanceCadence {
            probe_interval: 100,
            confirm: 2,
            cooldown: 1000,
        };
        let mut r = Rebalancer::new(RebalancePolicy::default(), cadence);
        assert!(r.due(0), "first probe is immediate");
        // First nomination: streak of 1, nothing executes yet.
        assert!(r.observe(0, &[plan(DIR)]).is_empty());
        assert!(!r.due(50), "cadence: next probe not yet due");
        assert!(r.due(100));
        // Second agreeing nomination: confirmed.
        let go = r.observe(100, &[plan(DIR)]);
        assert_eq!(go, vec![plan(DIR)]);
        r.committed(150);
        assert!(!r.due(1000), "cooldown outlasts the probe interval");
        assert!(r.due(1150));
    }

    #[test]
    fn a_blip_restarts_the_streak() {
        let cadence = RebalanceCadence {
            probe_interval: 100,
            confirm: 2,
            cooldown: 1000,
        };
        let other = InodeId { server: 2, num: 9 };
        let mut r = Rebalancer::new(RebalancePolicy::default(), cadence);
        assert!(r.observe(0, &[plan(DIR)]).is_empty());
        // Balanced probe in between: the streak dies.
        assert!(r.observe(100, &[]).is_empty());
        assert!(r.observe(200, &[plan(DIR)]).is_empty(), "back to one");
        // A different hottest directory also restarts it...
        assert!(r.observe(300, &[plan(other)]).is_empty());
        // ...and then confirms on its own second probe.
        assert_eq!(r.observe(400, &[plan(other)]), vec![plan(other)]);
    }

    #[test]
    fn confirm_one_migrates_on_first_sight() {
        let cadence = RebalanceCadence {
            probe_interval: 100,
            confirm: 1,
            cooldown: 1000,
        };
        let mut r = Rebalancer::new(RebalancePolicy::default(), cadence);
        assert_eq!(r.observe(0, &[plan(DIR)]), vec![plan(DIR)]);
    }

    #[test]
    fn zero_replica_table_is_the_paper_hash() {
        // The epoch-0 pin for replication: a table that never learned a
        // replica routes, homes, and epoch-counts exactly like the seed,
        // and its read set is the single home server.
        let t = RoutingTable::new();
        assert!(t.replicas_of(DIR).is_none());
        assert_eq!(t.read_set(DIR), vec![DIR.server]);
        assert_eq!(t.replica_dirs(), 0);
        assert_eq!(t.epoch_of(DIR), 0);
    }

    #[test]
    fn replica_learning_is_epoch_monotonic_and_migration_evicts() {
        let mut t = RoutingTable::new();
        assert!(t.learn_replicas(DIR, vec![3], 1));
        assert_eq!(t.read_set(DIR), vec![0, 3]);
        assert_eq!(t.epoch_of(DIR), 1);
        assert_eq!(t.replica_dirs(), 1);
        // Stale advertisement: ignored (shared epoch space).
        assert!(!t.learn_replicas(DIR, vec![5], 1));
        assert!(!t.learn(DIR, 5, 1), "migration at the same epoch loses too");
        // Growth at a newer epoch.
        assert!(t.learn_replicas(DIR, vec![3, 5], 2));
        assert_eq!(t.read_set(DIR), vec![0, 3, 5]);
        // A migration at a newer epoch evicts the replica set outright —
        // the copies were snapshotted from the old owner.
        assert!(t.learn(DIR, 6, 3));
        assert_eq!(t.read_set(DIR), vec![6]);
        assert_eq!(t.replica_dirs(), 0);
        // Retirement (empty set) remembers its epoch, so a late replay of
        // the old advertisement stays dead.
        assert!(t.learn_replicas(DIR, Vec::new(), 4));
        assert!(!t.learn_replicas(DIR, vec![3, 5], 2));
        assert_eq!(t.read_set(DIR), vec![6]);
    }

    #[test]
    fn read_set_leads_with_home_and_skips_a_replica_equal_to_it() {
        let mut t = RoutingTable::new();
        t.learn_replicas(DIR, vec![2, 0], 1);
        // Home (0) is in the advertised list by accident: not doubled.
        assert_eq!(t.read_set(DIR), vec![0, 2]);
    }

    #[test]
    fn planner_replicates_read_mostly_and_migrates_churn() {
        let p = RebalancePolicy::default();
        let churn = InodeId { server: 0, num: 9 };
        let reports = [
            LoadReport {
                server: 0,
                ops: 1000,
                // DIR is read-hot (2% writes); `churn` is write-heavy.
                hot_dirs: vec![(DIR, 600, 12), (churn, 300, 200)],
            },
            report(1, 50, &[]),
        ];
        let actions = plan_rebalance_actions(&reports, &p, &RoutingTable::new());
        assert_eq!(
            actions,
            vec![
                RebalanceAction::Replicate(ReplicationPlan {
                    dir: DIR,
                    home: 0,
                    to: 1
                }),
                RebalanceAction::Migrate(MigrationPlan {
                    dir: churn,
                    from: 0,
                    to: 1
                }),
            ]
        );
        // Already replicated onto the cool server: the pair is useless,
        // the candidate drops out instead of piling copies there.
        let mut known = RoutingTable::new();
        known.learn_replicas(DIR, vec![1], 1);
        let actions = plan_rebalance_actions(&reports, &p, &known);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].dir(), churn);
        // At the replica cap the same degradation applies.
        let mut capped = RoutingTable::new();
        capped.learn_replicas(DIR, vec![2, 3, 4], 1);
        let actions = plan_rebalance_actions(&reports, &p, &capped);
        assert_eq!(actions.len(), 1, "capped dir is skipped");
        assert_eq!(actions[0].dir(), churn);
    }

    #[test]
    fn action_hysteresis_matches_the_migration_hysteresis() {
        let cadence = RebalanceCadence {
            probe_interval: 100,
            confirm: 2,
            cooldown: 1000,
        };
        let act = RebalanceAction::Replicate(ReplicationPlan {
            dir: DIR,
            home: 0,
            to: 1,
        });
        let mut r = Rebalancer::new(RebalancePolicy::default(), cadence);
        assert!(r.observe_actions(0, &[act]).is_empty(), "streak of one");
        // A migrate nomination of the same directory continues the streak:
        // agreement is about where the heat is, not the remedy.
        let mig = RebalanceAction::Migrate(plan(DIR));
        assert_eq!(r.observe_actions(100, &[mig]), vec![mig]);
    }

    #[test]
    fn rebalance_stays_inert_below_the_bars() {
        let p = RebalancePolicy::default();
        // Too few ops overall.
        assert!(plan_rebalance(&[report(0, 10, &[(DIR, 9)]), report(1, 1, &[])], &p).is_empty());
        // Balanced servers.
        assert!(
            plan_rebalance(&[report(0, 1000, &[(DIR, 900)]), report(1, 900, &[])], &p).is_empty()
        );
        // Hot server, but no single directory dominates.
        assert!(
            plan_rebalance(&[report(0, 1000, &[(DIR, 50)]), report(1, 10, &[])], &p).is_empty()
        );
        // One server: nowhere to move.
        assert!(plan_rebalance(&[report(0, 1000, &[(DIR, 900)])], &p).is_empty());
        // No reports at all.
        assert!(plan_rebalance(&[], &p).is_empty());
    }
}
