//! Client-side RPC plumbing with virtual-time accounting.

use crate::machine::{Entity, Machine};
use crate::otrace::Cause;
use crate::proto::{Request, ServerMsg, WireReply};
use crate::types::ServerId;
use fsapi::Errno;
use std::sync::Arc;

/// A client's handle to one file server: its id, the core it runs on, and
/// the send side of its request queue.
#[derive(Clone)]
pub struct ServerHandle {
    /// Server index (`0..NSERVERS`).
    pub id: ServerId,
    /// Core the server is bound to.
    pub core: usize,
    /// Request queue.
    pub tx: msg::Sender<ServerMsg>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle(id={}, core={})", self.id, self.core)
    }
}

/// An RPC whose request has been sent but whose reply has not been
/// collected yet; lets callers overlap several outstanding exchanges
/// (directory broadcast, batched fan-out).
pub struct PendingCall {
    rrx: msg::Receiver<WireReply>,
}

/// A reusable reply channel for strictly serial blocking RPCs: the sender
/// half rides each request (an `Arc` bump) and the receiver half is drained
/// immediately, so steady-state calls allocate no channel. Must only be
/// used where at most one request is outstanding at a time — overlapped
/// exchanges keep their own per-call channels, since replies on a shared
/// queue arrive in completion order.
pub struct ReplySlot {
    tx: msg::Sender<WireReply>,
    rx: msg::Receiver<WireReply>,
}

impl ReplySlot {
    /// Creates the slot's channel once, up front.
    pub fn new(stats: Arc<msg::MsgStats>) -> Self {
        let (tx, rx) = msg::channel::<WireReply>(stats);
        ReplySlot { tx, rx }
    }
}

/// A reply channel for a **one-way** server→server send (the replica
/// invalidation fabric): the caller drops the returned receiver
/// immediately, so the peer's inline reply evaporates instead of being
/// awaited — the send is fire-and-forget like a dircache callback, and
/// the no-server-blocks-on-a-server invariant (§3.3) is preserved.
pub fn oneway_reply_slot(
    machine: &Arc<Machine>,
) -> (msg::Sender<WireReply>, msg::Receiver<WireReply>) {
    msg::channel::<WireReply>(Arc::clone(&machine.msg_stats))
}

/// The default [`Cause`] a request send carries when no decision point
/// tagged it ([`crate::otrace::Tracer::tag_next`]) more specifically:
/// name-resolution traffic, coalesced batches, and the post-resolution
/// terminal follow-ups are recognizable from the request alone.
fn cause_of(req: &Request) -> Cause {
    match req {
        Request::Lookup { .. }
        | Request::LookupOpen { .. }
        | Request::LookupStat { .. }
        | Request::LookupPath { .. }
        | Request::ListShard { .. } => Cause::Resolve,
        Request::Batch { .. } => Cause::BatchRide,
        Request::OpenInode { .. } | Request::StatInode { .. } | Request::Create { .. } => {
            Cause::Terminal
        }
        _ => Cause::Rpc,
    }
}

/// [`call`] through a reusable [`ReplySlot`]: identical semantics and
/// virtual-time accounting, minus the per-call channel allocation.
pub fn call_reusing(
    machine: &Arc<Machine>,
    entity: &Entity,
    server: &ServerHandle,
    req: Request,
    slot: &ReplySlot,
) -> WireReply {
    let span = machine.otrace.send_ctx(cause_of(&req));
    let t_sent = entity.work(machine, machine.cost.msg_send);
    let arrival = t_sent + machine.latency(entity.core, server.core);
    server
        .tx
        .send(
            ServerMsg {
                req,
                reply: slot.tx.clone(),
                span,
            },
            arrival,
            entity.core,
        )
        .map_err(|_| Errno::EIO)?;
    let env = slot.rx.recv().map_err(|_| Errno::EIO)?;
    finish_recv(machine, entity, env.deliver_at);
    env.payload
}

/// Sends one request without waiting for the reply: the caller executes the
/// send cost (busy on its core) and the request arrives at the server after
/// the topology latency.
pub fn send_call(
    machine: &Arc<Machine>,
    entity: &Entity,
    server: &ServerHandle,
    req: Request,
) -> Result<PendingCall, Errno> {
    let span = machine.otrace.send_ctx(cause_of(&req));
    let (rtx, rrx) = msg::channel::<WireReply>(Arc::clone(&machine.msg_stats));
    let t_sent = entity.work(machine, machine.cost.msg_send);
    let arrival = t_sent + machine.latency(entity.core, server.core);
    server
        .tx
        .send(
            ServerMsg {
                req,
                reply: rtx,
                span,
            },
            arrival,
            entity.core,
        )
        .map_err(|_| Errno::EIO)?;
    Ok(PendingCall { rrx })
}

/// Collects the reply of a previously sent request: the caller's timeline
/// advances to the reply's delivery time — *waiting, not busy* — then pays
/// receive cost plus a context switch if its core is time-shared (it had
/// been switched out while polling).
pub fn wait_call(machine: &Arc<Machine>, entity: &Entity, pending: PendingCall) -> WireReply {
    let env = pending.rrx.recv().map_err(|_| Errno::EIO)?;
    finish_recv(machine, entity, env.deliver_at);
    env.payload
}

/// Issues one blocking RPC from `entity` to `server`: [`send_call`]
/// followed immediately by [`wait_call`]. The server's timeline serializes
/// the request with the server's other requests and its core pays the
/// service cycles (see the server loop).
pub fn call(
    machine: &Arc<Machine>,
    entity: &Entity,
    server: &ServerHandle,
    req: Request,
) -> WireReply {
    let pending = send_call(machine, entity, server, req)?;
    wait_call(machine, entity, pending)
}

/// Ships `reqs` to one server as a single [`Request::Batch`] exchange and
/// unpacks the per-entry replies, preserving entry order. A transport-level
/// failure (or a protocol mismatch) fails every entry.
pub fn call_batch(
    machine: &Arc<Machine>,
    entity: &Entity,
    server: &ServerHandle,
    reqs: Vec<Request>,
    fail_fast: bool,
) -> Vec<WireReply> {
    let pending = send_batch(machine, entity, server, reqs, fail_fast);
    wait_batch(machine, entity, pending)
}

/// The send half of [`call_batch`], for overlapping batches to several
/// servers. Returns the pending exchange plus the entry count.
pub fn send_batch(
    machine: &Arc<Machine>,
    entity: &Entity,
    server: &ServerHandle,
    reqs: Vec<Request>,
    fail_fast: bool,
) -> (Result<PendingCall, Errno>, usize) {
    let n = reqs.len();
    machine.msg_stats.record_batched_ops(n as u64);
    let pending = send_call(machine, entity, server, Request::Batch { reqs, fail_fast });
    (pending, n)
}

/// The collect half of [`call_batch`].
pub fn wait_batch(
    machine: &Arc<Machine>,
    entity: &Entity,
    (pending, n): (Result<PendingCall, Errno>, usize),
) -> Vec<WireReply> {
    let outcome = match pending {
        Ok(p) => wait_call(machine, entity, p),
        Err(e) => Err(e),
    };
    match outcome {
        Ok(crate::proto::Reply::Batch(replies)) if replies.len() == n => replies,
        Ok(other) => {
            debug_assert!(false, "batch protocol mismatch: {other:?}");
            vec![Err(Errno::EIO); n]
        }
        Err(e) => vec![Err(e); n],
    }
}

/// Issues the same request (produced per-server by `mk`) to many servers.
///
/// In parallel mode (Hare's *directory broadcast*, §3.6.2) the client sends
/// all requests back-to-back and then collects the replies, overlapping the
/// RPC latency and the servers' handler execution. In sequential mode (the
/// Figure 11 ablation) each server is contacted with a full round trip
/// before the next.
pub fn multicall(
    machine: &Arc<Machine>,
    entity: &Entity,
    servers: &[ServerHandle],
    parallel: bool,
    mut mk: impl FnMut(ServerId) -> Request,
) -> Vec<WireReply> {
    if !parallel {
        return servers
            .iter()
            .map(|s| call(machine, entity, s, mk(s.id)))
            .collect();
    }
    let pending: Vec<_> = servers
        .iter()
        .map(|s| send_call(machine, entity, s, mk(s.id)))
        .collect();
    pending
        .into_iter()
        .map(|p| wait_call(machine, entity, p?))
        .collect()
}

/// Accounts for receiving a reply on the caller's entity.
fn finish_recv(machine: &Arc<Machine>, entity: &Entity, deliver_at: u64) {
    entity.wait_until(machine, deliver_at);
    let mut cost = machine.cost.msg_recv;
    if machine.timeshared(entity.core) {
        cost += machine.cost.ctx_switch;
    }
    entity.work(machine, cost);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HareConfig;
    use crate::proto::Reply;

    /// A toy server that answers `Unit` after `service` cycles, using the
    /// same accounting as the real file server.
    fn toy_server(
        machine: Arc<Machine>,
        core: usize,
        service: u64,
    ) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let (tx, rx) = msg::channel::<ServerMsg>(Arc::clone(&machine.msg_stats));
        machine.register_entity(core);
        let m = Arc::clone(&machine);
        let h = std::thread::spawn(move || {
            let mut now = 0u64;
            while let Ok(env) = rx.recv() {
                if matches!(env.payload.req, Request::Shutdown) {
                    break;
                }
                let mut cost = m.cost.msg_recv + service + m.cost.msg_send;
                if m.timeshared(core) {
                    cost += m.cost.ctx_switch;
                }
                now = now.max(env.deliver_at) + cost;
                m.busy.advance(core, cost);
                m.note(now);
                let deliver = now + m.latency(core, env.src_core);
                let _ = env.payload.reply.send(Ok(Reply::Unit), deliver, core);
            }
        });
        (ServerHandle { id: 0, core, tx }, h)
    }

    fn shutdown(machine: &Arc<Machine>, srv: &ServerHandle, h: std::thread::JoinHandle<()>) {
        srv.tx
            .send(
                ServerMsg {
                    req: Request::Shutdown,
                    reply: msg::channel(Arc::clone(&machine.msg_stats)).0,
                    span: None,
                },
                0,
                0,
            )
            .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn split_rpc_critical_path() {
        let cfg = HareConfig::timeshare(2);
        let machine = Machine::new(&cfg);
        let client = Entity::new(0, 0);
        machine.register_entity(0);
        let (srv, h) = toy_server(Arc::clone(&machine), 1, 1000);

        let r = call(&machine, &client, &srv, Request::PipeCreate);
        assert!(r.is_ok());
        let c = &machine.cost;
        // Timeline: send + latency + (recv + service + send) + latency +
        // recv; no context switches (one entity per core).
        let expect = c.msg_send
            + c.lat_same_socket
            + (c.msg_recv + 1000 + c.msg_send)
            + c.lat_same_socket
            + c.msg_recv;
        assert_eq!(client.now(), expect);
        // Busy: the client core only executed send + recv.
        assert_eq!(machine.busy.now(0), c.msg_send + c.msg_recv);
        shutdown(&machine, &srv, h);
    }

    #[test]
    fn same_core_rpc_pays_context_switches() {
        let cfg = HareConfig::timeshare(1);
        let machine = Machine::new(&cfg);
        let client = Entity::new(0, 0);
        machine.register_entity(0); // the client
        let (srv, h) = toy_server(Arc::clone(&machine), 0, 1000); // + server

        let r = call(&machine, &client, &srv, Request::PipeCreate);
        assert!(r.is_ok());
        let c = &machine.cost;
        let expect = c.msg_send
            + c.lat_same_core
            + (c.msg_recv + 1000 + c.msg_send + c.ctx_switch)
            + c.lat_same_core
            + (c.msg_recv + c.ctx_switch);
        assert_eq!(client.now(), expect);
        shutdown(&machine, &srv, h);
    }

    #[test]
    fn waiting_is_not_busy_so_peers_overlap() {
        // Two clients on different cores calling one slow server: their
        // timelines serialize at the server, but their cores stay idle
        // while waiting (the essence of the timeshare configuration).
        let cfg = HareConfig::timeshare(3);
        let machine = Machine::new(&cfg);
        let a = Entity::new(0, 0);
        let b = Entity::new(1, 0);
        machine.register_entity(0);
        machine.register_entity(1);
        let (srv, h) = toy_server(Arc::clone(&machine), 2, 50_000);

        let ta = std::thread::spawn({
            let m = Arc::clone(&machine);
            let s = srv.clone();
            move || {
                call(&m, &a, &s, Request::PipeCreate).unwrap();
                a.now()
            }
        });
        let tb = std::thread::spawn({
            let m = Arc::clone(&machine);
            let s = srv.clone();
            move || {
                call(&m, &b, &s, Request::PipeCreate).unwrap();
                b.now()
            }
        });
        let (na, nb) = (ta.join().unwrap(), tb.join().unwrap());
        // One of the two was queued behind the other at the server.
        assert!(na.max(nb) > 100_000, "server must serialize: {na} {nb}");
        // But client cores executed almost nothing.
        let c = &machine.cost;
        assert_eq!(machine.busy.now(0), c.msg_send + c.msg_recv);
        assert_eq!(machine.busy.now(1), c.msg_send + c.msg_recv);
        shutdown(&machine, &srv, h);
    }

    #[test]
    fn broadcast_overlaps_latency() {
        let cfg = HareConfig::timeshare(4);
        let machine = Machine::new(&cfg);
        let client = Entity::new(0, 0);
        machine.register_entity(0);
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for core in 1..4 {
            let (s, j) = toy_server(Arc::clone(&machine), core, 10_000);
            handles.push(s);
            joins.push(j);
        }

        let replies = multicall(&machine, &client, &handles, true, |_| Request::PipeCreate);
        assert_eq!(replies.len(), 3);
        assert!(replies.iter().all(|r| r.is_ok()));
        // Parallel fan-out: the three services overlap, so the client's
        // timeline is far less than 3 sequential RPCs.
        assert!(
            client.now() < 2 * (10_000 + 5000),
            "broadcast did not overlap: {}",
            client.now()
        );

        for (s, j) in handles.iter().zip(joins) {
            shutdown(&machine, s, j);
        }
    }
}
