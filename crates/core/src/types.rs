//! Identifier types used throughout the Hare protocol.

/// Index of a file server (0-based, dense).
pub type ServerId = u16;

/// Unique identifier of one client library instance.
///
/// Every simulated process has a client library; servers track client ids
/// for directory-cache invalidation callbacks (paper §3.6.1).
pub type ClientId = u64;

/// A globally unique inode name.
///
/// "Hare names inodes by a tuple consisting of the server ID and the
/// per-server inode number to guarantee uniqueness across the system as well
/// as scalable allocation of inode numbers" (paper §3.6.4). Directory entries
/// must therefore store both pieces (paper §3.6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId {
    /// The server storing the inode.
    pub server: ServerId,
    /// The per-server inode number.
    pub num: u64,
}

impl InodeId {
    /// The root directory, stored at the designated server 0 (paper §3.1:
    /// "a designated server stores the root directory entry").
    pub const ROOT: InodeId = InodeId { server: 0, num: 1 };
}

impl std::fmt::Display for InodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ino{}.{}", self.server, self.num)
    }
}

/// A server-side open-file handle id, scoped to the issuing server.
///
/// The server responsible for a file's inode tracks its open descriptors and
/// their reference counts (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FdId(pub u64);

impl std::fmt::Display for FdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sfd{}", self.0)
    }
}

/// The dentry shard server for `name` in `dir`: `hash(dir, name) %
/// nservers` for distributed directories (paper §3.3 — `dir` is the
/// parent's inode id, rename-stable), or the home server for centralized
/// ones.
///
/// This is *the* routing function of the namespace: clients use it to pick
/// the server for every entry operation, and servers use the same function
/// to decide whether the next component of a chained
/// [`LookupPath`](crate::proto::Request::LookupPath) walk is local or must
/// be forwarded. Keeping one definition is what guarantees a forwarded
/// request always lands at the owner (so every hop makes progress).
pub fn dentry_shard(dir: InodeId, dist: bool, name: &str, nservers: usize) -> ServerId {
    dentry_shard_in(dir, dist, name, nservers, nservers)
}

/// [`dentry_shard`] bounded to a per-directory shard set of `width`
/// servers (`HareConfig::dir_shard_width`).
///
/// At full width (`width >= nservers`, the default) this is *exactly* the
/// paper's `hash % NSERVERS` — byte-for-byte, so epoch-0 routing and every
/// pinned exchange count are unchanged. A narrower width confines the
/// directory's entries to the home-anchored set `{(home + k) % nservers :
/// k < width}` (the same rotation idiom as
/// [`crate::placement::stripe_servers`]), selecting within the set by
/// `hash % width`. Clients and the servers' chained walk share this one
/// definition, so a forwarded request still always lands at the owner.
pub fn dentry_shard_in(
    dir: InodeId,
    dist: bool,
    name: &str,
    width: usize,
    nservers: usize,
) -> ServerId {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    if !dist {
        return dir.server;
    }
    let mut h = DefaultHasher::new();
    dir.server.hash(&mut h);
    dir.num.hash(&mut h);
    name.hash(&mut h);
    if width >= nservers {
        return (h.finish() % nservers as u64) as ServerId;
    }
    let k = h.finish() % width as u64;
    ((dir.server as u64 + k) % nservers as u64) as ServerId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_on_designated_server() {
        assert_eq!(InodeId::ROOT.server, 0);
        assert_eq!(InodeId::ROOT.to_string(), "ino0.1");
    }

    #[test]
    fn inode_ids_are_ordered() {
        let a = InodeId { server: 0, num: 5 };
        let b = InodeId { server: 1, num: 1 };
        assert!(a < b);
    }

    #[test]
    fn centralized_entries_live_at_the_home_server() {
        let dir = InodeId { server: 3, num: 9 };
        assert_eq!(dentry_shard(dir, false, "anything", 8), 3);
    }

    #[test]
    fn distributed_routing_is_deterministic_and_in_range() {
        let dir = InodeId { server: 0, num: 1 };
        for n in ["a", "b", "deep/nested-ish", "x1"] {
            let s = dentry_shard(dir, true, n, 8);
            assert!(usize::from(s) < 8);
            assert_eq!(s, dentry_shard(dir, true, n, 8), "stable per input");
        }
    }

    #[test]
    fn full_width_is_the_paper_hash_byte_for_byte() {
        let dir = InodeId { server: 3, num: 7 };
        for i in 0..64 {
            let n = format!("f{i}");
            assert_eq!(
                dentry_shard_in(dir, true, &n, 8, 8),
                dentry_shard(dir, true, &n, 8)
            );
            // Over-wide configs normalize to the same thing.
            assert_eq!(
                dentry_shard_in(dir, true, &n, 64, 8),
                dentry_shard(dir, true, &n, 8)
            );
        }
    }

    #[test]
    fn narrow_width_confines_to_the_home_anchored_set() {
        let dir = InodeId { server: 6, num: 7 };
        // width 4 on 8 servers: only {6, 7, 0, 1} may own entries.
        let set = [6u16, 7, 0, 1];
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            let s = dentry_shard_in(dir, true, &format!("f{i}"), 4, 8);
            assert!(set.contains(&s), "server {s} outside the shard set");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 4, "all four shards are actually used");
        // Centralized directories ignore the width entirely.
        assert_eq!(dentry_shard_in(dir, false, "x", 4, 8), 6);
    }
}
