//! Per-operation causal tracing: span trees across chains, replicas, and
//! migrations.
//!
//! Every hard regression gate in this repo is an exchange count, but an
//! aggregate RPCs/op number cannot say *which* hop, redirect,
//! invalidation, or park/replay spent the message. This module attributes
//! every send to a node in a per-operation **span tree**:
//!
//! * A client operation ([`fsapi::ProcFs`] call) opens a **root span**.
//! * Every request send allocates a compact [`SpanCtx`] — root op id,
//!   parent span id, child position, and a [`Cause`] tag — that travels on
//!   the [`crate::proto::ServerMsg`] envelope.
//! * The receiving server opens a **child span** from that context and
//!   charges the sends *it* issues (reply, chain forward, invalidations,
//!   replica callbacks) to it; continuations — chained `LookupPath`
//!   forwards, migration/rmdir park-and-replay, replica installs — open
//!   further children, so the whole causal history of one operation is
//!   mechanically reconstructable.
//!
//! The sum of `sends` over a finished tree is exactly the number of
//! [`msg`]-layer sends the operation caused: a span charges a send if and
//! only if the underlying [`msg::Sender::send`] succeeded (the only case
//! [`msg::MsgStats`] counts). That identity is pinned by tests and lets
//! span trees *prove* the committed RPCs/op baselines.
//!
//! Tracing is config-gated ([`crate::HareConfig::trace_ops`], default
//! off). Disabled, every entry point returns before touching the lock or
//! allocating, and no span context travels — the system is byte-for-byte
//! the untraced one (sends-parity pinned in `tests/otrace.rs`).
//!
//! Finished trees serialize two ways: deterministically ordered Chrome
//! trace-event JSON ([`Tracer::to_chrome_json`], loadable in Perfetto) and
//! an indented per-op text rendering ([`SpanNode::render`], the perf
//! gate's `--explain` output). See `docs/tracing.md` for how to read them.

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a message was sent — the edge label between a span and its parent.
///
/// The tag is chosen by the *sender*: the client's engine knows whether a
/// send is a first resolution attempt or a redirect retry, the server
/// knows whether a send is a chain hop or a replica invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// A client-side operation span (the root of a tree, or an operation
    /// nested inside another operation).
    Op,
    /// A plain request/reply exchange with no more specific cause (data
    /// plane, descriptor control, load reports).
    Rpc,
    /// A name-resolution exchange (`Lookup*`, `LookupPath`, `ListShard`).
    Resolve,
    /// A server-to-server hand-off of a chained `LookupPath` remainder,
    /// or a one-way structural peer callback riding the same fabric.
    ChainHop,
    /// A post-resolution terminal operation on the inode server
    /// (`OpenInode`, `StatInode`, `Create`), including the fused terminal
    /// half executed locally by the last chain server.
    Terminal,
    /// A retry after a `NotOwner` redirect was folded into the routing
    /// table (placement moved under the client).
    Redirect,
    /// A read routed to a replica-set member instead of the home.
    ReplicaRead,
    /// A cache-invalidation notice (dircache callback or replica
    /// write-through invalidation).
    Inval,
    /// A replay of an operation that parked behind an rmdir deletion mark
    /// or a migration copy window.
    ParkReplay,
    /// A retry after a transient `EAGAIN` refusal.
    Retry,
    /// A stripe fetch issued ahead of the requested byte range.
    Readahead,
    /// An entry riding a coalesced `Batch` envelope.
    BatchRide,
}

impl Cause {
    /// Stable lower-case name (serialization and rendering).
    pub fn name(self) -> &'static str {
        match self {
            Cause::Op => "op",
            Cause::Rpc => "rpc",
            Cause::Resolve => "resolve",
            Cause::ChainHop => "chain_hop",
            Cause::Terminal => "terminal",
            Cause::Redirect => "redirect",
            Cause::ReplicaRead => "replica_read",
            Cause::Inval => "inval",
            Cause::ParkReplay => "park_replay",
            Cause::Retry => "retry",
            Cause::Readahead => "readahead",
            Cause::BatchRide => "batch_ride",
        }
    }
}

/// The compact span context a request send carries on its
/// [`crate::proto::ServerMsg`] envelope: enough for the receiver to
/// attach its own span at the right place in the right tree.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx {
    /// Root operation id of the tree this message belongs to.
    pub op: u64,
    /// Global id of the parent span (the sender's open span).
    pub parent: u64,
    /// Position among the parent's children (allocated at send time, so
    /// sibling order is the causal send order).
    pub idx: u32,
    /// Why the message was sent.
    pub cause: Cause,
}

/// One recorded span.
struct Span {
    op: u64,
    /// Parent span id; 0 for a root.
    parent: u64,
    /// Position among the parent's children.
    idx: u32,
    cause: Cause,
    label: &'static str,
    core: usize,
    start: u64,
    end: u64,
    /// Successful [`msg`]-layer sends this span itself issued.
    sends: u64,
    /// Next child position to hand out.
    next_child: u32,
    open: bool,
}

#[derive(Default)]
struct Inner {
    /// Next global span id (0 is reserved for "no parent").
    next_id: u64,
    /// Next root operation id.
    next_op: u64,
    spans: HashMap<u64, Span>,
    /// Root span ids in operation order.
    roots: Vec<u64>,
}

impl Inner {
    fn alloc(&mut self, span: Span) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.spans.insert(id, span);
        id
    }
}

// Per-thread bookkeeping. A simulated process (and each server loop) is a
// single thread of control, so "the span whose work this thread is doing
// right now" is exactly a stack. Entries carry the owning tracer's
// instance id so two traced machines in one test process cannot charge
// each other's spans.
thread_local! {
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    static TAG: Cell<Option<Cause>> = const { Cell::new(None) };
}

/// Tracer instance ids (disambiguate thread-local stack entries when one
/// OS thread touches several traced machines).
static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

/// The per-machine span recorder. Lives on [`crate::Machine`] as
/// `otrace`; shared by the client libraries and the servers (the
/// simulation is one process, so no distributed reassembly is needed —
/// the [`SpanCtx`] on the wire only tells the receiver *where to attach*).
pub struct Tracer {
    enabled: bool,
    tid: u64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer(enabled={})", self.enabled)
    }
}

impl Tracer {
    /// Builds a tracer. Disabled, every method is a no-op returning
    /// before any lock or allocation.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            tid: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Innermost open span owned by this tracer on the current thread.
    fn cur(&self) -> Option<u64> {
        STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == self.tid)
                .map(|(_, id)| *id)
        })
    }

    fn push(&self, id: u64) {
        STACK.with(|s| s.borrow_mut().push((self.tid, id)));
    }

    /// Pops this tracer's innermost stack entry and returns it.
    fn pop(&self) -> Option<u64> {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let pos = s.iter().rposition(|(t, _)| *t == self.tid)?;
            Some(s.remove(pos).1)
        })
    }

    // ----- Client-side: operations and request sends ---------------------

    /// Opens an operation span on the current thread. The first (only, in
    /// practice) non-nested call opens a **root**; an operation invoked
    /// from inside another traced operation nests as a child.
    pub fn begin_op(&self, label: &'static str, core: usize, now: u64) {
        if !self.enabled {
            return;
        }
        TAG.set(None);
        let parent = self.cur();
        let mut inner = self.inner.lock();
        let span = match parent {
            Some(p) => {
                let op = inner.spans[&p].op;
                let idx = Self::next_idx(&mut inner, p);
                Span {
                    op,
                    parent: p,
                    idx,
                    cause: Cause::Op,
                    label,
                    core,
                    start: now,
                    end: now,
                    sends: 0,
                    next_child: 0,
                    open: true,
                }
            }
            None => {
                inner.next_op += 1;
                Span {
                    op: inner.next_op,
                    parent: 0,
                    idx: 0,
                    cause: Cause::Op,
                    label,
                    core,
                    start: now,
                    end: now,
                    sends: 0,
                    next_child: 0,
                    open: true,
                }
            }
        };
        let root = span.parent == 0;
        let id = inner.alloc(span);
        if root {
            inner.roots.push(id);
        }
        drop(inner);
        self.push(id);
    }

    /// Closes the current operation span.
    pub fn end_op(&self, now: u64) {
        if !self.enabled {
            return;
        }
        TAG.set(None);
        self.end_span(now);
    }

    /// Overrides the [`Cause`] of the *next* [`Tracer::send_ctx`] on this
    /// thread — how retry/redirect/replica/readahead decision points tag
    /// the send they are about to cause without threading a value through
    /// the transport layers.
    pub fn tag_next(&self, cause: Cause) {
        if !self.enabled {
            return;
        }
        TAG.set(Some(cause));
    }

    /// Allocates the span context for a request send from the current
    /// span: charges the send to it and hands out the next child
    /// position. `None` (attach nothing, charge nothing) when tracing is
    /// off or no operation is open — registration and raw test traffic
    /// stays outside every tree.
    pub fn send_ctx(&self, default_cause: Cause) -> Option<SpanCtx> {
        if !self.enabled {
            return None;
        }
        let parent = self.cur()?;
        let cause = TAG.take().unwrap_or(default_cause);
        let mut inner = self.inner.lock();
        let idx = Self::next_idx(&mut inner, parent);
        let p = inner.spans.get_mut(&parent).expect("open span recorded");
        p.sends += 1;
        Some(SpanCtx {
            op: p.op,
            parent,
            idx,
            cause,
        })
    }

    /// Charges one successful send (a reply, a parked-op wake) to the
    /// current span.
    pub fn charge_send(&self) {
        if !self.enabled {
            return;
        }
        let Some(id) = self.cur() else { return };
        let mut inner = self.inner.lock();
        inner.spans.get_mut(&id).expect("open span recorded").sends += 1;
    }

    /// Records a zero-width child of the current span that issued exactly
    /// one send — invalidation notices, which carry no span context and
    /// get no reply.
    pub fn leaf_send(&self, cause: Cause, label: &'static str, core: usize, now: u64) {
        if !self.enabled {
            return;
        }
        let Some(parent) = self.cur() else { return };
        let mut inner = self.inner.lock();
        let idx = Self::next_idx(&mut inner, parent);
        let op = inner.spans[&parent].op;
        inner.alloc(Span {
            op,
            parent,
            idx,
            cause,
            label,
            core,
            start: now,
            end: now,
            sends: 1,
            next_child: 0,
            open: false,
        });
    }

    // ----- Server-side: child spans from received contexts ---------------

    /// Opens a span from a received [`SpanCtx`] (the server side of a
    /// request). Returns whether a span was opened — the caller must pair
    /// a `true` with exactly one [`Tracer::end_span`].
    pub fn begin_from(
        &self,
        ctx: Option<SpanCtx>,
        label: &'static str,
        core: usize,
        now: u64,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        let Some(ctx) = ctx else { return false };
        let mut inner = self.inner.lock();
        let id = inner.alloc(Span {
            op: ctx.op,
            parent: ctx.parent,
            idx: ctx.idx,
            cause: ctx.cause,
            label,
            core,
            start: now,
            end: now,
            sends: 0,
            next_child: 0,
            open: true,
        });
        drop(inner);
        self.push(id);
        true
    }

    /// Opens a local child of the current span (a fused terminal executed
    /// in place, a batch entry) — no message travels, so the child runs on
    /// the same core and starts no earlier than its parent (`now` is
    /// clamped up to the parent's start; pass 0 where no finer time is at
    /// hand). Returns whether a span was opened (pair `true` with
    /// [`Tracer::end_span`]).
    pub fn begin_local(&self, cause: Cause, label: &'static str, core: usize, now: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let Some(parent) = self.cur() else {
            return false;
        };
        let mut inner = self.inner.lock();
        let idx = Self::next_idx(&mut inner, parent);
        let p = &inner.spans[&parent];
        let (op, start) = (p.op, p.start.max(now));
        let id = inner.alloc(Span {
            op,
            parent,
            idx,
            cause,
            label,
            core,
            start,
            end: start,
            sends: 0,
            next_child: 0,
            open: true,
        });
        drop(inner);
        self.push(id);
        true
    }

    /// Closes the current span at `now` (clamped forward to its start).
    pub fn end_span(&self, now: u64) {
        if !self.enabled {
            return;
        }
        let Some(id) = self.pop() else { return };
        let mut inner = self.inner.lock();
        let s = inner.spans.get_mut(&id).expect("open span recorded");
        s.end = now.max(s.start);
        s.open = false;
    }

    /// Records a zero-send leaf marking that a request parked behind a
    /// deletion mark or migration window, consuming the parked context's
    /// child position. The eventual replay re-attaches at a fresh
    /// position via [`Tracer::replay_ctx`], so one tree shows both the
    /// wait and the work.
    pub fn park_leaf(&self, ctx: Option<SpanCtx>, core: usize, now: u64) {
        if !self.enabled {
            return;
        }
        let Some(ctx) = ctx else { return };
        let mut inner = self.inner.lock();
        inner.alloc(Span {
            op: ctx.op,
            parent: ctx.parent,
            idx: ctx.idx,
            cause: ctx.cause,
            label: "(parked)",
            core,
            start: now,
            end: now,
            sends: 0,
            next_child: 0,
            open: false,
        });
    }

    /// Re-contexts a parked request for replay: same tree, same parent,
    /// fresh child position, [`Cause::ParkReplay`]. The parent span may
    /// long be closed — its child counter outlives it.
    pub fn replay_ctx(&self, ctx: Option<SpanCtx>) -> Option<SpanCtx> {
        if !self.enabled {
            return None;
        }
        let ctx = ctx?;
        let mut inner = self.inner.lock();
        let idx = Self::next_idx(&mut inner, ctx.parent);
        Some(SpanCtx {
            op: ctx.op,
            parent: ctx.parent,
            idx,
            cause: Cause::ParkReplay,
        })
    }

    fn next_idx(inner: &mut Inner, parent: u64) -> u32 {
        let p = inner.spans.get_mut(&parent).expect("parent span recorded");
        p.next_child += 1;
        p.next_child - 1
    }

    // ----- Reading the record --------------------------------------------

    /// Number of spans still open (must be 0 once every operation and
    /// server is quiesced — the span-leak assertion).
    pub fn open_spans(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        self.inner.lock().spans.values().filter(|s| s.open).count()
    }

    /// Number of recorded root operations.
    pub fn op_count(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        self.inner.lock().roots.len()
    }

    /// Drops every recorded span (measurement phases that only want their
    /// own window).
    pub fn reset(&self) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        inner.spans.clear();
        inner.roots.clear();
        // Ids keep counting: contexts minted before the reset must not
        // collide with spans recorded after it.
    }

    /// Assembled span trees, one per recorded root operation, in
    /// operation order; children in child-position (causal send) order.
    /// The assembly is deterministic however server threads interleaved.
    pub fn op_trees(&self) -> Vec<SpanNode> {
        if !self.enabled {
            return Vec::new();
        }
        let inner = self.inner.lock();
        let mut kids: HashMap<u64, Vec<(u32, u64)>> = HashMap::new();
        for (id, s) in &inner.spans {
            if s.parent != 0 {
                kids.entry(s.parent).or_default().push((s.idx, *id));
            }
        }
        for v in kids.values_mut() {
            v.sort_unstable();
        }
        fn build(inner: &Inner, kids: &HashMap<u64, Vec<(u32, u64)>>, id: u64) -> SpanNode {
            let s = &inner.spans[&id];
            SpanNode {
                cause: s.cause,
                label: s.label,
                core: s.core,
                start: s.start,
                end: s.end,
                sends: s.sends,
                children: kids
                    .get(&id)
                    .map(|v| v.iter().map(|(_, c)| build(inner, kids, *c)).collect())
                    .unwrap_or_default(),
            }
        }
        inner
            .roots
            .iter()
            .map(|r| build(&inner, &kids, *r))
            .collect()
    }

    /// The root operations whose span tree *ended* in `[start, end)`, as
    /// `(label, total sends, duration)` triples, costliest first (ties:
    /// earlier start, then operation order) — the per-window top-K
    /// expensive-ops feed for [`crate::metrics::TimeSeries`].
    pub fn window_top_ops(&self, start: u64, end: u64, k: usize) -> Vec<(String, u64, u64)> {
        if !self.enabled {
            return Vec::new();
        }
        let mut ops: Vec<(u64, u64, u64, String)> = self
            .op_trees()
            .into_iter()
            .filter(|t| t.end >= start && t.end < end)
            .map(|t| (t.total_sends(), t.start, t.end, t.label.to_string()))
            .collect();
        ops.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ops.truncate(k);
        ops.into_iter()
            .map(|(sends, s, e, label)| (label, sends, e - s))
            .collect()
    }

    /// The costliest recorded operation's text rendering, if any.
    pub fn explain_worst(&self) -> Option<String> {
        self.op_trees()
            .into_iter()
            .max_by_key(|t| t.total_sends())
            .map(|t| t.render())
    }

    /// Serializes every recorded tree to Chrome trace-event JSON
    /// (Perfetto-loadable): one complete (`"ph":"X"`) event per span,
    /// `ts`/`dur` in virtual cycles, `pid` = operation number, `tid` =
    /// core. Events are emitted in deterministic DFS order with serially
    /// renumbered ids, so the same workload replayed yields byte-identical
    /// output regardless of thread interleaving.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut serial = 0u64;
        let mut first = true;
        for (opno, tree) in self.op_trees().iter().enumerate() {
            emit_chrome(tree, opno as u64 + 1, 0, &mut serial, &mut first, &mut out);
        }
        out.push_str("]}");
        out
    }
}

fn emit_chrome(
    n: &SpanNode,
    pid: u64,
    parent: u64,
    serial: &mut u64,
    first: &mut bool,
    out: &mut String,
) {
    *serial += 1;
    let id = *serial;
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},\"sends\":{}}}}}",
        n.label,
        n.cause.name(),
        n.start,
        n.end - n.start,
        pid,
        n.core,
        id,
        parent,
        n.sends
    );
    for c in &n.children {
        emit_chrome(c, pid, id, serial, first, out);
    }
}

/// One node of an assembled span tree (the public, read-only view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Why the span's message (or operation) happened.
    pub cause: Cause,
    /// Request or operation name.
    pub label: &'static str,
    /// Core the span's work ran on.
    pub core: usize,
    /// Virtual start time (cycles).
    pub start: u64,
    /// Virtual end time (cycles).
    pub end: u64,
    /// Successful sends this span itself issued.
    pub sends: u64,
    /// Children in causal send order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total sends over the whole subtree — for a finished root, exactly
    /// the [`msg`]-layer sends the operation caused.
    pub fn total_sends(&self) -> u64 {
        self.sends + self.children.iter().map(|c| c.total_sends()).sum::<u64>()
    }

    /// Maximum node depth (a root alone is 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// The tree's cause tags in depth-first order — the compact shape
    /// tests pin.
    pub fn causes(&self) -> Vec<Cause> {
        let mut out = vec![self.cause];
        for c in &self.children {
            out.extend(c.causes());
        }
        out
    }

    /// Indented text rendering (the `explain` format):
    ///
    /// ```text
    /// stat  op  core=0  vt=[120..980]  sends=2  total=8
    ///   LookupPath  resolve  core=1  vt=[200..400]  sends=1
    ///     LookupPath  chain_hop  core=2  vt=[450..600]  sends=1
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{}  {}  core={}  vt=[{}..{}]  sends={}",
            self.label,
            self.cause.name(),
            self.core,
            self.start,
            self.end,
            self.sends
        );
        if depth == 0 {
            let _ = write!(out, "  total={}", self.total_sends());
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        t.begin_op("stat", 0, 0);
        assert!(t.send_ctx(Cause::Resolve).is_none());
        t.charge_send();
        t.end_op(10);
        assert_eq!(t.op_count(), 0);
        assert_eq!(t.open_spans(), 0);
        assert!(t.op_trees().is_empty());
    }

    #[test]
    fn root_child_and_leaf_assemble_in_send_order() {
        let t = Tracer::new(true);
        t.begin_op("open", 3, 100);
        let c1 = t.send_ctx(Cause::Resolve).unwrap();
        let c2 = t.send_ctx(Cause::Terminal).unwrap();
        assert_eq!((c1.idx, c2.idx), (0, 1));
        // "Server" side, out of order: the terminal first.
        assert!(t.begin_from(Some(c2), "OpenInode", 1, 300));
        t.charge_send();
        t.end_span(350);
        assert!(t.begin_from(Some(c1), "Lookup", 2, 150));
        t.charge_send();
        t.leaf_send(Cause::Inval, "inval", 2, 170);
        t.end_span(200);
        t.end_op(400);
        assert_eq!(t.open_spans(), 0);
        let trees = t.op_trees();
        assert_eq!(trees.len(), 1);
        let root = &trees[0];
        assert_eq!(root.label, "open");
        assert_eq!(root.sends, 2);
        assert_eq!(root.total_sends(), 5);
        // Children come back in send order despite reversed processing.
        assert_eq!(root.children[0].label, "Lookup");
        assert_eq!(root.children[0].children[0].cause, Cause::Inval);
        assert_eq!(root.children[1].label, "OpenInode");
        assert_eq!(
            root.causes(),
            vec![Cause::Op, Cause::Resolve, Cause::Inval, Cause::Terminal]
        );
    }

    #[test]
    fn park_and_replay_share_a_parent() {
        let t = Tracer::new(true);
        t.begin_op("stat", 0, 0);
        let ctx = t.send_ctx(Cause::Resolve).unwrap();
        t.park_leaf(Some(ctx), 1, 50);
        let replay = t.replay_ctx(Some(ctx)).unwrap();
        assert_eq!(replay.cause, Cause::ParkReplay);
        assert!(replay.idx > ctx.idx);
        assert!(t.begin_from(Some(replay), "LookupStat", 1, 90));
        t.charge_send();
        t.end_span(120);
        t.end_op(130);
        let trees = t.op_trees();
        assert_eq!(
            trees[0].causes(),
            vec![Cause::Op, Cause::Resolve, Cause::ParkReplay]
        );
        assert_eq!(trees[0].children[0].label, "(parked)");
        assert_eq!(trees[0].total_sends(), 2);
    }

    #[test]
    fn chrome_json_is_deterministic_and_integer_only() {
        let t = Tracer::new(true);
        t.begin_op("readdir", 0, 10);
        let c = t.send_ctx(Cause::Resolve).unwrap();
        assert!(t.begin_from(Some(c), "ListShard", 1, 20));
        t.charge_send();
        t.end_span(40);
        t.end_op(50);
        let js = t.to_chrome_json();
        assert_eq!(js, t.to_chrome_json());
        assert!(js.starts_with("{\"displayTimeUnit\""));
        assert!(js.contains("\"name\":\"ListShard\""));
        assert!(js.contains("\"cat\":\"resolve\""));
        assert!(!js.contains('.'), "integer vtimes only: {js}");
    }

    #[test]
    fn two_tracers_on_one_thread_stay_separate() {
        let a = Tracer::new(true);
        let b = Tracer::new(true);
        a.begin_op("stat", 0, 0);
        b.begin_op("open", 1, 0);
        a.charge_send();
        b.charge_send();
        b.end_op(5);
        a.end_op(9);
        assert_eq!(a.op_trees()[0].label, "stat");
        assert_eq!(a.op_trees()[0].sends, 1);
        assert_eq!(b.op_trees()[0].label, "open");
        assert_eq!(b.op_trees()[0].sends, 1);
    }
}
