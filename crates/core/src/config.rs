//! Hare instance configuration: core/server layout and technique toggles.

use vtime::{CostModel, Topology};

/// The five techniques the paper ablates in §5.4 (Figure 9), plus seven
/// extensions this reproduction adds in the same spirit.
///
/// Each toggle removes one optimization while keeping the system correct,
/// which is exactly how the paper measures technique importance.
///
/// The extensions:
///
/// * `coalesced_open` extends the paper's §3.6.3 message coalescing from
///   `create` to *open-existing*: when the dentry shard and the inode
///   server coincide (the common case under creation affinity §3.6.4), the
///   final-component lookup and the descriptor open travel as one
///   `LookupOpen` RPC instead of a `Lookup` + `OpenInode` pair.
/// * `neg_dircache` extends the §3.6.1 directory cache to *negative*
///   entries: an ENOENT lookup result is cached and invalidated by the
///   server on a later ADD_MAP, so `O_CREAT` existence probes and
///   create-heavy workloads (mailbench) stop re-asking servers about names
///   known to be absent.
/// * `coalesced_stat` is the `stat` sibling of `coalesced_open`: the
///   final-component lookup and the `StatInode` travel as one `LookupStat`
///   RPC when the dentry shard also stores the inode, cutting a cold
///   `stat` from depth+2 to depth+1 RPCs (the client falls back to the
///   two-RPC path for remote inodes).
/// * `batching` is the batched RPC transport: independent requests bound
///   for the same server ship as one `Batch` message executed in order,
///   paying one message overhead (receive, reply send, context switch) for
///   the group. It vectorizes `readdir`'s per-shard fan-out, the
///   readdir+stat (`ls -l`) pattern, same-shard rename `AddMap`+`RmMap`
///   pairs, the rmdir mark/commit fan-out, write-behind `SetSize` flushes
///   on fsync, and client `Unregister` teardown.
/// * `chained_resolution` is server-side `LookupPath` chaining: on a cold
///   multi-component resolution the client sends the *whole remaining
///   path* to the first uncached component's shard server, which resolves
///   as many consecutive components as it owns and forwards the remainder
///   directly to the next owner; the final server answers the client.
///   Cold resolution of a deep path costs one message per *run* of
///   co-located components (plus the reply) instead of one round trip per
///   component. When off, the resolve loop walks component-by-component
///   exactly as the paper describes (§3.6.1).
/// * `fused_terminal` fuses the *terminal* operation into the chain: the
///   `LookupPath` carries what the walk was for (`stat`, `open`, or the
///   first shard of a `readdir` listing), and the server resolving the
///   final component executes it against its co-located inode shard and
///   replies directly — a cold deep `stat`/`open` whose shards align is
///   one end-to-end exchange. When the terminal inode lives elsewhere the
///   chain degrades to the resolved dentry and the client pays the
///   ordinary follow-up RPC. When off, the chain resolves and the client
///   issues the coalesced final-component RPC separately (the PR 3
///   protocol).
/// * `rebalancing` is the dynamic placement subsystem (`crate::placement`):
///   epoch-versioned routing tables, live migration of a hot centralized
///   directory's dentry shard to the least-loaded server, and `NotOwner`
///   redirects that teach stale clients the new owner in one extra
///   exchange. When off, routing is the paper's fixed hash forever —
///   migration requests become no-ops and every pinned exchange count is
///   byte-for-byte the static system's (with it *on* but no migration
///   performed, the tables stay at epoch 0 and the counts are identical
///   too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Techniques {
    /// Directory distribution (§3.3): when off, every directory is
    /// centralized at its home server regardless of creation flags.
    pub distribution: bool,
    /// Directory broadcast (§3.6.2): when off, `readdir`/`rmdir` over a
    /// distributed directory issue sequential RPCs to each server instead of
    /// parallel fan-out.
    pub broadcast: bool,
    /// Direct buffer-cache access (§3.6, Figure 12): when off, file data
    /// moves through the file server by RPC instead of through shared DRAM.
    pub direct_access: bool,
    /// Directory-entry lookup cache with server invalidations (§3.6.1).
    pub dircache: bool,
    /// Creation affinity (§3.6.4): place a new file's inode on a server
    /// close to the creating core.
    pub affinity: bool,
    /// Coalesced lookup+open for existing files (extends §3.6.3): when off,
    /// opening an existing file always pays separate `Lookup` and
    /// `OpenInode` round trips.
    pub coalesced_open: bool,
    /// Negative directory-entry caching (extends §3.6.1): when off, every
    /// ENOENT miss re-probes the dentry shard. Requires `dircache`.
    pub neg_dircache: bool,
    /// Coalesced lookup+stat (extends §3.6.3 like `coalesced_open`): when
    /// off, `stat` of an uncached name always pays separate `Lookup` and
    /// `StatInode` round trips.
    pub coalesced_stat: bool,
    /// Batched RPC transport: when off, requests that would share a
    /// `Batch` message to one server are issued as independent RPCs.
    pub batching: bool,
    /// Server-side `LookupPath` chaining for cold multi-component
    /// resolution: when off, the resolve loop issues one `Lookup` round
    /// trip per uncached component (the paper's §3.6.1 protocol).
    pub chained_resolution: bool,
    /// Terminal-op fusion for chained resolution: the final server of a
    /// `LookupPath` chain executes the coalesced stat/open (or lists its
    /// shard of the target directory) in the same exchange. Inert without
    /// `chained_resolution`; the stat/open terminals also respect
    /// `coalesced_stat`/`coalesced_open`.
    pub fused_terminal: bool,
    /// The dynamic placement subsystem: when off, the rebalancer and the
    /// migration driver are no-ops and the routing tables stay at epoch 0
    /// (the paper's fixed hash) forever.
    pub rebalancing: bool,
    /// The striped data plane: when on *and* `HareConfig::stripe_width`
    /// is ≥ 2, opens carry an extent map and clients address each
    /// stripe's `ReadStripe`/`WriteStripe` to its service owner in
    /// parallel. When off (or un-widened, the default), every block is
    /// serviced by the file's home server — byte-for-byte the paper's
    /// layout.
    pub striping: bool,
    /// Read replication for hot shards: when off, clients route every
    /// read to the directory's home (replica selection short-circuits),
    /// the replication driver is a no-op, and — with no `ReplicaExport`
    /// ever driven — routing tables never grow a replica record, so
    /// behavior is byte-for-byte the unreplicated system. Writes are
    /// unaffected either way: they always serialize at the home.
    pub replication: bool,
    /// Windowed stripe readahead: the client keeps up to
    /// `HareConfig::readahead_window` stripe fetches in flight ahead of a
    /// sequential reader. When off, striped reads fetch one stripe at a
    /// time (still parallel across a multi-stripe read call). Inert
    /// without `striping`.
    pub readahead: bool,
}

impl Default for Techniques {
    /// All techniques enabled (the paper's normal configuration).
    fn default() -> Self {
        Techniques {
            distribution: true,
            broadcast: true,
            direct_access: true,
            dircache: true,
            affinity: true,
            coalesced_open: true,
            neg_dircache: true,
            coalesced_stat: true,
            batching: true,
            chained_resolution: true,
            fused_terminal: true,
            rebalancing: true,
            replication: true,
            striping: true,
            readahead: true,
        }
    }
}

impl Techniques {
    /// Returns the default set with one named technique disabled; used by
    /// the Figure 9–14 ablation harness.
    pub fn without(name: &str) -> Techniques {
        let mut t = Techniques::default();
        match name {
            "distribution" => t.distribution = false,
            "broadcast" => t.broadcast = false,
            "direct_access" => t.direct_access = false,
            "dircache" => {
                // The negative cache lives inside the directory cache.
                t.dircache = false;
                t.neg_dircache = false;
            }
            "affinity" => t.affinity = false,
            "coalesced_open" => t.coalesced_open = false,
            "neg_dircache" => t.neg_dircache = false,
            "coalesced_stat" => t.coalesced_stat = false,
            "batching" => t.batching = false,
            "chained_resolution" => t.chained_resolution = false,
            "fused_terminal" => t.fused_terminal = false,
            "rebalancing" => t.rebalancing = false,
            "replication" => t.replication = false,
            "striping" => t.striping = false,
            "readahead" => t.readahead = false,
            other => panic!("unknown technique {other:?}"),
        }
        t
    }
}

/// Placement policy for remote execution (paper §3.5: "our prototype
/// supports both a random and a round-robin policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniformly random core.
    Random,
    /// Round-robin over cores, with the cursor propagated from parent to
    /// child.
    RoundRobin,
}

/// Full configuration of one simulated Hare machine.
#[derive(Debug, Clone)]
pub struct HareConfig {
    /// Total cores in the machine.
    pub ncores: usize,
    /// Cores that run a file server (one server per listed core).
    pub server_cores: Vec<usize>,
    /// Cores available to application processes.
    pub app_cores: Vec<usize>,
    /// NUMA layout.
    pub topology: Topology,
    /// Cost model for virtual-time accounting.
    pub cost: CostModel,
    /// Buffer-cache size in blocks, divided evenly among servers
    /// (2 GB in the paper's setup; scaled down here).
    pub dram_blocks: usize,
    /// Per-core private cache capacity in blocks.
    pub cache_blocks: usize,
    /// Whether directories are distributed when the application does not
    /// say (applications pass [`fsapi::MkdirOpts`] to choose per directory).
    pub default_distributed: bool,
    /// The root directory's distribution flag.
    pub root_distributed: bool,
    /// Technique toggles.
    pub techniques: Techniques,
    /// Remote-execution placement policy.
    pub placement: Placement,
    /// Pipe capacity in bytes (Linux default 64 KiB).
    pub pipe_capacity: usize,
    /// Per-client directory-cache capacity in entries (positive and
    /// negative slots combined); oldest entries are evicted beyond this,
    /// so adversarial probe streams cannot grow the cache without bound.
    pub dircache_capacity: usize,
    /// Per-server capacity of the `(dir, name)` client-tracking table
    /// (hits and misses alike). Evicting a slot invalidates its tracked
    /// clients first, so bounding this state never leaves a stale cache.
    pub server_track_capacity: usize,
    /// Load-aware remote-execution placement: when on, the round-robin
    /// exec policy prefers the application core whose co-located file
    /// server has served the fewest operations (ties rotate through the
    /// round-robin cursor), instead of blindly cycling. Off by default —
    /// the paper's §3.5 policies are load-blind.
    pub load_aware_exec: bool,
    /// Stripe unit of the striped data plane in bytes (a multiple of the
    /// block size). Only meaningful with `techniques.striping` and
    /// `stripe_width ≥ 2`.
    pub stripe_unit: u64,
    /// How many servers a file's stripe I/O is spread over (clamped to
    /// the machine's server count). The default 1 keeps the paper's
    /// all-blocks-home layout — the striping toggle is then inert and
    /// every exchange count is byte-for-byte the seed's.
    pub stripe_width: usize,
    /// How many stripe fetches the readahead pipeline keeps in flight
    /// ahead of a sequential reader (with `techniques.readahead`).
    pub readahead_window: usize,
    /// How many servers a *distributed* directory's dentries are spread
    /// over (clamped to the machine's server count; `0` means every
    /// server). The default 0 keeps the paper's `hash % NSERVERS` routing
    /// byte-for-byte. A narrower width bounds every per-directory fan-out
    /// — readdir's `ListShard` sweep, rmdir's mark/commit rounds, the
    /// redirect retry budgets — at O(owned shards) instead of O(servers
    /// on the machine), which is what keeps a 4-shard directory equally
    /// cheap to list on an 8-core and a 256-core machine.
    pub dir_shard_width: usize,
    /// Upper bound on the entries one `ListShard` reply (or fused `List`
    /// terminal) may carry. Listings of larger shards return a
    /// continuation cursor and the client pages through lexicographically;
    /// one giant directory can therefore never materialize in a single
    /// server arena. Small directories (every pre-existing benchmark and
    /// test) fit one page, so exchange counts are unchanged.
    pub list_page_max: usize,
    /// Per-operation causal tracing ([`crate::otrace`]). Off by default:
    /// the disabled tracer is a no-op at every instrumentation point and
    /// no span context travels, so the system is byte-for-byte the
    /// untraced one (sends-parity pinned). On, every client operation
    /// records a span tree attributing each message send to its cause.
    pub trace_ops: bool,
}

impl HareConfig {
    /// The paper's *timeshare* configuration: a file server and application
    /// processes on every core (§5.3.2, used for the headline scalability
    /// results).
    pub fn timeshare(ncores: usize) -> Self {
        let all: Vec<usize> = (0..ncores).collect();
        HareConfig {
            ncores,
            server_cores: all.clone(),
            app_cores: all,
            topology: Topology::with_cores(ncores),
            cost: CostModel::default(),
            // Scaled-down buffer cache (the paper uses 2 GB): 8 MiB per
            // server keeps per-partition headroom at every machine size.
            dram_blocks: 2048 * ncores,
            cache_blocks: 256, // 1 MiB private cache
            default_distributed: false,
            root_distributed: true,
            techniques: Techniques::default(),
            placement: Placement::RoundRobin,
            pipe_capacity: 64 * 1024,
            dircache_capacity: 4096,
            server_track_capacity: 8192,
            load_aware_exec: false,
            stripe_unit: 64 * 1024,
            stripe_width: 1,
            readahead_window: 4,
            dir_shard_width: 0,
            list_page_max: 4096,
            trace_ops: false,
        }
    }

    /// The paper's *split* configuration: `nserver` dedicated server cores,
    /// the rest running applications (§5.3.2, Figure 7).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < nservers < ncores`.
    pub fn split(ncores: usize, nservers: usize) -> Self {
        assert!(nservers > 0 && nservers < ncores);
        let mut cfg = HareConfig::timeshare(ncores);
        cfg.server_cores = (0..nservers).collect();
        cfg.app_cores = (nservers..ncores).collect();
        cfg
    }

    /// Number of file servers (`NSERVERS` in the paper's hash function).
    pub fn nservers(&self) -> usize {
        self.server_cores.len()
    }

    /// True when some core hosts both a server and applications.
    pub fn is_timeshare(&self) -> bool {
        self.server_cores.iter().any(|c| self.app_cores.contains(c))
    }

    /// The effective shard width for distributed directories:
    /// `dir_shard_width` normalized against the server count. `0` (the
    /// default) and any width at or above the server count both mean
    /// "every server" — the paper's spread, with routing byte-for-byte
    /// the seed's `hash % NSERVERS`.
    pub fn effective_dir_shard_width(&self) -> usize {
        if self.dir_shard_width == 0 || self.dir_shard_width > self.nservers() {
            self.nservers()
        } else {
            self.dir_shard_width
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeshare_layout() {
        let c = HareConfig::timeshare(8);
        assert_eq!(c.nservers(), 8);
        assert_eq!(c.app_cores.len(), 8);
        assert!(c.is_timeshare());
    }

    #[test]
    fn split_layout() {
        let c = HareConfig::split(40, 20);
        assert_eq!(c.nservers(), 20);
        assert_eq!(c.app_cores, (20..40).collect::<Vec<_>>());
        assert!(!c.is_timeshare());
    }

    #[test]
    #[should_panic]
    fn split_needs_app_cores() {
        HareConfig::split(4, 4);
    }

    #[test]
    fn technique_toggles() {
        let t = Techniques::without("broadcast");
        assert!(!t.broadcast);
        assert!(t.distribution && t.direct_access && t.dircache && t.affinity);
        assert!(t.coalesced_open && t.neg_dircache);
    }

    #[test]
    fn new_technique_toggles() {
        let t = Techniques::without("coalesced_open");
        assert!(!t.coalesced_open && t.neg_dircache && t.dircache);
        let t = Techniques::without("neg_dircache");
        assert!(!t.neg_dircache && t.coalesced_open && t.dircache);
        // Disabling the directory cache disables the negative cache too.
        let t = Techniques::without("dircache");
        assert!(!t.dircache && !t.neg_dircache);
        let t = Techniques::without("coalesced_stat");
        assert!(!t.coalesced_stat && t.coalesced_open && t.batching);
        let t = Techniques::without("batching");
        assert!(!t.batching && t.coalesced_stat && t.broadcast);
        let t = Techniques::without("chained_resolution");
        assert!(!t.chained_resolution && t.batching && t.dircache);
        // fused_terminal stays on (it is simply inert without chaining).
        assert!(t.fused_terminal);
        let t = Techniques::without("fused_terminal");
        assert!(!t.fused_terminal && t.chained_resolution && t.coalesced_stat);
        let t = Techniques::without("rebalancing");
        assert!(!t.rebalancing && t.chained_resolution && t.fused_terminal);
        let t = Techniques::without("striping");
        assert!(!t.striping && t.readahead && t.direct_access && t.batching);
        // readahead without striping is inert, not invalid.
        let t = Techniques::without("readahead");
        assert!(!t.readahead && t.striping && t.chained_resolution);
    }

    #[test]
    fn default_stripe_knobs_are_the_paper_layout() {
        let c = HareConfig::timeshare(8);
        assert_eq!(c.stripe_width, 1, "default layout is all-blocks-home");
        assert_eq!(c.stripe_unit % 4096, 0, "stripe unit is block-aligned");
        assert!(c.readahead_window >= 1);
    }

    #[test]
    #[should_panic]
    fn unknown_technique_rejected() {
        Techniques::without("bogus");
    }
}
