//! A running Hare machine: file servers spawned, clients mintable.

use crate::client::{ClientLib, ClientParams};
use crate::config::HareConfig;
use crate::machine::Machine;
use crate::proto::{Request, ServerMsg};
use crate::rpc::ServerHandle;
use crate::server::{Server, ServerParams};
use crate::types::ServerId;
use fsapi::FsResult;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A booted Hare instance: one file server thread per configured server
/// core, sharing one simulated [`Machine`].
pub struct HareInstance {
    machine: Arc<Machine>,
    cfg: HareConfig,
    servers: Arc<Vec<ServerHandle>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_client: AtomicU64,
}

impl HareInstance {
    /// Boots the instance: builds the machine, partitions the buffer cache
    /// among servers, and starts one server thread per server core.
    pub fn start(cfg: HareConfig) -> Arc<HareInstance> {
        let machine = Machine::new(&cfg);
        let nservers = cfg.nservers();
        assert!(nservers > 0, "need at least one file server");
        let per_server = cfg.dram_blocks / nservers;
        assert!(per_server > 0, "buffer cache too small for server count");

        // Every server holds handles to all of its peers (for forwarding
        // chained LookupPath remainders), so the channels are created
        // up-front and the server threads spawned in a second pass.
        let mut handles = Vec::with_capacity(nservers);
        let mut rxs = Vec::with_capacity(nservers);
        for (i, &core) in cfg.server_cores.iter().enumerate() {
            let (tx, rx) = msg::channel::<ServerMsg>(Arc::clone(&machine.msg_stats));
            machine.register_entity(core);
            handles.push(ServerHandle {
                id: i as ServerId,
                core,
                tx,
            });
            rxs.push(rx);
        }
        let handles = Arc::new(handles);
        let mut threads = Vec::with_capacity(nservers);
        for (i, rx) in rxs.into_iter().enumerate() {
            let server = Server::new(
                Arc::clone(&machine),
                ServerParams {
                    id: i as ServerId,
                    core: cfg.server_cores[i],
                    partition_start: i * per_server,
                    partition_len: per_server,
                    root_distributed: cfg.root_distributed && cfg.techniques.distribution,
                    pipe_capacity: cfg.pipe_capacity,
                    // Normalized: negative caching is meaningless (and
                    // would leak invalidations) without the dircache.
                    neg_dircache: cfg.techniques.neg_dircache && cfg.techniques.dircache,
                    track_capacity: cfg.server_track_capacity,
                    peers: Arc::clone(&handles),
                    distribution: cfg.techniques.distribution,
                    stripe_unit: cfg.stripe_unit,
                    // Normalized like neg_dircache: the toggle off (or an
                    // un-widened config) is width 1, the paper's layout.
                    stripe_width: if cfg.techniques.striping {
                        cfg.stripe_width
                    } else {
                        1
                    },
                    dir_shard_width: cfg.effective_dir_shard_width(),
                    list_page_max: cfg.list_page_max,
                },
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("hare-fs-{i}"))
                    .spawn(move || server.run(rx))
                    .expect("spawn server thread"),
            );
        }
        Arc::new(HareInstance {
            machine,
            cfg,
            servers: handles,
            threads: Mutex::new(threads),
            next_client: AtomicU64::new(1),
        })
    }

    /// The shared machine (clocks, DRAM, caches).
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The instance configuration.
    pub fn config(&self) -> &HareConfig {
        &self.cfg
    }

    /// Server handles (for diagnostics).
    pub fn servers(&self) -> &Arc<Vec<ServerHandle>> {
        &self.servers
    }

    /// Creates a client library for a new process on `core`.
    pub fn new_client(&self, core: usize) -> FsResult<ClientLib> {
        self.new_client_at(core, 0)
    }

    /// Creates a client library whose logical timeline begins at `start`
    /// (the spawn completion time computed by the scheduling server).
    pub fn new_client_at(&self, core: usize, start: u64) -> FsResult<ClientLib> {
        assert!(
            self.cfg.app_cores.contains(&core),
            "core {core} is not an application core"
        );
        let id = self.next_client.fetch_add(1, Ordering::SeqCst);
        ClientLib::new(
            Arc::clone(&self.machine),
            Arc::clone(&self.servers),
            ClientParams {
                id,
                core,
                start_time: start,
                techniques: self.cfg.techniques,
                default_distributed: self.cfg.default_distributed,
                root_distributed: self.cfg.root_distributed && self.cfg.techniques.distribution,
                dircache_capacity: self.cfg.dircache_capacity,
                readahead_window: if self.cfg.techniques.readahead {
                    self.cfg.readahead_window.max(1)
                } else {
                    1
                },
                dir_shard_width: self.cfg.effective_dir_shard_width(),
                list_page_max: self.cfg.list_page_max,
            },
        )
    }

    /// Stops all server threads. Idempotent; also run on drop.
    pub fn shutdown(&self) {
        let mut threads = self.threads.lock();
        if threads.is_empty() {
            return;
        }
        for s in self.servers.iter() {
            let (tx, _rx) = msg::channel(Arc::clone(&self.machine.msg_stats));
            let _ = s.tx.send(
                ServerMsg {
                    req: Request::Shutdown,
                    reply: tx,
                    span: None,
                },
                u64::MAX,
                0,
            );
        }
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HareInstance {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_and_shuts_down() {
        let inst = HareInstance::start(HareConfig::timeshare(4));
        assert_eq!(inst.servers().len(), 4);
        inst.shutdown();
        // Idempotent.
        inst.shutdown();
    }

    #[test]
    fn client_creation_registers() {
        let inst = HareInstance::start(HareConfig::timeshare(2));
        let c = inst.new_client(0).unwrap();
        assert_eq!(c.core(), 0);
        assert_eq!(c.nservers(), 2);
        drop(c);
        inst.shutdown();
    }

    #[test]
    #[should_panic]
    fn client_on_server_only_core_rejected() {
        let inst = HareInstance::start(HareConfig::split(4, 2));
        let _ = inst.new_client(0); // core 0 is a dedicated server core
    }
}
