//! Seq-tagged bounded-FIFO eviction, shared by the client directory cache
//! and the server dentry-tracking table.
//!
//! Both caches bound an open-ended map of `(dir, name)`-keyed slots with
//! oldest-first eviction, and both face the same subtle hazard: a slot can
//! be removed out-of-band (an invalidation, a tombstone, a consumed
//! tracking list) and later *recreated* under the same key. A naive
//! eviction queue would then let the stale queue entry left behind by the
//! first incarnation evict the younger recreation — silently dropping a
//! fresh slot (or, server-side, firing a spurious invalidation at a client
//! that just cached the entry).
//!
//! The invariant lives here, in one place: every admitted slot gets a
//! **birth sequence number** which the owner stores inside the slot, and a
//! queue entry only ever evicts the slot whose sequence it recorded. A
//! mismatch means the key is stale (removed, or removed-and-recreated) and
//! the queue entry is simply discarded. Because stale keys accumulate
//! under churn, [`SeqFifo::maintain`] rebuilds the queue from the live
//! slots once stale keys dominate, keeping the queue length proportional
//! to the cache rather than to its history.
//!
//! The helper owns only the *order*; the slots themselves stay in the
//! caller's maps (the two users index them differently), which is why the
//! API works through a `seq_of` probe instead of storing values.

use std::collections::VecDeque;

/// The eviction index: insertion order over `(key, birth sequence)` pairs.
#[derive(Debug)]
pub struct SeqFifo<K> {
    order: VecDeque<(K, u64)>,
    next_seq: u64,
    capacity: usize,
}

impl<K> SeqFifo<K> {
    /// An empty index for a cache holding at most `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded cache needs at least one slot");
        SeqFifo {
            order: VecDeque::new(),
            next_seq: 0,
            capacity,
        }
    }

    /// The configured slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a freshly created slot, returning the birth sequence the
    /// caller must store in it (it ties the slot to its queue entry).
    pub fn admit(&mut self, key: K) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.push_back((key, seq));
        seq
    }

    /// Pops the oldest *live* slot's key for eviction, where `seq_of`
    /// reports the live slot's stored sequence for a key (`None` if the
    /// slot is gone). Stale queue entries — whose recorded sequence no
    /// longer matches — are discarded along the way; they must never evict
    /// a recreation. Returns `None` when the queue is exhausted.
    ///
    /// The caller removes the slot itself (and delivers whatever
    /// notifications its eviction contract requires), typically in a loop
    /// while its live count exceeds [`SeqFifo::capacity`].
    pub fn pop_evictable(&mut self, mut seq_of: impl FnMut(&K) -> Option<u64>) -> Option<K> {
        while let Some((key, seq)) = self.order.pop_front() {
            if seq_of(&key) == Some(seq) {
                return Some(key);
            }
        }
        None
    }

    /// Lazy-deletion hygiene: once stale keys dominate the queue (more
    /// than twice the capacity), rebuild it from the live slots.
    pub fn maintain(&mut self, mut seq_of: impl FnMut(&K) -> Option<u64>) {
        if self.order.len() > 2 * self.capacity.max(16) {
            self.order.retain(|(key, seq)| seq_of(key) == Some(*seq));
        }
    }

    /// Number of queue entries, live and stale (diagnostics/tests).
    pub fn queue_len(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A minimal owner: a map of `name -> seq` slots bounded by the fifo.
    struct Toy {
        slots: HashMap<String, u64>,
        fifo: SeqFifo<String>,
    }

    impl Toy {
        fn new(capacity: usize) -> Self {
            Toy {
                slots: HashMap::new(),
                fifo: SeqFifo::new(capacity),
            }
        }

        fn insert(&mut self, name: &str) {
            if self.slots.contains_key(name) {
                return; // overwrites keep their age, like both real users
            }
            let seq = self.fifo.admit(name.to_string());
            self.slots.insert(name.to_string(), seq);
            while self.slots.len() > self.fifo.capacity() {
                let slots = &self.slots;
                let Some(victim) = self.fifo.pop_evictable(|k| slots.get(k).copied()) else {
                    break;
                };
                self.slots.remove(&victim);
            }
            let slots = &self.slots;
            self.fifo.maintain(|k| slots.get(k).copied());
        }

        fn remove(&mut self, name: &str) {
            self.slots.remove(name);
        }
    }

    #[test]
    fn evicts_oldest_first() {
        let mut t = Toy::new(2);
        t.insert("a");
        t.insert("b");
        t.insert("c");
        assert!(!t.slots.contains_key("a"));
        assert!(t.slots.contains_key("b") && t.slots.contains_key("c"));
    }

    #[test]
    fn stale_key_never_evicts_recreation() {
        let mut t = Toy::new(2);
        t.insert("a");
        t.insert("b");
        t.remove("a"); // out-of-band removal (invalidation)
        t.insert("a"); // recreation: youngest slot
        t.insert("c"); // overflow: must evict "b", not the recreated "a"
        assert!(t.slots.contains_key("a"), "recreation evicted by stale key");
        assert!(!t.slots.contains_key("b"));
        assert!(t.slots.contains_key("c"));
    }

    #[test]
    fn queue_stays_proportional_under_churn() {
        let mut t = Toy::new(4);
        for i in 0..10_000 {
            let name = format!("n{i}");
            t.insert(&name);
            if i % 2 == 0 {
                t.remove(&name);
            }
        }
        assert!(t.slots.len() <= 4);
        assert!(
            t.fifo.queue_len() <= 2 * 16 + 1,
            "stale keys must be pruned, queue is {}",
            t.fifo.queue_len()
        );
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        SeqFifo::<u32>::new(0);
    }
}
