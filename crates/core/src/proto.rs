//! The Hare wire protocol between client libraries and file servers.
//!
//! Every request is handled by exactly one server; operations that span
//! servers (create with affinity, rename, distributed `rmdir`) are composed
//! by the client library from these primitives, never by server-to-server
//! RPC — "Hare avoids server-to-server RPCs, which simplifies reasoning
//! about possible deadlock scenarios" (paper §3.3).
//!
//! Several requests are *coalesced* forms: [`Request::Create`] performs
//! inode creation, directory-entry insertion, and descriptor open in one
//! message when the dentry and inode land on the same server
//! (message coalescing, paper §3.6.3). [`Request::LookupOpen`] extends the
//! same idea to the open-existing path: it resolves the final pathname
//! component at the dentry shard and, when the target inode happens to live
//! on that same server (the common case under creation affinity §3.6.4),
//! opens a descriptor in the same round trip. The reply always carries the
//! lookup result; `open` is `None` when the inode is remote (the client
//! falls back to a separate [`Request::OpenInode`]) or the target is not a
//! regular file.
//!
//! Bulk payloads ([`Request::WriteData`], [`Request::PipeWrite`],
//! [`Reply::Data`]) travel as `Arc<[u8]>` so the msg layer, parked pipe
//! operations, and reply clones share one buffer instead of copying it at
//! every hop.
//!
//! [`Request::Batch`] is the *batched transport*: several independent
//! requests destined for the same server travel as one message and are
//! executed in order, paying one message overhead (receive, reply send,
//! context switch) for the whole group instead of per request. This is the
//! message-aggregation idea of the multikernel literature applied to Hare's
//! client/server RPCs; the client-side grouping lives in `client/batch.rs`.
//!
//! [`Request::LookupPath`] is the one deliberate exception to the paper's
//! no-server-to-server-RPC rule (§3.3): it is a *forwardable* request. A
//! dentry server resolves as many consecutive path components as it owns
//! and, when the next component's shard is a different server, forwards the
//! remainder — carrying the original reply channel as a continuation — so
//! the final server answers the client directly. A cold deep-path
//! resolution costs one message per *run* of co-located components plus one
//! reply, instead of one round trip per component. The exception stays
//! deadlock-free because the chain is strictly feed-forward (no server ever
//! waits on another server's reply; each hop is a plain `send` and the
//! reply channel travels with the request) and bounded by an explicit hop
//! budget (`ELOOP` beyond it).
//!
//! A chain may additionally carry a [`TerminalOp`]: the operation the walk
//! was *for* (the final component's coalesced stat/open, or the first
//! shard of a `readdir` listing). The server that resolves the last
//! component executes it — strictly locally, against its own inode shard —
//! and returns the result in the same [`Reply::Path`], so a cold deep
//! `stat` or `open` whose shards align is **one end-to-end exchange**. When
//! the terminal inode lives elsewhere the server answers the resolved
//! dentry alone (`term: None`) and the client completes with the ordinary
//! follow-up RPC; the terminal op never adds a forward, so the feed-forward
//! deadlock argument is untouched.

use crate::types::{ClientId, FdId, InodeId, ServerId};
use fsapi::{DirEntry, Errno, FileType, Mode, OpenFlags, Stat, Whence};
use std::sync::Arc;

// Placement note: every request below that names a `(dir, name)` entry (or
// a whole directory's shard) is routed by the epoch-versioned routing
// table (`crate::placement`), which defaults to the paper's hash. A server
// that receives an entry operation for a directory whose shard migrated
// away answers [`Reply::NotOwner`] instead of executing it; the migration
// protocol itself is the `Migrate*` quartet below, composed by the client
// like every other multi-server protocol (still no server-to-server RPC
// beyond the feed-forward chain forwarding).

/// A directory-cache invalidation callback, sent by a server to every client
/// that has `(dir, name)` cached (paper §3.6.1). Thanks to atomic message
/// delivery the server proceeds as soon as `send()` returns.
#[derive(Debug, Clone)]
pub struct Invalidation {
    /// Directory whose entry changed.
    pub dir: InodeId,
    /// The entry name.
    pub name: String,
}

/// One resolved component of a chained [`Request::LookupPath`] walk:
/// everything a [`Reply::Lookup`] would have carried for that component.
/// The client reconstructs `(dir, name)` keys from its own component list,
/// so entries only need the values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// The inode the component resolves to.
    pub target: InodeId,
    /// Its type.
    pub ftype: FileType,
    /// Distribution flag for directory targets.
    pub dist: bool,
    /// True when a read **replica** copy (not the owning shard) served
    /// this component. The client must not cache such an entry: replicas
    /// keep no tracking lists, so nothing would ever invalidate it.
    pub replica: bool,
}

/// The operation fused into the tail of a chained [`Request::LookupPath`]
/// walk (the `fused_terminal` technique): what the client actually wanted
/// the resolution *for*. The server that resolves the final component
/// executes it locally when it can and returns a [`TerminalReply`] in the
/// same [`Reply::Path`]; otherwise it answers the resolved dentry alone
/// and the client falls back to the ordinary follow-up RPC. Execution is
/// strictly local — a terminal op never forwards to a peer — so the
/// chain's feed-forward no-deadlock argument is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminalOp {
    /// Pure resolution; the walk has no fused tail.
    None,
    /// `stat` of the final component (the chained form of
    /// [`Request::LookupStat`]): answered when the target inode lives on
    /// the final server.
    Stat,
    /// `open` of the final component (the chained form of
    /// [`Request::LookupOpen`]): answered when the target is a regular
    /// file whose inode lives on the final server.
    Open {
        /// Open flags for the coalesced open (handles `O_TRUNC`).
        flags: OpenFlags,
    },
    /// `open(O_CREAT)` of the final component: like [`TerminalOp::Open`]
    /// when the name exists, but a *missing* final component is created —
    /// inode, directory entry, and descriptor in one coalesced step, the
    /// chained form of [`Request::Create`] with `add_map` + `open` — so a
    /// cold create-open whose shards align is one end-to-end exchange. The
    /// final server is by construction the dentry shard owner; creation is
    /// answered only when the placement policy would also put the inode
    /// there (otherwise the walk reports `ENOENT` as usual and the client
    /// runs the ordinary affinity-placed create). Never used for
    /// `O_CREAT|O_EXCL`, whose probe-elision path answers the existence
    /// question through a plain create.
    Create {
        /// Open flags for the coalesced open.
        flags: OpenFlags,
        /// Permission bits for the created file.
        mode: Mode,
    },
    /// The final server's shard of the target directory's listing (the
    /// chained head of a `readdir` fan-out): the client then only fans
    /// [`Request::ListShard`] to the *other* servers. With `plus`, the
    /// server additionally stats every listed entry whose inode it stores
    /// (the `readdir_plus` / `ls -l` fusion), so those entries need no
    /// follow-up `StatInode`.
    List {
        /// Fuse per-entry stats for locally stored inodes into the reply.
        plus: bool,
    },
}

/// A fused terminal result, carried in [`Reply::Path::term`].
#[derive(Debug, Clone)]
pub enum TerminalReply {
    /// The coalesced stat.
    Stat(Stat),
    /// The coalesced open.
    Open(OpenResult),
    /// The coalesced create+open of a previously missing final component
    /// (answering [`TerminalOp::Create`]); the created file's dentry is
    /// also appended to the reply's `entries`, so the client caches it
    /// like any resolved component.
    Created {
        /// The new inode.
        ino: InodeId,
        /// The open descriptor.
        open: OpenResult,
    },
    /// One server's shard of the target directory listing, tagged with the
    /// answering server so the client can skip it in the fan-out. Bounded
    /// like a standalone [`Request::ListShard`] page: a shard larger than
    /// the server's page limit returns its first page plus a continuation
    /// cursor, and the client pages through the rest with ordinary
    /// `ListShard` requests at the same server.
    List {
        /// The server whose shard `entries` is.
        server: ServerId,
        /// The first page of entries stored at that server.
        entries: Vec<DirEntry>,
        /// With [`TerminalOp::List::plus`]: one slot per entry, `Some`
        /// when the entry's inode is stored on the answering server (its
        /// stat rides the chain). Empty without `plus`.
        stats: Vec<Option<Stat>>,
        /// Continuation cursor when the shard exceeded one page.
        next: Option<String>,
    },
}

/// One directory entry in flight during a shard migration (the payload of
/// [`Request::MigrateInstall`], snapshotted by [`Reply::MigrateSnapshot`]).
#[derive(Debug, Clone)]
pub struct MigEntry {
    /// Entry name.
    pub name: String,
    /// The inode the entry points at.
    pub target: InodeId,
    /// Target type.
    pub ftype: FileType,
    /// Distribution flag for directory targets.
    pub dist: bool,
}

/// Result of the mark phase of the three-phase `rmdir` protocol (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkResult {
    /// This server holds no entries of the directory; it is now marked.
    Marked,
    /// This server still holds entries; the directory cannot be removed.
    NotEmpty,
}

/// A request from a client library to one file server.
#[derive(Debug)]
pub enum Request {
    /// Introduces a client and its invalidation queue to the server.
    Register {
        /// The registering client.
        client: ClientId,
        /// Core the client runs on (for invalidation delivery latency).
        core: usize,
        /// Channel on which the server delivers [`Invalidation`]s.
        inval: msg::Sender<Invalidation>,
    },
    /// Removes a client's registration and cache-tracking state (sent at
    /// process exit).
    Unregister {
        /// The departing client.
        client: ClientId,
    },

    // ----- Directory entries (this server is the shard for (dir, name)) --
    /// `lookup(dir, name) -> (server, inode)` (paper §3.6.1). The server
    /// records the client in the entry's tracking list for future
    /// invalidations.
    Lookup {
        /// Requesting client (tracked for invalidation).
        client: ClientId,
        /// Parent directory inode.
        dir: InodeId,
        /// Entry name.
        name: String,
    },
    /// Inserts a directory entry (the paper's ADD_MAP). With `replace`,
    /// atomically replaces an existing non-directory target (rename).
    AddMap {
        /// Mutating client (skipped when broadcasting invalidations).
        client: ClientId,
        /// Parent directory inode.
        dir: InodeId,
        /// New entry name.
        name: String,
        /// Inode the entry points at.
        target: InodeId,
        /// Type of the target (stored in the entry so `readdir` and
        /// resolution need not contact the inode server).
        ftype: FileType,
        /// For directory targets: the directory's distribution flag.
        dist: bool,
        /// Replace an existing entry (rename semantics) instead of failing
        /// with `EEXIST`.
        replace: bool,
    },
    /// Removes a directory entry (the paper's RM_MAP), returning the target
    /// so the client can decrement its link count.
    RmMap {
        /// Mutating client.
        client: ClientId,
        /// Parent directory inode.
        dir: InodeId,
        /// Entry name.
        name: String,
        /// `unlink` sets this so directories are rejected with `EISDIR`;
        /// `rmdir`/`rename` cleanup clears it.
        must_be_file: bool,
    },
    /// Coalesced `lookup` + `open` of the final pathname component
    /// (extends §3.6.3 message coalescing to the open-existing path). The
    /// server resolves `(dir, name)` and, when the target is a regular file
    /// whose inode it also stores, opens a descriptor in the same message.
    /// Misses are tracked like [`Request::Lookup`] so negative cache
    /// entries receive invalidations.
    LookupOpen {
        /// Requesting client (tracked for invalidation).
        client: ClientId,
        /// Parent directory inode.
        dir: InodeId,
        /// Entry name.
        name: String,
        /// Open flags for the coalesced open (handles `O_TRUNC`).
        flags: OpenFlags,
    },
    /// Coalesced `lookup` + `stat` of the final pathname component (the
    /// `stat` sibling of [`Request::LookupOpen`]). The server resolves
    /// `(dir, name)` and, when the target inode also lives here, returns
    /// its metadata in the same round trip. Misses are tracked like
    /// [`Request::Lookup`] so negative cache entries receive invalidations.
    LookupStat {
        /// Requesting client (tracked for invalidation).
        client: ClientId,
        /// Parent directory inode.
        dir: InodeId,
        /// Entry name.
        name: String,
    },
    /// Lists this server's shard of a directory (`readdir` fan-out,
    /// paper §3.6.2), one bounded page at a time.
    ///
    /// Pages walk the shard in lexicographic name order: `after: None`
    /// starts at the beginning, and a [`Reply::Shard`] whose `next` is
    /// `Some(name)` is continued by re-asking with `after: Some(name)`.
    /// The cursor is a *name*, not an index, so entries created or
    /// removed between pages never shift the window — an entry alive for
    /// the whole listing appears exactly once. Directories small enough
    /// for one page (`next: None` on the first reply) cost exactly the
    /// seed's single exchange.
    ListShard {
        /// Directory inode.
        dir: InodeId,
        /// Resume strictly after this name (`None` = from the start).
        after: Option<String>,
        /// Client-requested page bound; `0` leaves the server's
        /// configured [`list_page_max`](crate::config::HareConfig::list_page_max)
        /// as the only bound (the server clamps to it either way, so a
        /// greedy client cannot blow the arena).
        max: u32,
    },

    /// Chained multi-component resolution (server-side `LookupPath`
    /// forwarding; see the module docs). The receiving server resolves
    /// consecutive components of `comps` starting in `dir` for as long as
    /// it owns their shard, then either replies [`Reply::Path`] to the
    /// client or forwards the remainder (with the resolved prefix
    /// accumulated in `acc`) to the next component's owner. Every resolved
    /// component is tracked for invalidation exactly like
    /// [`Request::Lookup`], misses included, so the client may cache the
    /// whole prefix.
    LookupPath {
        /// Requesting client (tracked for invalidation at every hop).
        client: ClientId,
        /// Directory the first component of `comps` is resolved in.
        dir: InodeId,
        /// Effective distribution flag of `dir` (routing).
        dist: bool,
        /// The remaining pathname components.
        comps: Vec<String>,
        /// Components already resolved by earlier servers in the chain, in
        /// path order; the final reply carries `acc` + the local results.
        /// (Forwards preserve the envelope's `src_core`, so the final
        /// server computes the reply latency to the originating client,
        /// not to the previous hop.)
        acc: Vec<PathEntry>,
        /// Forwards taken so far. Every legitimate hop lands at the owner
        /// of its first remaining component and therefore resolves at
        /// least one, so the hop budget (components + a small slack for
        /// mis-routed requests) bounds any chain; beyond it the server
        /// answers `ELOOP` instead of forwarding again.
        hops: u32,
        /// The fused terminal operation, executed by the server resolving
        /// the last component of `comps` (see [`TerminalOp`]).
        terminal: TerminalOp,
    },

    /// The batched transport: independent requests for this server shipped
    /// as one message and executed in order. The server pays one message
    /// overhead for the group plus each entry's normal service cost, and
    /// answers with [`Reply::Batch`] carrying one reply per entry.
    ///
    /// Entries must reply inline: requests that can park their reply
    /// ([`Request::PipeRead`], [`Request::PipeWrite`],
    /// [`Request::RmdirSerialize`]), nested batches, and registration
    /// messages are rejected with `EINVAL`.
    Batch {
        /// The entries, executed in order.
        reqs: Vec<Request>,
        /// With `fail_fast`, entries after the first failing one are
        /// skipped and answered `EAGAIN` (used for ordered pairs like
        /// rename's ADD_MAP + RM_MAP where the second half must not run
        /// when the first failed).
        fail_fast: bool,
    },

    // ----- Live shard migration (the dynamic placement subsystem) --------
    /// Phase 1 at the **source** (current owner): marks `dir`'s shard
    /// *migrating* — operations on the directory park exactly like behind
    /// an rmdir deletion mark — and returns a snapshot of its entries plus
    /// the directory's current placement epoch. The shard cannot change
    /// under the copy: the server is single-threaded and every later
    /// operation parks until COMMIT or ABORT.
    MigrateBegin {
        /// Directory whose shard is migrating.
        dir: InodeId,
    },
    /// Phase 2 at the **destination**: installs the snapshotted entries
    /// and the override `dir → self @ epoch` in the destination's routing
    /// table. After this the destination answers for the directory; no
    /// client routes here until the source starts redirecting, so the data
    /// is always in place before the first redirect.
    MigrateInstall {
        /// Directory whose shard is migrating.
        dir: InodeId,
        /// The migration's epoch (source's epoch + 1).
        epoch: u64,
        /// The snapshotted entries.
        entries: Vec<MigEntry>,
    },
    /// Phase 3 at the **source**: drops the migrated entries, records the
    /// redirect `dir → to @ epoch`, queues invalidations to every client
    /// tracked for the directory (through the existing per-entry tracking
    /// lists — stale caches re-resolve and pick up the redirect), and
    /// replays the operations parked since BEGIN (they now answer
    /// [`Reply::NotOwner`], so nothing in flight is ever failed).
    MigrateCommit {
        /// Directory whose shard migrated.
        dir: InodeId,
        /// The migration's epoch.
        epoch: u64,
        /// The new owner.
        to: ServerId,
    },
    /// Abandons a begun migration (the install failed): clears the
    /// migrating mark and replays the parked operations against the
    /// unchanged local shard.
    MigrateAbort {
        /// Directory whose migration is abandoned.
        dir: InodeId,
    },
    /// Reads this server's load counters (total operations served and the
    /// hottest directories by entry-operation count) — the rebalancer's
    /// input. With `reset`, the counters restart from zero so successive
    /// reports cover disjoint windows.
    LoadReport {
        /// Restart the counters after reading them.
        reset: bool,
    },

    // ----- Read replication (the read-side of dynamic placement) ---------
    /// Phase 1 at the **home** (current owner) of a centralized directory:
    /// registers `replica` as a read-only copy holder, bumps the
    /// directory's placement epoch, and returns a snapshot of its entries
    /// ([`Reply::MigrateSnapshot`], reused) **without** parking or
    /// dropping anything — the home keeps serving throughout. Refused
    /// `EAGAIN` while the directory is rmdir-marked or mid-migration
    /// (inline reject, never parked — the same discipline as
    /// [`Request::MigrateInstall`]'s pinned guard), `EINVAL` for the root
    /// and for distributed directories (their entries are already spread).
    ReplicaExport {
        /// Directory to replicate.
        dir: InodeId,
        /// The server that will hold the read-only copy.
        replica: ServerId,
    },
    /// Phase 2 at the **replica**: stores the snapshotted entries as a
    /// read-only copy of `dir` (home `home`, placement epoch `epoch`).
    /// From here this server answers lookups/stats/readdir pages for the
    /// directory; every mutation reaches it as a [`Request::ReplicaInval`]
    /// from the home. Refused `ENOENT` if the directory is tombstoned
    /// here (a committed rmdir won the race).
    ReplicaInstall {
        /// The replicated directory.
        dir: InodeId,
        /// Its home server (where writes and misses go).
        home: ServerId,
        /// Placement epoch of the replica set that includes this copy.
        epoch: u64,
        /// The snapshotted entries.
        entries: Vec<MigEntry>,
    },
    /// Retires a replica. At the **home**, unregisters `replica` from the
    /// directory's read set (and bumps the epoch); at the **replica
    /// server itself**, drops the read-only copy. The home also sends
    /// this server-to-server (one-way, like a chain forward) when a
    /// structural event — rmdir mark, migration begin — must evict every
    /// copy before it can go stale.
    ReplicaDrop {
        /// The replicated directory.
        dir: InodeId,
        /// The replica being retired.
        replica: ServerId,
    },
    /// One-way invalidation from a home server to a replica carrying the
    /// entry's **new** state: `Some` upserts the copy, `None` removes it.
    /// Converging the copy to the home's state (rather than just dropping
    /// the name) means a replica never answers a stale *negative* after a
    /// create, either. Sent as a plain peer send with no reply expected;
    /// atomic delivery plus the replica's FIFO queue give the same
    /// drain-before-next-exchange soundness as the dircache callbacks.
    ReplicaInval {
        /// The replicated directory.
        dir: InodeId,
        /// The mutated entry.
        name: String,
        /// The entry's new state at the home: `(target, type, dist)`, or
        /// `None` when the mutation removed it.
        val: Option<(InodeId, FileType, bool)>,
    },

    // ----- Three-phase rmdir (paper §3.3) --------------------------------
    /// Phase 1 at the directory's home server: serialize concurrent
    /// `rmdir`s of one directory to avoid deadlock.
    RmdirSerialize {
        /// Directory being removed.
        dir: InodeId,
    },
    /// Releases the phase-1 serialization lock.
    RmdirRelease {
        /// Directory being removed.
        dir: InodeId,
    },
    /// Phase 2 (prepare) at every server: mark the directory for deletion
    /// if this shard holds no entries. While marked, operations on the
    /// directory are delayed until COMMIT or ABORT.
    RmdirMark {
        /// Directory being removed.
        dir: InodeId,
    },
    /// Phase 3a: all servers marked successfully — delete the directory.
    /// The home server also destroys the directory's inode.
    RmdirCommit {
        /// Directory being removed.
        dir: InodeId,
    },
    /// Phase 3b: some server reported entries — remove deletion marks.
    RmdirAbort {
        /// Directory being removed.
        dir: InodeId,
    },
    /// Single-message removal of a **centralized** directory: its entries
    /// all live at its home server, so emptiness check, tombstone, and inode
    /// destruction are one atomic step.
    RmdirCentral {
        /// Directory being removed.
        dir: InodeId,
    },

    // ----- Inodes and descriptors (this server stores the inode) ---------
    /// Creates an inode; optionally also inserts the directory entry (when
    /// this server is the dentry shard — message coalescing §3.6.3) and
    /// opens a descriptor (for `open(O_CREAT)`).
    Create {
        /// Creating client.
        client: ClientId,
        /// Object type.
        ftype: FileType,
        /// Permission bits.
        mode: Mode,
        /// Distribution flag when creating a directory.
        dist: bool,
        /// Coalesced ADD_MAP: insert `(dir, name) -> new inode` locally.
        add_map: Option<(InodeId, String)>,
        /// Coalesced open: also open a descriptor with these flags.
        open: Option<OpenFlags>,
    },
    /// Opens an existing inode after permission checks, returning the
    /// block list for direct buffer-cache access (paper §3.2).
    OpenInode {
        /// Opening client.
        client: ClientId,
        /// Per-server inode number (the inode lives on this server).
        num: u64,
        /// Open flags (handles `O_TRUNC`).
        flags: OpenFlags,
    },
    /// Closes one reference to a descriptor; the last close of an orphaned
    /// (unlinked) file frees its blocks (paper §3.4). `size` carries the
    /// client's final size for files it wrote (close-to-open write-back).
    CloseFd {
        /// Descriptor handle.
        fd: FdId,
        /// New authoritative size if the closer wrote the file.
        size: Option<u64>,
    },
    /// Increments a descriptor's reference count because it is being shared
    /// with another process (fork/spawn/dup). Migrates the offset from the
    /// client to the server: the descriptor enters *shared* state
    /// (paper §3.4).
    FdIncref {
        /// Descriptor handle.
        fd: FdId,
        /// The client-held offset at migration time (ignored if the
        /// descriptor is already shared).
        offset: u64,
    },
    /// Reserves a byte range for I/O on a *shared* descriptor: the server
    /// owns the offset, advances it atomically, and returns the range plus
    /// block list; the client then moves the data through shared DRAM.
    SharedIo {
        /// Descriptor handle.
        fd: FdId,
        /// Requested transfer length.
        len: u64,
        /// Write (true) or read (false).
        write: bool,
        /// Append mode: writes start at end of file.
        append: bool,
    },
    /// `lseek` on a shared descriptor.
    SeekShared {
        /// Descriptor handle.
        fd: FdId,
        /// Seek delta.
        offset: i64,
        /// Seek origin.
        whence: Whence,
    },
    /// Extends a file's block list so it can hold `min_size` bytes
    /// (blocks come from this server's buffer-cache partition, §3.2).
    AllocBlocks {
        /// Descriptor handle.
        fd: FdId,
        /// Required file capacity in bytes.
        min_size: u64,
    },
    /// Publishes a new file size (fsync or close while keeping other
    /// descriptors open).
    SetSize {
        /// Descriptor handle.
        fd: FdId,
        /// New size.
        size: u64,
    },
    /// Truncates the file; blocks beyond the new size are *defer-freed*
    /// until every descriptor closes, so a concurrent writer on another
    /// core cannot corrupt a reallocated block (paper §3.2).
    Truncate {
        /// Descriptor handle.
        fd: FdId,
        /// New size.
        size: u64,
    },
    /// Reads file data *through the server* (used when the direct-access
    /// technique is disabled — Figure 12 ablation).
    ReadData {
        /// Descriptor handle.
        fd: FdId,
        /// Absolute file offset.
        offset: u64,
        /// Length to read.
        len: u64,
    },
    /// Writes file data *through the server* (direct access disabled).
    WriteData {
        /// Descriptor handle.
        fd: FdId,
        /// Absolute file offset (ignored with `append`).
        offset: u64,
        /// Bytes to write (shared, so retries and parking never copy).
        data: Arc<[u8]>,
        /// Append at end of file.
        append: bool,
    },
    /// Reads one stripe's bytes from shared DRAM, addressed to the
    /// stripe's *service* owner per the file's [`ExtentMap`] — any server,
    /// since DRAM is shared and the request carries the explicit block
    /// slice. Stateless (no descriptor, no inode): the client slices its
    /// open-time block list by the extent map, so stripe owners hold no
    /// per-file state and the request batches like any other. The striped
    /// data plane's read half.
    ReadStripe {
        /// The blocks covering the stripe, in file order.
        blocks: Vec<nccmem::BlockId>,
        /// Byte offset *within* the slice covered by `blocks`.
        offset: u64,
        /// Length to read.
        len: u64,
    },
    /// Writes one stripe's bytes to shared DRAM (the write half of
    /// [`Request::ReadStripe`]; same stateless addressing). Capacity is
    /// the client's problem: blocks are allocated beforehand from the home
    /// server via [`Request::AllocBlocks`], and the new size is published
    /// at close/fsync exactly like the direct-access write path.
    WriteStripe {
        /// The blocks covering the stripe, in file order.
        blocks: Vec<nccmem::BlockId>,
        /// Byte offset *within* the slice covered by `blocks`.
        offset: u64,
        /// Bytes to write (shared, so batching never copies).
        data: Arc<[u8]>,
    },
    /// Increments an inode's link count (rename bookkeeping).
    LinkIncref {
        /// Per-server inode number.
        num: u64,
    },
    /// Decrements an inode's link count; at zero the inode becomes an
    /// orphan if descriptors remain open, else it is destroyed.
    LinkDecref {
        /// Per-server inode number.
        num: u64,
    },
    /// Returns inode metadata.
    StatInode {
        /// Per-server inode number.
        num: u64,
    },

    // ----- Pipes (server-side so they can be shared across cores) --------
    /// Creates a pipe on this server; returns both descriptor handles.
    PipeCreate,
    /// Reads from a pipe; blocks (deferred reply) while the pipe is empty
    /// and writers remain.
    PipeRead {
        /// Read-end descriptor.
        fd: FdId,
        /// Maximum bytes.
        max: u64,
    },
    /// Writes to a pipe; blocks (deferred reply) while the pipe is full.
    PipeWrite {
        /// Write-end descriptor.
        fd: FdId,
        /// Bytes to write (shared, so a parked write holds no copy).
        data: Arc<[u8]>,
    },

    /// Stops the server loop (machine shutdown).
    Shutdown,
}

/// State returned to the last remaining holder of a descriptor when the
/// server migrates the offset back to the client ("it changes back to local
/// state when the reference count at the server drops to one", paper §3.4).
#[derive(Debug, Clone)]
pub struct DemoteInfo {
    /// The offset at migration time.
    pub offset: u64,
    /// Current file size.
    pub size: u64,
    /// Block list for resumed direct access.
    pub blocks: Vec<nccmem::BlockId>,
}

/// How a file's block I/O is spread over servers (the striped data
/// plane). Block *storage* never moves — every block is allocated from
/// the home server's buffer-cache partition, so migration and teardown
/// stay single-owner — but the DRAM *service* work for stripe `k`
/// (`stripe_unit` bytes) is addressed to `servers[k % servers.len()]`
/// via [`Request::ReadStripe`]/[`Request::WriteStripe`]. The map is
/// derived deterministically from the inode by the striping policy in
/// `crate::placement` (epoch 0, width < 2: all blocks serviced by the
/// home server, byte-for-byte the paper's layout), so it carries no
/// durable state: nothing to migrate, nothing to strand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentMap {
    /// Stripe unit in bytes (a multiple of the block size).
    pub stripe_unit: u64,
    /// Ordered stripe service owners; `servers[k % width]` serves stripe
    /// `k`.
    pub servers: Vec<ServerId>,
}

impl ExtentMap {
    /// Number of servers the file's I/O is spread over.
    pub fn width(&self) -> usize {
        self.servers.len()
    }

    /// The server servicing stripe `k`.
    pub fn server_of(&self, stripe: u64) -> ServerId {
        self.servers[(stripe % self.servers.len() as u64) as usize]
    }

    /// The stripe covering byte `offset`.
    pub fn stripe_of(&self, offset: u64) -> u64 {
        offset / self.stripe_unit
    }
}

/// Fields returned by a successful open (plain or coalesced into `Create`).
#[derive(Debug, Clone)]
pub struct OpenResult {
    /// Server-side descriptor handle.
    pub fd: FdId,
    /// Current file size.
    pub size: u64,
    /// The file's block list for direct buffer-cache access.
    pub blocks: Vec<nccmem::BlockId>,
    /// The file's extent map when the striping policy spreads its I/O
    /// (`None` = all blocks serviced by the home server, the paper's
    /// layout). Riding the open reply — including a fused chain's
    /// [`TerminalReply::Open`] — is what makes a cold open+read one
    /// metadata exchange plus parallel stripe fetches, with zero warm-up
    /// round trips.
    pub extent: Option<ExtentMap>,
}

/// A successful reply. Failures travel as `Err(Errno)` in [`WireReply`].
#[derive(Debug, Clone)]
pub enum Reply {
    /// Generic acknowledgment.
    Unit,
    /// Lookup hit: target inode, its type, and (for directories) the
    /// distribution flag.
    Lookup {
        /// Target inode.
        target: InodeId,
        /// Target type.
        ftype: FileType,
        /// Distribution flag for directory targets.
        dist: bool,
    },
    /// Coalesced lookup+stat result. `stat` is present only when the
    /// target inode is stored on the answering server; otherwise the
    /// client completes with a separate [`Request::StatInode`].
    LookupStated {
        /// Target inode.
        target: InodeId,
        /// Target type.
        ftype: FileType,
        /// Distribution flag for directory targets.
        dist: bool,
        /// The coalesced stat, when the inode was local.
        stat: Option<Stat>,
    },
    /// Coalesced lookup+open result. `open` is present only when the
    /// target was a regular file stored on the answering server; otherwise
    /// the client completes the open with a separate [`Request::OpenInode`].
    LookupOpened {
        /// Target inode.
        target: InodeId,
        /// Target type.
        ftype: FileType,
        /// Distribution flag for directory targets.
        dist: bool,
        /// The coalesced open, when the inode was local.
        open: Option<OpenResult>,
    },
    /// ADD_MAP done; carries the replaced target for rename cleanup.
    AddMapped {
        /// Previously mapped target, if `replace` displaced one.
        replaced: Option<(InodeId, FileType)>,
    },
    /// RM_MAP done; carries the removed target.
    RmMapped {
        /// The inode the removed entry pointed at.
        target: InodeId,
        /// Its type.
        ftype: FileType,
    },
    /// Result of a chained [`Request::LookupPath`] walk: the dentries of
    /// every component whose *lookup* succeeded, in path order, plus why
    /// the walk stopped early (if it did). A transport-level `Err` is
    /// never used for partial progress, so the client can always cache
    /// the prefix.
    Path {
        /// Dentries of the resolved components, in path order.
        entries: Vec<PathEntry>,
        /// The error that stopped the walk. For `ENOENT` (missing entry,
        /// cacheable negatively), `EAGAIN` (the walk reached a directory
        /// marked for deletion — the client retries that component as a
        /// plain lookup, which parks until the rmdir resolves), and
        /// `ELOOP` (hop budget exhausted), the failing component is the
        /// one at index `entries.len()` — its lookup never succeeded.
        /// For `ENOTDIR` the offending component *did* resolve, so its
        /// dentry is the last element of `entries` and the error means
        /// "descending into it failed"; a client that replays `entries`
        /// with a directory check per intermediate derives the same error
        /// at the same component.
        stopped: Option<Errno>,
        /// The fused terminal result, present only when the walk resolved
        /// every component (`stopped` is `None`), the chain carried a
        /// [`TerminalOp`], and the final server could execute it locally.
        /// `None` otherwise — the client completes with the ordinary
        /// follow-up RPC, which also reproduces any authoritative error
        /// (a vanished inode, `EACCES`, …).
        term: Option<TerminalReply>,
    },
    /// One page of one shard of a directory listing.
    Shard {
        /// Entries stored at this server, in lexicographic name order,
        /// starting strictly after the request's cursor.
        entries: Vec<DirEntry>,
        /// Continuation cursor: `Some(name)` when the shard has entries
        /// beyond this page (resume with `after: Some(name)`), `None`
        /// when the listing is complete.
        next: Option<String>,
    },
    /// Inode created (with optional coalesced open).
    Created {
        /// The new inode.
        ino: InodeId,
        /// Open descriptor if requested.
        open: Option<OpenResult>,
    },
    /// Descriptor opened.
    Opened(OpenResult),
    /// Descriptor closed; `demote_peer` is true when exactly one reference
    /// remains and the survivor may return to local state (paper §3.4).
    Closed {
        /// Remaining reference count.
        refs: u32,
    },
    /// Shared-descriptor I/O reservation.
    SharedIo {
        /// Absolute offset the transfer starts at.
        offset: u64,
        /// Number of bytes reserved (may be less than asked for reads).
        len: u64,
        /// Block list covering the range.
        blocks: Vec<nccmem::BlockId>,
        /// File size after the operation.
        size: u64,
        /// When the reference count has dropped back to one, the server
        /// migrates the offset back to the client: descriptor state, size,
        /// and block list for local operation.
        demote: Option<DemoteInfo>,
    },
    /// New offset after a shared seek.
    Seeked {
        /// Resulting absolute offset.
        offset: u64,
        /// Demotion to local state, if applicable.
        demote: Option<DemoteInfo>,
    },
    /// Extended block list after allocation.
    Blocks {
        /// The file's full block list.
        blocks: Vec<nccmem::BlockId>,
        /// Current size.
        size: u64,
    },
    /// Inline data (server-mediated reads, pipe reads). The buffer is
    /// shared: cloning the reply (or re-delivering a parked one) does not
    /// copy the payload.
    Data {
        /// The bytes read.
        data: Arc<[u8]>,
        /// For pipe reads: false once all writers closed and the buffer
        /// drained (EOF).
        _eof: bool,
    },
    /// Bytes accepted by a server-mediated or pipe write.
    Written {
        /// Byte count.
        n: u64,
    },
    /// Inode metadata.
    Stat(Stat),
    /// rmdir serialization lock granted.
    RmdirLocked,
    /// Result of the rmdir mark phase on this server.
    RmdirMark(MarkResult),
    /// Pipe created.
    Pipe {
        /// Pipe identity (for fstat).
        ino: InodeId,
        /// Read-end handle.
        rfd: FdId,
        /// Write-end handle.
        wfd: FdId,
    },
    /// One reply per entry of a [`Request::Batch`], in entry order.
    Batch(Vec<WireReply>),
    /// The answering server does not hold `dir`'s shard (it migrated
    /// away): the caller should fold the redirect into its routing table —
    /// applying it only if `epoch` is newer than what it holds — and retry
    /// at `owner`. A stale route costs exactly this one extra exchange per
    /// directory.
    NotOwner {
        /// The directory whose shard moved.
        dir: InodeId,
        /// Epoch of the migration the answering server knows about.
        epoch: u64,
        /// The owner as of that epoch.
        owner: ServerId,
    },
    /// The source's snapshot answering [`Request::MigrateBegin`].
    MigrateSnapshot {
        /// The directory's placement epoch *before* this migration (the
        /// driver installs the override at `epoch + 1`).
        epoch: u64,
        /// Every entry of the shard.
        entries: Vec<MigEntry>,
    },
    /// One server's load counters answering [`Request::LoadReport`].
    Load {
        /// Operations served since the last reset.
        ops: u64,
        /// `(directory, entry ops, entry writes)` triples, hottest first
        /// (bounded). The write count is what the planner's
        /// replicate-vs-migrate decision keys on.
        hot_dirs: Vec<(InodeId, u64, u64)>,
    },
}

impl Request {
    /// The variant's wire name — span labels and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Register { .. } => "Register",
            Request::Unregister { .. } => "Unregister",
            Request::Lookup { .. } => "Lookup",
            Request::AddMap { .. } => "AddMap",
            Request::RmMap { .. } => "RmMap",
            Request::LookupOpen { .. } => "LookupOpen",
            Request::LookupStat { .. } => "LookupStat",
            Request::ListShard { .. } => "ListShard",
            Request::LookupPath { .. } => "LookupPath",
            Request::Batch { .. } => "Batch",
            Request::MigrateBegin { .. } => "MigrateBegin",
            Request::MigrateInstall { .. } => "MigrateInstall",
            Request::MigrateCommit { .. } => "MigrateCommit",
            Request::MigrateAbort { .. } => "MigrateAbort",
            Request::LoadReport { .. } => "LoadReport",
            Request::ReplicaExport { .. } => "ReplicaExport",
            Request::ReplicaInstall { .. } => "ReplicaInstall",
            Request::ReplicaDrop { .. } => "ReplicaDrop",
            Request::ReplicaInval { .. } => "ReplicaInval",
            Request::RmdirSerialize { .. } => "RmdirSerialize",
            Request::RmdirRelease { .. } => "RmdirRelease",
            Request::RmdirMark { .. } => "RmdirMark",
            Request::RmdirCommit { .. } => "RmdirCommit",
            Request::RmdirAbort { .. } => "RmdirAbort",
            Request::RmdirCentral { .. } => "RmdirCentral",
            Request::Create { .. } => "Create",
            Request::OpenInode { .. } => "OpenInode",
            Request::CloseFd { .. } => "CloseFd",
            Request::FdIncref { .. } => "FdIncref",
            Request::SharedIo { .. } => "SharedIo",
            Request::SeekShared { .. } => "SeekShared",
            Request::AllocBlocks { .. } => "AllocBlocks",
            Request::SetSize { .. } => "SetSize",
            Request::Truncate { .. } => "Truncate",
            Request::ReadData { .. } => "ReadData",
            Request::WriteData { .. } => "WriteData",
            Request::ReadStripe { .. } => "ReadStripe",
            Request::WriteStripe { .. } => "WriteStripe",
            Request::LinkIncref { .. } => "LinkIncref",
            Request::LinkDecref { .. } => "LinkDecref",
            Request::StatInode { .. } => "StatInode",
            Request::PipeCreate => "PipeCreate",
            Request::PipeRead { .. } => "PipeRead",
            Request::PipeWrite { .. } => "PipeWrite",
            Request::Shutdown => "Shutdown",
        }
    }
}

/// What travels back to the client.
pub type WireReply = Result<Reply, Errno>;

/// One message into a server: the request plus its reply channel.
///
/// The envelope around this carries `deliver_at` (virtual arrival time) and
/// `src_core` (for reply latency).
pub struct ServerMsg {
    /// The request body.
    pub req: Request,
    /// Where the (possibly deferred) reply goes.
    pub reply: msg::Sender<WireReply>,
    /// Causal-tracing span context ([`crate::otrace`]): present when the
    /// sender had an operation span open and tracing is enabled, `None`
    /// otherwise (and always when tracing is off — the envelope then is
    /// byte-for-byte the untraced one).
    pub span: Option<crate::otrace::SpanCtx>,
}

impl std::fmt::Debug for ServerMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerMsg({:?})", self.req)
    }
}

/// Service cycles of resolving one directory entry at a server — the base
/// cost of [`Request::Lookup`] and its coalesced/chained variants, and the
/// per-component charge of a [`Request::LookupPath`] walk (so chained and
/// per-component resolution stay comparable if this is ever retuned).
pub const LOOKUP_SERVICE_COST: u64 = 600;

/// Base service cost (cycles) of a request at the server, before per-item
/// additions computed by the handler. ADD_MAP and RM_MAP use the paper's
/// measured 1211 and 756 cycles (§5.3.3).
pub fn base_service_cost(req: &Request) -> u64 {
    match req {
        Request::Register { .. } | Request::Unregister { .. } => 200,
        Request::Lookup { .. } => LOOKUP_SERVICE_COST,
        // The lookup half; the handler adds the open half only when it
        // actually coalesces (local regular-file target).
        Request::LookupOpen { .. } => LOOKUP_SERVICE_COST,
        // The lookup half; the handler adds the stat half only when the
        // target inode is local.
        Request::LookupStat { .. } => LOOKUP_SERVICE_COST,
        // The chain envelope (routing + guard checks); the handler adds
        // the per-component lookup cost for every component it resolves
        // locally, so one server resolving k components costs what k
        // lookups would have, minus the k-1 elided message overheads.
        Request::LookupPath { .. } => 300,
        Request::AddMap { .. } => 1211,
        Request::RmMap { .. } => 756,
        Request::ListShard { .. } => 400,
        // Migration control messages: routing/guard work plus, for the
        // data-bearing halves, a per-entry charge added by the handler.
        Request::MigrateBegin { .. } => 500,
        Request::MigrateInstall { .. } => 500,
        Request::MigrateCommit { .. } => 400,
        Request::MigrateAbort { .. } => 300,
        Request::LoadReport { .. } => 300,
        // Replica control: export/install carry a per-entry charge added
        // by the handler, like the migration halves; the one-way
        // invalidation is a small fixed cost at the replica.
        Request::ReplicaExport { .. } => 500,
        Request::ReplicaInstall { .. } => 500,
        Request::ReplicaDrop { .. } => 300,
        Request::ReplicaInval { .. } => 150,
        Request::RmdirSerialize { .. } | Request::RmdirRelease { .. } => 300,
        Request::RmdirMark { .. } => 400,
        Request::RmdirCommit { .. } | Request::RmdirAbort { .. } => 350,
        Request::RmdirCentral { .. } => 700,
        Request::Create { .. } => 900,
        Request::OpenInode { .. } => 800,
        Request::CloseFd { .. } => 250,
        Request::FdIncref { .. } => 350,
        Request::SharedIo { .. } => 500,
        Request::SeekShared { .. } => 300,
        Request::AllocBlocks { .. } => 400,
        Request::SetSize { .. } => 250,
        Request::Truncate { .. } => 500,
        // Data-bearing requests scale with the payload: a fixed dispatch
        // cost plus ~32 bytes/cycle of marshalling (the handler adds the
        // per-block DRAM work on top). A flat cost here would let a 1 MiB
        // transfer cost the same as a 4 KiB one at the server.
        Request::ReadData { len, .. } => 150 + len / 32,
        Request::WriteData { data, .. } => 150 + data.len() as u64 / 32,
        Request::ReadStripe { len, .. } => 150 + len / 32,
        Request::WriteStripe { data, .. } => 150 + data.len() as u64 / 32,
        Request::LinkIncref { .. } | Request::LinkDecref { .. } => 300,
        Request::StatInode { .. } => 400,
        Request::PipeCreate => 600,
        Request::PipeRead { .. } => 450,
        Request::PipeWrite { .. } => 450,
        // The batch envelope itself is free: the whole point is that the
        // group pays each entry's service cost but only one message
        // overhead (receive + reply send + context switch).
        Request::Batch { reqs, .. } => reqs.iter().map(base_service_cost).sum(),
        Request::Shutdown => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibrated_costs() {
        let add = Request::AddMap {
            client: 0,
            dir: InodeId::ROOT,
            name: "x".into(),
            target: InodeId { server: 0, num: 2 },
            ftype: FileType::Regular,
            dist: false,
            replace: false,
        };
        let rm = Request::RmMap {
            client: 0,
            dir: InodeId::ROOT,
            name: "x".into(),
            must_be_file: true,
        };
        // Paper §5.3.3: ADD_MAP takes 1211 cycles and RM_MAP 756 cycles at
        // the server.
        assert_eq!(base_service_cost(&add), 1211);
        assert_eq!(base_service_cost(&rm), 756);
    }

    #[test]
    fn shutdown_is_free() {
        assert_eq!(base_service_cost(&Request::Shutdown), 0);
    }

    #[test]
    fn data_costs_scale_with_payload() {
        let read = |len| Request::ReadData {
            fd: FdId(1),
            offset: 0,
            len,
        };
        // Marshalling scales linearly at ~32 bytes/cycle over the fixed
        // dispatch cost, so a 64 KiB transfer is charged far more than a
        // 4 KiB one (the flat-500 regression this pins against).
        assert_eq!(
            base_service_cost(&read(65536)) - base_service_cost(&read(4096)),
            (65536 - 4096) / 32
        );
        let ws = |n: usize| Request::WriteStripe {
            blocks: vec![],
            offset: 0,
            data: vec![0u8; n].into(),
        };
        assert_eq!(
            base_service_cost(&ws(65536)) - base_service_cost(&ws(4096)),
            (65536 - 4096) / 32
        );
        // Stripe and through-server reads cost the same at equal payload:
        // striping never pays a protocol premium per byte.
        assert_eq!(
            base_service_cost(&read(4096)),
            base_service_cost(&Request::ReadStripe {
                blocks: vec![],
                offset: 0,
                len: 4096
            })
        );
    }

    #[test]
    fn extent_map_addresses_stripes_round_robin() {
        let e = ExtentMap {
            stripe_unit: 65536,
            servers: vec![2, 3, 0, 1],
        };
        assert_eq!(e.width(), 4);
        assert_eq!(e.stripe_of(0), 0);
        assert_eq!(e.stripe_of(65535), 0);
        assert_eq!(e.stripe_of(65536), 1);
        assert_eq!(e.server_of(0), 2);
        assert_eq!(e.server_of(5), 3);
    }

    #[test]
    fn batch_base_cost_is_sum_of_entries() {
        let batch = Request::Batch {
            reqs: vec![
                Request::StatInode { num: 2 },
                Request::StatInode { num: 3 },
                Request::ListShard {
                    dir: InodeId::ROOT,
                    after: None,
                    max: 0,
                },
            ],
            fail_fast: false,
        };
        assert_eq!(base_service_cost(&batch), 400 + 400 + 400);
        // A singleton batch costs exactly its entry: routing a request
        // through the batched transport is never a pessimization.
        let one = Request::Batch {
            reqs: vec![Request::StatInode { num: 2 }],
            fail_fast: false,
        };
        assert_eq!(
            base_service_cost(&one),
            base_service_cost(&Request::StatInode { num: 2 })
        );
    }
}
