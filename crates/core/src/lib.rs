//! # hare-core — the Hare file system
//!
//! A from-scratch Rust reproduction of *Hare: a file system for
//! non-cache-coherent multicores* (Gruenwald, Sironi, Kaashoek, Zeldovich —
//! EuroSys 2015).
//!
//! Hare provides a single-system-image POSIX file system on a machine whose
//! cores share DRAM but have **no hardware cache coherence**. The pieces,
//! all implemented here:
//!
//! * **File servers** ([`server`]): each owns a shard of every distributed
//!   directory, its own inodes and open-descriptor table, a partition of
//!   the shared buffer cache, and its pipes. Servers never talk to each
//!   other.
//! * **Client library** ([`client`]): implements the POSIX surface
//!   ([`fsapi::ProcFs`]); accesses file data directly in shared DRAM
//!   through the core's non-coherent private cache, keeping it consistent
//!   with the close-to-open invalidate/write-back protocol; caches
//!   directory lookups with server-pushed invalidations; tracks descriptor
//!   offsets locally until a descriptor is shared.
//! * **Protocols** ([`proto`]): lookup/ADD_MAP/RM_MAP, the three-phase
//!   distributed `rmdir`, hybrid descriptor tracking with demotion,
//!   directory broadcast, and message coalescing.
//! * **Simulated hardware** ([`machine`]): per-core virtual clocks
//!   (`vtime`), shared DRAM and private caches (`nccmem`), and the
//!   atomic-delivery messaging layer (`msg`).
//!
//! Start an instance with [`HareInstance::start`], mint per-process client
//! libraries with [`HareInstance::new_client`], and call POSIX operations
//! through [`fsapi::ProcFs`]. Process management (spawn/exec/proxies) lives
//! in the `hare-sched` crate.

pub mod client;
pub mod config;
pub mod instance;
pub mod machine;
pub mod metrics;
pub mod otrace;
pub mod placement;
pub mod proto;
pub mod rpc;
pub mod seqfifo;
pub mod server;
pub mod types;

pub use client::{ClientLib, ClientParams};
pub use config::{HareConfig, Placement, Techniques};
pub use instance::HareInstance;
pub use machine::Machine;
pub use metrics::{TimeSeries, WindowMetrics};
pub use otrace::{Cause, SpanCtx, SpanNode, Tracer};
pub use placement::{
    dir_shard_servers, LoadReport, MigrationPlan, RebalanceAction, RebalanceCadence,
    RebalancePolicy, Rebalancer, ReplicationPlan, RoutingTable,
};
pub use types::{dentry_shard, dentry_shard_in, ClientId, FdId, InodeId, ServerId};
