//! One server's partition of the shared buffer cache.
//!
//! "The buffer cache is divided into blocks which file servers allocate to
//! files on demand. Each server maintains a list of free buffer cache
//! blocks; each block is managed by one file server" (paper §3.2). Block
//! stealing between servers is not implemented, as in the paper's
//! prototype.
//!
//! Striping does not change any of this: a file's blocks are always
//! *allocated* from its home server's partition, even when an extent map
//! spreads stripe *service* over other servers. DRAM is shared, so any
//! server can move bytes for any block; the partition only decides who
//! owns allocation and reclamation. Extent maps are therefore pure
//! functions of the inode and the configured knobs — there is no
//! per-server stripe state to migrate or leak.

use fsapi::{Errno, FsResult};
use nccmem::BlockId;

/// Free-list allocator over one contiguous partition of DRAM blocks.
#[derive(Debug)]
pub struct BlockAllocator {
    free: Vec<BlockId>,
    total: usize,
}

impl BlockAllocator {
    /// Creates an allocator owning blocks `[start, start + count)`.
    pub fn new(start: usize, count: usize) -> Self {
        BlockAllocator {
            // LIFO free list; reverse so low block numbers allocate first.
            free: (start..start + count).rev().map(BlockId).collect(),
            total: count,
        }
    }

    /// Allocates `n` blocks (lowest-numbered first, for determinism), or
    /// fails with `ENOSPC` leaving the free list untouched.
    pub fn alloc(&mut self, n: usize) -> FsResult<Vec<BlockId>> {
        if self.free.len() < n {
            return Err(Errno::ENOSPC);
        }
        let mut out = self.free.split_off(self.free.len() - n);
        out.reverse();
        Ok(out)
    }

    /// Returns blocks to the free list.
    pub fn free(&mut self, blocks: impl IntoIterator<Item = BlockId>) {
        self.free.extend(blocks);
        debug_assert!(self.free.len() <= self.total);
    }

    /// Blocks currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Partition size.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = BlockAllocator::new(100, 10);
        assert_eq!(a.available(), 10);
        let blocks = a.alloc(3).unwrap();
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| (100..110).contains(&b.0)));
        assert_eq!(a.available(), 7);
        a.free(blocks);
        assert_eq!(a.available(), 10);
    }

    #[test]
    fn low_blocks_first() {
        let mut a = BlockAllocator::new(0, 4);
        assert_eq!(a.alloc(2).unwrap(), vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn enospc_is_atomic() {
        let mut a = BlockAllocator::new(0, 2);
        assert_eq!(a.alloc(3), Err(Errno::ENOSPC));
        assert_eq!(a.available(), 2, "failed alloc must not consume blocks");
        assert!(a.alloc(2).is_ok());
        assert_eq!(a.alloc(1), Err(Errno::ENOSPC));
    }
}
