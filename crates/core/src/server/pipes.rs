//! Server-side pipes.
//!
//! Hare implements pipes at a file server so they can be shared across
//! cores — the paper's flagship example is make's jobserver pipe, which
//! must be shared by build processes on every core ("make relies on a
//! shared pipe implemented in Hare in order to coordinate with its
//! jobserver", §5.2).
//!
//! Blocking semantics are implemented with *deferred replies*: a read on an
//! empty pipe (or a write on a full one) parks the reply channel here; a
//! later write (or read, or close) completes it. The server loop never
//! blocks.

use crate::proto::{Reply, WireReply};
use fsapi::Errno;
use std::collections::VecDeque;
use std::sync::Arc;

/// An empty shared data buffer (EOF replies, zero-byte reads).
fn empty() -> Arc<[u8]> {
    Arc::from(Vec::new())
}

/// A reply that could not be answered yet.
#[derive(Debug)]
pub struct Parked {
    /// Where the reply eventually goes.
    pub reply: msg::Sender<WireReply>,
    /// Core of the blocked client (for reply latency).
    pub src_core: usize,
    /// Read: maximum bytes wanted. Write: the data not yet accepted.
    pub payload: ParkedPayload,
}

/// Parked operation payload.
#[derive(Debug)]
pub enum ParkedPayload {
    /// A blocked read wanting up to this many bytes.
    Read(u64),
    /// A blocked write still holding its data (shared with the sender: no
    /// copy is made while the write waits for space).
    Write(Arc<[u8]>),
}

/// One pipe.
#[derive(Debug)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Capacity in bytes (64 KiB by default, as in Linux).
    pub capacity: usize,
    /// Open read-end references.
    pub readers: u32,
    /// Open write-end references.
    pub writers: u32,
    /// Reads waiting for data.
    pub pending_reads: VecDeque<Parked>,
    /// Writes waiting for space.
    pub pending_writes: VecDeque<Parked>,
}

/// A reply released by pipe progress, to be sent once the server knows the
/// current operation's completion time.
pub type Wakeup = (msg::Sender<WireReply>, usize, WireReply);

impl Pipe {
    /// Creates an empty pipe with one reader and one writer reference.
    pub fn new(capacity: usize) -> Self {
        Pipe {
            buf: VecDeque::new(),
            capacity,
            readers: 1,
            writers: 1,
            pending_reads: VecDeque::new(),
            pending_writes: VecDeque::new(),
        }
    }

    /// Space left in the buffer.
    pub fn space(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// Attempts a read of up to `max` bytes. Returns `None` if the caller
    /// must block (empty pipe, writers still open). `wakeups` receives any
    /// writers unblocked by the freed space.
    pub fn read(&mut self, max: u64, wakeups: &mut Vec<Wakeup>) -> Option<WireReply> {
        if self.buf.is_empty() {
            if self.writers == 0 {
                // EOF.
                return Some(Ok(Reply::Data {
                    data: empty(),
                    _eof: true,
                }));
            }
            if max == 0 {
                return Some(Ok(Reply::Data {
                    data: empty(),
                    _eof: false,
                }));
            }
            return None;
        }
        let n = (max as usize).min(self.buf.len());
        let data: Arc<[u8]> = self.buf.drain(..n).collect();
        self.pump(wakeups);
        Some(Ok(Reply::Data { data, _eof: false }))
    }

    /// Attempts a write. Returns `Err(data)` (giving the shared buffer
    /// back) if the caller must block because the pipe is full. Partial
    /// writes are allowed, as POSIX permits for pipes fuller than
    /// `PIPE_BUF`. `wakeups` receives any readers unblocked by new data.
    pub fn write(
        &mut self,
        data: Arc<[u8]>,
        wakeups: &mut Vec<Wakeup>,
    ) -> Result<WireReply, Arc<[u8]>> {
        if self.readers == 0 {
            return Ok(Err(Errno::EPIPE));
        }
        if data.is_empty() {
            return Ok(Ok(Reply::Written { n: 0 }));
        }
        let space = self.space();
        if space == 0 {
            return Err(data);
        }
        let n = data.len().min(space);
        self.buf.extend(&data[..n]);
        self.pump(wakeups);
        Ok(Ok(Reply::Written { n: n as u64 }))
    }

    /// Drops a reader reference; at zero, blocked writers fail with EPIPE.
    pub fn close_reader(&mut self, wakeups: &mut Vec<Wakeup>) {
        self.readers -= 1;
        if self.readers == 0 {
            while let Some(p) = self.pending_writes.pop_front() {
                wakeups.push((p.reply, p.src_core, Err(Errno::EPIPE)));
            }
        }
    }

    /// Drops a writer reference; at zero, blocked readers see EOF once the
    /// buffer drains.
    pub fn close_writer(&mut self, wakeups: &mut Vec<Wakeup>) {
        self.writers -= 1;
        if self.writers == 0 {
            self.pump(wakeups);
        }
    }

    /// True when both ends are fully closed and nothing is parked.
    pub fn defunct(&self) -> bool {
        self.readers == 0
            && self.writers == 0
            && self.pending_reads.is_empty()
            && self.pending_writes.is_empty()
    }

    /// Makes all possible progress on parked operations.
    fn pump(&mut self, wakeups: &mut Vec<Wakeup>) {
        loop {
            let mut progressed = false;
            // Satisfy parked reads while data is available (or EOF).
            while let Some(front) = self.pending_reads.front() {
                let max = match &front.payload {
                    ParkedPayload::Read(m) => *m,
                    ParkedPayload::Write(_) => unreachable!("read queue holds reads"),
                };
                if self.buf.is_empty() && self.writers > 0 {
                    break;
                }
                let p = self.pending_reads.pop_front().expect("front exists");
                let n = (max as usize).min(self.buf.len());
                let data: Arc<[u8]> = self.buf.drain(..n).collect();
                wakeups.push((
                    p.reply,
                    p.src_core,
                    Ok(Reply::Data {
                        _eof: self.writers == 0 && self.buf.is_empty(),
                        data,
                    }),
                ));
                progressed = true;
            }
            // Satisfy parked writes while space is available.
            while let Some(front) = self.pending_writes.front() {
                let len = match &front.payload {
                    ParkedPayload::Write(d) => d.len(),
                    ParkedPayload::Read(_) => unreachable!("write queue holds writes"),
                };
                let space = self.space();
                if space == 0 {
                    break;
                }
                let p = self.pending_writes.pop_front().expect("front exists");
                let data = match p.payload {
                    ParkedPayload::Write(d) => d,
                    ParkedPayload::Read(_) => unreachable!(),
                };
                let n = len.min(space);
                self.buf.extend(&data[..n]);
                wakeups.push((p.reply, p.src_core, Ok(Reply::Written { n: n as u64 })));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

/// The per-server pipe table, keyed by pipe inode number.
#[derive(Debug, Default)]
pub struct PipeTable {
    map: std::collections::HashMap<u64, Pipe>,
}

impl PipeTable {
    /// Installs a new pipe under `num`.
    pub fn insert(&mut self, num: u64, pipe: Pipe) {
        self.map.insert(num, pipe);
    }

    /// Looks up a pipe mutably.
    pub fn get_mut(&mut self, num: u64) -> Option<&mut Pipe> {
        self.map.get_mut(&num)
    }

    /// Removes a pipe once defunct.
    pub fn remove_if_defunct(&mut self, num: u64) {
        if self.map.get(&num).is_some_and(|p| p.defunct()) {
            self.map.remove(&num);
        }
    }

    /// Live pipes (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pipes exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> (msg::Sender<WireReply>, msg::Receiver<WireReply>) {
        msg::channel(msg::MsgStats::shared())
    }

    fn unwrap_data(r: WireReply) -> Vec<u8> {
        match r.unwrap() {
            Reply::Data { data, .. } => data.to_vec(),
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[test]
    fn write_then_read() {
        let mut p = Pipe::new(16);
        let mut w = Vec::new();
        let r = p.write(b"hello".to_vec().into(), &mut w).unwrap();
        assert!(matches!(r, Ok(Reply::Written { n: 5 })));
        let r = p.read(3, &mut w).unwrap();
        assert_eq!(unwrap_data(r), b"hel");
        let r = p.read(10, &mut w).unwrap();
        assert_eq!(unwrap_data(r), b"lo");
        assert!(w.is_empty());
    }

    #[test]
    fn read_blocks_until_write() {
        let mut p = Pipe::new(16);
        let mut w = Vec::new();
        assert!(p.read(4, &mut w).is_none(), "empty pipe must block");
        let (tx, rx) = wire();
        p.pending_reads.push_back(Parked {
            reply: tx,
            src_core: 0,
            payload: ParkedPayload::Read(4),
        });
        let _ = p.write(b"ab".to_vec().into(), &mut w).unwrap();
        assert_eq!(w.len(), 1, "write must wake the parked read");
        let (tx2, src, reply) = w.pop().unwrap();
        assert_eq!(src, 0);
        tx2.send(reply, 0, 0).unwrap();
        assert_eq!(unwrap_data(rx.try_recv().unwrap().payload), b"ab");
    }

    #[test]
    fn full_pipe_blocks_writer_until_read() {
        let mut p = Pipe::new(4);
        let mut w = Vec::new();
        let _ = p.write(b"abcd".to_vec().into(), &mut w).unwrap();
        assert!(
            p.write(b"xy".to_vec().into(), &mut w).is_err(),
            "full pipe blocks"
        );
        let (tx, rx) = wire();
        p.pending_writes.push_back(Parked {
            reply: tx,
            src_core: 2,
            payload: ParkedPayload::Write(b"xy".to_vec().into()),
        });
        let r = p.read(3, &mut w).unwrap();
        assert_eq!(unwrap_data(r), b"abc");
        assert_eq!(w.len(), 1);
        let (tx2, _, reply) = w.pop().unwrap();
        tx2.send(reply, 0, 0).unwrap();
        assert!(matches!(
            rx.try_recv().unwrap().payload,
            Ok(Reply::Written { n: 2 })
        ));
        // Buffer now holds "d" + "xy".
        let r = p.read(10, &mut w).unwrap();
        assert_eq!(unwrap_data(r), b"dxy");
    }

    #[test]
    fn eof_and_epipe() {
        let mut p = Pipe::new(8);
        let mut w = Vec::new();
        let _ = p.write(b"z".to_vec().into(), &mut w).unwrap();
        p.close_writer(&mut w);
        // Buffered data still readable, then EOF.
        assert_eq!(unwrap_data(p.read(8, &mut w).unwrap()), b"z");
        let r = p.read(8, &mut w).unwrap();
        assert_eq!(unwrap_data(r), b"");
        // All readers gone: writes fail.
        p.close_reader(&mut w);
        assert!(matches!(
            Pipe::new(8).write(b"q".to_vec().into(), &mut Vec::new()),
            Ok(Ok(_))
        ));
        let mut p2 = Pipe::new(8);
        p2.close_reader(&mut w);
        assert!(matches!(
            p2.write(b"q".to_vec().into(), &mut Vec::new()),
            Ok(Err(Errno::EPIPE))
        ));
    }

    #[test]
    fn closing_writers_wakes_parked_reader_with_eof() {
        let mut p = Pipe::new(8);
        let (tx, rx) = wire();
        p.pending_reads.push_back(Parked {
            reply: tx,
            src_core: 1,
            payload: ParkedPayload::Read(4),
        });
        let mut w = Vec::new();
        p.close_writer(&mut w);
        assert_eq!(w.len(), 1);
        let (tx2, _, reply) = w.pop().unwrap();
        tx2.send(reply, 0, 0).unwrap();
        let env = rx.try_recv().unwrap();
        assert_eq!(unwrap_data(env.payload), b"");
    }

    #[test]
    fn closing_readers_fails_parked_writer() {
        let mut p = Pipe::new(2);
        let mut w = Vec::new();
        let _ = p.write(b"ab".to_vec().into(), &mut w).unwrap();
        let (tx, rx) = wire();
        p.pending_writes.push_back(Parked {
            reply: tx,
            src_core: 1,
            payload: ParkedPayload::Write(b"cd".to_vec().into()),
        });
        p.close_reader(&mut w);
        assert_eq!(w.len(), 1);
        let (tx2, _, reply) = w.pop().unwrap();
        assert!(matches!(reply, Err(Errno::EPIPE)));
        tx2.send(reply, 0, 0).unwrap();
        assert!(rx.try_recv().is_ok());
    }

    #[test]
    fn defunct_cleanup() {
        let mut t = PipeTable::default();
        let mut p = Pipe::new(4);
        let mut w = Vec::new();
        p.close_reader(&mut w);
        p.close_writer(&mut w);
        assert!(p.defunct());
        t.insert(1, p);
        t.remove_if_defunct(1);
        assert!(t.is_empty());
    }
}
