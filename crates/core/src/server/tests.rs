//! Direct handler-level tests of the file server (no threads: envelopes are
//! fed to `handle` synchronously and replies read back from the channel).

use super::*;
use crate::config::HareConfig;

struct Harness {
    server: Server,
    machine: Arc<Machine>,
}

impl Harness {
    fn new() -> Self {
        let cfg = HareConfig::timeshare(2);
        let machine = Machine::new(&cfg);
        // A single-server peer table (no forwarding possible, but routing
        // still needs the server count).
        let (self_tx, _self_rx) = msg::channel(Arc::clone(&machine.msg_stats));
        let peers = Arc::new(vec![crate::rpc::ServerHandle {
            id: 0,
            core: 0,
            tx: self_tx,
        }]);
        let server = Server::new(
            Arc::clone(&machine),
            ServerParams {
                id: 0,
                core: 0,
                partition_start: 0,
                partition_len: 64,
                root_distributed: false,
                pipe_capacity: 16,
                neg_dircache: true,
                track_capacity: 8192,
                peers,
                distribution: true,
                stripe_unit: 64 * 1024,
                stripe_width: 1,
                dir_shard_width: 1,
                list_page_max: 4096,
            },
        );
        Harness { server, machine }
    }

    /// Sends one request and returns the immediate reply (None if parked).
    fn req(&mut self, req: Request) -> Option<WireReply> {
        let (tx, rx) = msg::channel(Arc::clone(&self.machine.msg_stats));
        self.server.handle(msg::Envelope {
            payload: ServerMsg {
                req,
                reply: tx,
                span: None,
            },
            deliver_at: 0,
            src_core: 1,
        });
        rx.try_recv().ok().map(|e| e.payload)
    }

    fn must(&mut self, req: Request) -> Reply {
        self.req(req).expect("reply expected").expect("ok expected")
    }

    fn create_file(&mut self, name: &str) -> (InodeId, OpenResult) {
        match self.must(Request::Create {
            client: 1,
            ftype: FileType::Regular,
            mode: Mode::default(),
            dist: false,
            add_map: Some((InodeId::ROOT, name.to_string())),
            open: Some(OpenFlags::RDWR),
        }) {
            Reply::Created { ino, open } => (ino, open.expect("open requested")),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn coalesced_create_open_unlink_orphan() {
    let mut h = Harness::new();
    let (ino, open) = h.create_file("f");
    assert_eq!(ino.server, 0);

    // Lookup finds it.
    match h.must(Request::Lookup {
        client: 2,
        dir: InodeId::ROOT,
        name: "f".into(),
    }) {
        Reply::Lookup { target, ftype, .. } => {
            assert_eq!(target, ino);
            assert_eq!(ftype, FileType::Regular);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Unlink while open: RM_MAP + decref orphans the inode but keeps it.
    h.must(Request::RmMap {
        client: 1,
        dir: InodeId::ROOT,
        name: "f".into(),
        must_be_file: true,
    });
    h.must(Request::LinkDecref { num: ino.num });
    // Inode still alive: stat succeeds (orphan semantics, paper §3.4).
    match h.must(Request::StatInode { num: ino.num }) {
        Reply::Stat(st) => assert_eq!(st.nlink, 0),
        other => panic!("unexpected {other:?}"),
    }
    // Last close destroys it.
    h.must(Request::CloseFd {
        fd: open.fd,
        size: None,
    });
    assert!(matches!(
        h.req(Request::StatInode { num: ino.num }),
        Some(Err(Errno::ENOENT))
    ));
}

#[test]
fn duplicate_create_fails() {
    let mut h = Harness::new();
    h.create_file("f");
    let r = h.req(Request::Create {
        client: 1,
        ftype: FileType::Regular,
        mode: Mode::default(),
        dist: false,
        add_map: Some((InodeId::ROOT, "f".into())),
        open: None,
    });
    assert!(matches!(r, Some(Err(Errno::EEXIST))));
}

#[test]
fn alloc_grows_and_truncate_defers() {
    let mut h = Harness::new();
    let (_ino, open) = h.create_file("f");
    let blocks = match h.must(Request::AllocBlocks {
        fd: open.fd,
        min_size: 3 * BLOCK_SIZE as u64,
    }) {
        Reply::Blocks { blocks, .. } => blocks,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(blocks.len(), 3);
    let (_, _, avail) = h.server.debug_state();
    assert_eq!(avail, 61);

    // Truncate to one block: two blocks defer-freed while the fd is open.
    h.must(Request::Truncate {
        fd: open.fd,
        size: 100,
    });
    let (_, _, avail) = h.server.debug_state();
    assert_eq!(avail, 61, "blocks must not be reused while fds are open");

    h.must(Request::CloseFd {
        fd: open.fd,
        size: Some(100),
    });
    let (_, _, avail) = h.server.debug_state();
    assert_eq!(avail, 63, "deferred blocks freed at last close");
}

#[test]
fn shared_fd_offset_and_demotion() {
    let mut h = Harness::new();
    let (_ino, open) = h.create_file("f");
    // Share the descriptor (fork): offset migrates to the server.
    h.must(Request::FdIncref {
        fd: open.fd,
        offset: 0,
    });
    // Two writers appending through the shared offset never overlap.
    let r1 = h.must(Request::SharedIo {
        fd: open.fd,
        len: 100,
        write: true,
        append: false,
    });
    let r2 = h.must(Request::SharedIo {
        fd: open.fd,
        len: 50,
        write: true,
        append: false,
    });
    match (r1, r2) {
        (
            Reply::SharedIo {
                offset: o1,
                demote: None,
                ..
            },
            Reply::SharedIo {
                offset: o2,
                demote: None,
                ..
            },
        ) => {
            assert_eq!(o1, 0);
            assert_eq!(o2, 100);
        }
        other => panic!("unexpected {other:?}"),
    }

    // One process closes its reference: demotion arms.
    h.must(Request::CloseFd {
        fd: open.fd,
        size: None,
    });
    // Next shared op returns the offset to the survivor.
    match h.must(Request::SharedIo {
        fd: open.fd,
        len: 10,
        write: false,
        append: false,
    }) {
        Reply::SharedIo {
            demote: Some(d), ..
        } => {
            // The read at offset 150 hits EOF (size 150): offset unchanged.
            assert_eq!(d.offset, 150);
            assert_eq!(d.size, 150);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn rmdir_three_phase_commit() {
    let mut h = Harness::new();
    // Create an empty dir "d" under root.
    let dir = match h.must(Request::Create {
        client: 1,
        ftype: FileType::Directory,
        mode: Mode::default(),
        dist: true,
        add_map: Some((InodeId::ROOT, "d".into())),
        open: None,
    }) {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };

    // Phase 1: serialize at the home server.
    assert!(matches!(
        h.must(Request::RmdirSerialize { dir }),
        Reply::RmdirLocked
    ));
    // Phase 2: mark.
    assert!(matches!(
        h.must(Request::RmdirMark { dir }),
        Reply::RmdirMark(MarkResult::Marked)
    ));
    // Phase 3: commit destroys the inode and tombstones the dir.
    h.must(Request::RmdirCommit { dir });
    h.must(Request::RmdirRelease { dir });
    assert!(matches!(
        h.req(Request::StatInode { num: dir.num }),
        Some(Err(Errno::ENOENT))
    ));
    // Create under the removed dir is refused.
    let r = h.req(Request::AddMap {
        client: 1,
        dir,
        name: "x".into(),
        target: InodeId { server: 0, num: 99 },
        ftype: FileType::Regular,
        dist: false,
        replace: false,
    });
    assert!(matches!(r, Some(Err(Errno::ENOENT))));
}

#[test]
fn rmdir_mark_delays_creates_until_abort() {
    let mut h = Harness::new();
    let dir = match h.must(Request::Create {
        client: 1,
        ftype: FileType::Directory,
        mode: Mode::default(),
        dist: true,
        add_map: Some((InodeId::ROOT, "d".into())),
        open: None,
    }) {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    h.must(Request::RmdirSerialize { dir });
    h.must(Request::RmdirMark { dir });

    // A create lands while the mark is held: it must be delayed, not
    // answered.
    let (tx, rx) = msg::channel(Arc::clone(&h.machine.msg_stats));
    h.server.handle(msg::Envelope {
        payload: ServerMsg {
            req: Request::AddMap {
                client: 2,
                dir,
                name: "x".into(),
                target: InodeId { server: 0, num: 50 },
                ftype: FileType::Regular,
                dist: false,
                replace: false,
            },
            reply: tx,
            span: None,
        },
        deliver_at: 0,
        src_core: 1,
    });
    assert!(rx.try_recv().is_err(), "operation must be parked");

    // ABORT releases and replays it: the create now succeeds.
    h.must(Request::RmdirAbort { dir });
    let env = rx.try_recv().expect("replayed after abort");
    assert!(matches!(
        env.payload,
        Ok(Reply::AddMapped { replaced: None })
    ));
}

#[test]
fn rmdir_mark_fails_on_nonempty_shard() {
    let mut h = Harness::new();
    let dir = match h.must(Request::Create {
        client: 1,
        ftype: FileType::Directory,
        mode: Mode::default(),
        dist: true,
        add_map: Some((InodeId::ROOT, "d".into())),
        open: None,
    }) {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    h.must(Request::AddMap {
        client: 1,
        dir,
        name: "child".into(),
        target: InodeId { server: 0, num: 40 },
        ftype: FileType::Regular,
        dist: false,
        replace: false,
    });
    h.must(Request::RmdirSerialize { dir });
    assert!(matches!(
        h.must(Request::RmdirMark { dir }),
        Reply::RmdirMark(MarkResult::NotEmpty)
    ));
}

#[test]
fn rmdir_serialization_queues_second_locker() {
    let mut h = Harness::new();
    let dir = match h.must(Request::Create {
        client: 1,
        ftype: FileType::Directory,
        mode: Mode::default(),
        dist: true,
        add_map: Some((InodeId::ROOT, "d".into())),
        open: None,
    }) {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    assert!(matches!(
        h.must(Request::RmdirSerialize { dir }),
        Reply::RmdirLocked
    ));
    // Second locker parks.
    let (tx, rx) = msg::channel(Arc::clone(&h.machine.msg_stats));
    h.server.handle(msg::Envelope {
        payload: ServerMsg {
            req: Request::RmdirSerialize { dir },
            reply: tx,
            span: None,
        },
        deliver_at: 0,
        src_core: 1,
    });
    assert!(rx.try_recv().is_err(), "second rmdir must wait");
    // Release grants it.
    h.must(Request::RmdirRelease { dir });
    let env = rx.try_recv().expect("lock handed off");
    assert!(matches!(env.payload, Ok(Reply::RmdirLocked)));
}

#[test]
fn centralized_rmdir_single_message() {
    let mut h = Harness::new();
    let dir = match h.must(Request::Create {
        client: 1,
        ftype: FileType::Directory,
        mode: Mode::default(),
        dist: false,
        add_map: Some((InodeId::ROOT, "d".into())),
        open: None,
    }) {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    // Non-empty fails.
    h.must(Request::AddMap {
        client: 1,
        dir,
        name: "c".into(),
        target: InodeId { server: 0, num: 70 },
        ftype: FileType::Regular,
        dist: false,
        replace: false,
    });
    assert!(matches!(
        h.req(Request::RmdirCentral { dir }),
        Some(Err(Errno::ENOTEMPTY))
    ));
    h.must(Request::RmMap {
        client: 1,
        dir,
        name: "c".into(),
        must_be_file: true,
    });
    assert!(matches!(h.must(Request::RmdirCentral { dir }), Reply::Unit));
}

#[test]
fn invalidations_reach_tracking_clients() {
    let mut h = Harness::new();
    // Client 7 registers with an invalidation queue.
    let (itx, irx) = msg::channel::<Invalidation>(Arc::clone(&h.machine.msg_stats));
    h.must(Request::Register {
        client: 7,
        core: 1,
        inval: itx,
    });
    let (ino, _open) = h.create_file("f");
    let _ = ino;
    // Client 7 looks the name up (now tracked).
    h.must(Request::Lookup {
        client: 7,
        dir: InodeId::ROOT,
        name: "f".into(),
    });
    // Client 1 removes the entry: client 7 must get an invalidation.
    h.must(Request::RmMap {
        client: 1,
        dir: InodeId::ROOT,
        name: "f".into(),
        must_be_file: true,
    });
    let inv = irx.try_recv().expect("invalidation must be queued already");
    assert_eq!(inv.payload.dir, InodeId::ROOT);
    assert_eq!(inv.payload.name, "f");
    // The mutator itself is not invalidated (its library updates locally).
    assert!(irx.try_recv().is_err());
}

#[test]
fn pipe_blocking_read_woken_by_write() {
    let mut h = Harness::new();
    let (rfd, wfd) = match h.must(Request::PipeCreate) {
        Reply::Pipe { rfd, wfd, .. } => (rfd, wfd),
        other => panic!("unexpected {other:?}"),
    };
    // Blocking read parks.
    let (tx, rx) = msg::channel(Arc::clone(&h.machine.msg_stats));
    h.server.handle(msg::Envelope {
        payload: ServerMsg {
            req: Request::PipeRead { fd: rfd, max: 4 },
            reply: tx,
            span: None,
        },
        deliver_at: 0,
        src_core: 1,
    });
    assert!(rx.try_recv().is_err(), "read on empty pipe parks");
    // A write wakes it.
    h.must(Request::PipeWrite {
        fd: wfd,
        data: b"hi".to_vec().into(),
    });
    match rx.try_recv().expect("woken").payload {
        Ok(Reply::Data { data, .. }) => assert_eq!(&data[..], b"hi"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn pipe_write_blocks_at_capacity_and_epipe() {
    let mut h = Harness::new();
    let (rfd, wfd) = match h.must(Request::PipeCreate) {
        Reply::Pipe { rfd, wfd, .. } => (rfd, wfd),
        other => panic!("unexpected {other:?}"),
    };
    // Capacity is 16 in the harness.
    h.must(Request::PipeWrite {
        fd: wfd,
        data: vec![0u8; 16].into(),
    });
    let (tx, rx) = msg::channel(Arc::clone(&h.machine.msg_stats));
    h.server.handle(msg::Envelope {
        payload: ServerMsg {
            req: Request::PipeWrite {
                fd: wfd,
                data: b"more".to_vec().into(),
            },
            reply: tx,
            span: None,
        },
        deliver_at: 0,
        src_core: 1,
    });
    assert!(rx.try_recv().is_err(), "write to full pipe parks");
    // Close the read end: the parked writer fails with EPIPE.
    h.must(Request::CloseFd {
        fd: rfd,
        size: None,
    });
    assert!(matches!(
        rx.try_recv().expect("woken").payload,
        Err(Errno::EPIPE)
    ));
}

#[test]
fn lookup_open_coalesces_on_local_inode() {
    let mut h = Harness::new();
    let (ino, open0) = h.create_file("f");
    h.must(Request::CloseFd {
        fd: open0.fd,
        size: None,
    });
    // One message resolves the dentry AND opens a descriptor because the
    // inode lives on this (the dentry shard) server.
    match h.must(Request::LookupOpen {
        client: 2,
        dir: InodeId::ROOT,
        name: "f".into(),
        flags: OpenFlags::RDONLY,
    }) {
        Reply::LookupOpened {
            target,
            ftype,
            open: Some(_),
            ..
        } => {
            assert_eq!(target, ino);
            assert_eq!(ftype, FileType::Regular);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn lookup_open_falls_back_for_remote_inode() {
    let mut h = Harness::new();
    let remote = InodeId { server: 1, num: 9 };
    h.must(Request::AddMap {
        client: 1,
        dir: InodeId::ROOT,
        name: "r".into(),
        target: remote,
        ftype: FileType::Regular,
        dist: false,
        replace: false,
    });
    // The dentry resolves, but the inode lives elsewhere: no coalesced
    // open, the client must follow up with OpenInode at server 1.
    match h.must(Request::LookupOpen {
        client: 2,
        dir: InodeId::ROOT,
        name: "r".into(),
        flags: OpenFlags::RDONLY,
    }) {
        Reply::LookupOpened {
            target, open: None, ..
        } => assert_eq!(target, remote),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn lookup_open_degrades_to_lookup_when_open_fails() {
    let mut h = Harness::new();
    // A write-only file: the coalesced RDONLY open must fail EACCES, but
    // the reply still carries the resolution so the client caches the
    // dentry (its fallback OpenInode reproduces the error).
    let ino = match h.must(Request::Create {
        client: 1,
        ftype: FileType::Regular,
        mode: Mode(0o200),
        dist: false,
        add_map: Some((InodeId::ROOT, "wonly".into())),
        open: None,
    }) {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    match h.must(Request::LookupOpen {
        client: 2,
        dir: InodeId::ROOT,
        name: "wonly".into(),
        flags: OpenFlags::RDONLY,
    }) {
        Reply::LookupOpened {
            target, open: None, ..
        } => assert_eq!(target, ino),
        other => panic!("unexpected {other:?}"),
    }
    assert!(matches!(
        h.req(Request::OpenInode {
            client: 2,
            num: ino.num,
            flags: OpenFlags::RDONLY,
        }),
        Some(Err(Errno::EACCES))
    ));
}

#[test]
fn fresh_addmap_invalidates_miss_trackers() {
    let mut h = Harness::new();
    let (itx, irx) = msg::channel::<Invalidation>(Arc::clone(&h.machine.msg_stats));
    h.must(Request::Register {
        client: 7,
        core: 1,
        inval: itx,
    });
    // Client 7 probes an absent name (and caches the ENOENT): the miss is
    // tracked.
    assert!(matches!(
        h.req(Request::Lookup {
            client: 7,
            dir: InodeId::ROOT,
            name: "soon".into(),
        }),
        Some(Err(Errno::ENOENT))
    ));
    // Client 1 creates the name (coalesced create): client 7's negative
    // entry must be invalidated.
    h.create_file("soon");
    let inv = irx.try_recv().expect("negative entry must be invalidated");
    assert_eq!(inv.payload.dir, InodeId::ROOT);
    assert_eq!(inv.payload.name, "soon");
}

#[test]
fn lookup_open_miss_is_tracked_for_invalidation() {
    let mut h = Harness::new();
    let (itx, irx) = msg::channel::<Invalidation>(Arc::clone(&h.machine.msg_stats));
    h.must(Request::Register {
        client: 7,
        core: 1,
        inval: itx,
    });
    assert!(matches!(
        h.req(Request::LookupOpen {
            client: 7,
            dir: InodeId::ROOT,
            name: "later".into(),
            flags: OpenFlags::RDONLY,
        }),
        Some(Err(Errno::ENOENT))
    ));
    // A plain (non-coalesced) AddMap creation also reaches miss trackers.
    h.must(Request::AddMap {
        client: 1,
        dir: InodeId::ROOT,
        name: "later".into(),
        target: InodeId { server: 0, num: 33 },
        ftype: FileType::Regular,
        dist: false,
        replace: false,
    });
    let inv = irx.try_recv().expect("miss tracker must hear the create");
    assert_eq!(inv.payload.name, "later");
}

#[test]
fn open_nonexistent_inode_fails() {
    let mut h = Harness::new();
    assert!(matches!(
        h.req(Request::OpenInode {
            client: 1,
            num: 424242,
            flags: OpenFlags::RDONLY,
        }),
        Some(Err(Errno::ENOENT))
    ));
}

#[test]
fn permission_checks_at_open() {
    let mut h = Harness::new();
    let (ino, open) = h.create_file("locked");
    h.must(Request::CloseFd {
        fd: open.fd,
        size: None,
    });
    // Flip the mode to write-only-by-owner... we have no chmod in the
    // protocol, so create a fresh inode with a restrictive mode instead.
    let r = h.must(Request::Create {
        client: 1,
        ftype: FileType::Regular,
        mode: Mode(0o200),
        dist: false,
        add_map: Some((InodeId::ROOT, "wonly".into())),
        open: None,
    });
    let ino2 = match r {
        Reply::Created { ino, .. } => ino,
        other => panic!("unexpected {other:?}"),
    };
    assert!(matches!(
        h.req(Request::OpenInode {
            client: 1,
            num: ino2.num,
            flags: OpenFlags::RDONLY,
        }),
        Some(Err(Errno::EACCES))
    ));
    // The readable file opens fine.
    assert!(h
        .req(Request::OpenInode {
            client: 1,
            num: ino.num,
            flags: OpenFlags::RDONLY,
        })
        .unwrap()
        .is_ok());
}

#[test]
fn server_data_io_handles_holes() {
    let mut h = Harness::new();
    let (_ino, open) = h.create_file("f");
    // Write through the server at offset 5000 (block 1).
    h.must(Request::WriteData {
        fd: open.fd,
        offset: 5000,
        data: b"xyz".to_vec().into(),
        append: false,
    });
    // Read spanning the hole in block 0 returns zeros then data.
    match h.must(Request::ReadData {
        fd: open.fd,
        offset: 4998,
        len: 5,
    }) {
        Reply::Data { data, .. } => assert_eq!(&data[..], [0, 0, b'x', b'y', b'z']),
        other => panic!("unexpected {other:?}"),
    }
}
