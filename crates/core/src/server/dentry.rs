//! One server's shard of the distributed directory entries.
//!
//! A distributed directory's entries are spread over all servers by
//! `hash(dir, name) % NSERVERS` (paper §3.3); a centralized directory keeps
//! all its entries at its home server. Either way, the entries a given
//! server stores live here, together with the per-entry client tracking
//! lists used for invalidation callbacks (paper §3.6.1) and the tombstones
//! of removed directories.

use crate::types::{ClientId, InodeId};
use fsapi::{DirEntry, Errno, FileType, FsResult};
use std::collections::{HashMap, HashSet};

/// Value of one directory entry.
///
/// Entries store the full `(server, inode)` target plus the target's type
/// and — for directories — the distribution flag, so path resolution learns
/// everything it needs from a single lookup RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DentryVal {
    /// The inode this name maps to.
    pub target: InodeId,
    /// The target's type.
    pub ftype: FileType,
    /// Distribution flag (meaningful for directory targets).
    pub dist: bool,
}

/// This server's slice of every directory.
#[derive(Debug, Default)]
pub struct DentryShard {
    /// dir → name → value.
    dirs: HashMap<InodeId, HashMap<String, DentryVal>>,
    /// Clients holding `(dir, name)` — positively or negatively — in
    /// their lookup caches, nested by directory so rmdir can drop a
    /// directory's lists without scanning unrelated state.
    tracking: HashMap<InodeId, HashMap<String, HashSet<ClientId>>>,
    /// Directories removed by a committed rmdir. Entries can never be
    /// created under a tombstoned directory, closing the race between a
    /// committed removal and a client with a stale parent lookup.
    tombstones: HashSet<InodeId>,
}

impl DentryShard {
    /// Looks up `name` in `dir`'s local slice.
    pub fn lookup(&self, dir: InodeId, name: &str) -> Option<DentryVal> {
        self.dirs.get(&dir).and_then(|m| m.get(name)).copied()
    }

    /// Inserts an entry. With `replace`, an existing non-directory entry is
    /// displaced and returned; without, an existing entry fails `EEXIST`.
    /// Directories are never displaced (`EISDIR`), matching the restricted
    /// rename-over semantics this reproduction supports.
    pub fn insert(
        &mut self,
        dir: InodeId,
        name: &str,
        val: DentryVal,
        replace: bool,
    ) -> FsResult<Option<DentryVal>> {
        if self.tombstones.contains(&dir) {
            return Err(Errno::ENOENT);
        }
        let slot = self.dirs.entry(dir).or_default();
        match slot.get(name) {
            None => {
                slot.insert(name.to_string(), val);
                Ok(None)
            }
            Some(old) if replace => {
                if old.ftype == FileType::Directory {
                    // Nothing may displace a directory entry.
                    return Err(Errno::EISDIR);
                }
                if val.ftype == FileType::Directory {
                    // A directory may not displace a file (POSIX ENOTDIR).
                    return Err(Errno::ENOTDIR);
                }
                let old = *old;
                slot.insert(name.to_string(), val);
                Ok(Some(old))
            }
            Some(_) => Err(Errno::EEXIST),
        }
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, dir: InodeId, name: &str) -> FsResult<DentryVal> {
        if self.tombstones.contains(&dir) {
            return Err(Errno::ENOENT);
        }
        let slot = self.dirs.get_mut(&dir).ok_or(Errno::ENOENT)?;
        let val = slot.remove(name).ok_or(Errno::ENOENT)?;
        if slot.is_empty() {
            self.dirs.remove(&dir);
        }
        Ok(val)
    }

    /// Number of entries this shard holds for `dir` (the rmdir emptiness
    /// check, paper §3.3).
    pub fn count(&self, dir: InodeId) -> usize {
        self.dirs.get(&dir).map_or(0, |m| m.len())
    }

    /// This shard's contribution to `readdir(dir)`.
    pub fn list(&self, dir: InodeId) -> Vec<DirEntry> {
        self.dirs.get(&dir).map_or_else(Vec::new, |m| {
            m.iter()
                .map(|(name, v)| DirEntry {
                    name: name.clone(),
                    ino: v.target.num,
                    server: v.target.server,
                    ftype: v.ftype,
                })
                .collect()
        })
    }

    /// True if `dir` was removed by a committed rmdir.
    pub fn is_tombstoned(&self, dir: InodeId) -> bool {
        self.tombstones.contains(&dir)
    }

    /// Marks `dir` permanently removed. Tracking lists under the directory
    /// are dropped too: a tombstoned directory can never gain entries, so
    /// no tracked client will ever need an invalidation for it.
    pub fn tombstone(&mut self, dir: InodeId) {
        self.tombstones.insert(dir);
        self.dirs.remove(&dir);
        self.tracking.remove(&dir);
    }

    /// Records that `client` cached `(dir, name)`; it will receive an
    /// invalidation when the entry changes.
    pub fn track(&mut self, dir: InodeId, name: &str, client: ClientId) {
        self.tracking
            .entry(dir)
            .or_default()
            .entry(name.to_string())
            .or_default()
            .insert(client);
    }

    /// Removes and returns the clients tracking `(dir, name)`, excluding
    /// the mutating client (its library updates its own cache locally).
    pub fn take_trackers(&mut self, dir: InodeId, name: &str, except: ClientId) -> Vec<ClientId> {
        let Some(names) = self.tracking.get_mut(&dir) else {
            return Vec::new();
        };
        let out = match names.remove(name) {
            Some(set) => set.into_iter().filter(|c| *c != except).collect(),
            None => Vec::new(),
        };
        if names.is_empty() {
            self.tracking.remove(&dir);
        }
        out
    }

    /// Drops a departing client from every tracking list.
    pub fn untrack_client(&mut self, client: ClientId) {
        for names in self.tracking.values_mut() {
            for set in names.values_mut() {
                set.remove(&client);
            }
            names.retain(|_, set| !set.is_empty());
        }
        self.tracking.retain(|_, names| !names.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIR: InodeId = InodeId { server: 0, num: 1 };

    fn file_val(num: u64) -> DentryVal {
        DentryVal {
            target: InodeId { server: 1, num },
            ftype: FileType::Regular,
            dist: false,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut s = DentryShard::default();
        assert!(s.insert(DIR, "a", file_val(5), false).unwrap().is_none());
        assert_eq!(s.lookup(DIR, "a").unwrap().target.num, 5);
        assert_eq!(s.count(DIR), 1);
        assert_eq!(s.remove(DIR, "a").unwrap().target.num, 5);
        assert_eq!(s.count(DIR), 0);
        assert_eq!(s.remove(DIR, "a"), Err(Errno::ENOENT));
    }

    #[test]
    fn duplicate_insert_fails_without_replace() {
        let mut s = DentryShard::default();
        s.insert(DIR, "a", file_val(5), false).unwrap();
        assert_eq!(s.insert(DIR, "a", file_val(6), false), Err(Errno::EEXIST));
        // Replace displaces and returns the old value.
        let old = s.insert(DIR, "a", file_val(7), true).unwrap().unwrap();
        assert_eq!(old.target.num, 5);
        assert_eq!(s.lookup(DIR, "a").unwrap().target.num, 7);
    }

    #[test]
    fn replace_never_displaces_directories() {
        let mut s = DentryShard::default();
        let dir_val = DentryVal {
            target: InodeId { server: 0, num: 9 },
            ftype: FileType::Directory,
            dist: true,
        };
        s.insert(DIR, "d", dir_val, false).unwrap();
        assert_eq!(s.insert(DIR, "d", file_val(5), true), Err(Errno::EISDIR));
    }

    #[test]
    fn tombstone_blocks_creation() {
        let mut s = DentryShard::default();
        s.tombstone(DIR);
        assert_eq!(s.insert(DIR, "a", file_val(5), false), Err(Errno::ENOENT));
        assert!(s.is_tombstoned(DIR));
    }

    #[test]
    fn tracking_roundtrip() {
        let mut s = DentryShard::default();
        s.track(DIR, "a", 1);
        s.track(DIR, "a", 2);
        s.track(DIR, "a", 3);
        let mut got = s.take_trackers(DIR, "a", 2);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
        // Tracking list is consumed.
        assert!(s.take_trackers(DIR, "a", 0).is_empty());
    }

    #[test]
    fn untrack_client_purges() {
        let mut s = DentryShard::default();
        s.track(DIR, "a", 1);
        s.track(DIR, "b", 1);
        s.track(DIR, "b", 2);
        s.untrack_client(1);
        assert!(s.take_trackers(DIR, "a", 0).is_empty());
        assert_eq!(s.take_trackers(DIR, "b", 0), vec![2]);
    }

    #[test]
    fn list_reports_entry_metadata() {
        let mut s = DentryShard::default();
        s.insert(DIR, "x", file_val(5), false).unwrap();
        let l = s.list(DIR);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].name, "x");
        assert_eq!(l[0].ino, 5);
        assert_eq!(l[0].server, 1);
    }
}
