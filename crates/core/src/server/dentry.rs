//! One server's shard of the distributed directory entries.
//!
//! A distributed directory's entries are spread over all servers by
//! `hash(dir, name) % NSERVERS` (paper §3.3); a centralized directory keeps
//! all its entries at its home server. Either way, the entries a given
//! server stores live here, together with the per-entry client tracking
//! lists used for invalidation callbacks (paper §3.6.1) and the tombstones
//! of removed directories.

//! The tracking table is **bounded**: at most `track_capacity` `(dir,
//! name)` slots are remembered, hits and misses alike, so an adversarial
//! probe stream of distinct absent names cannot grow server state without
//! limit. Evicting a slot first returns its tracked clients so the server
//! can send them an invalidation — they drop their cached entry and
//! re-resolve, which keeps eviction sound (never a stale cache, only a
//! re-asked question).

use crate::seqfifo::SeqFifo;
use crate::types::{ClientId, InodeId};
use fsapi::{DirEntry, Errno, FileType, FsResult};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

/// Value of one directory entry.
///
/// Entries store the full `(server, inode)` target plus the target's type
/// and — for directories — the distribution flag, so path resolution learns
/// everything it needs from a single lookup RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DentryVal {
    /// The inode this name maps to.
    pub target: InodeId,
    /// The target's type.
    pub ftype: FileType,
    /// Distribution flag (meaningful for directory targets).
    pub dist: bool,
}

/// A tracking slot evicted to make room: the entry's key plus the clients
/// that must be sent an invalidation for it.
#[derive(Debug)]
pub struct EvictedTracking {
    /// Directory of the evicted slot.
    pub dir: InodeId,
    /// Entry name of the evicted slot.
    pub name: String,
    /// Clients that were tracking it.
    pub clients: Vec<ClientId>,
}

/// One tracking slot: the clients caching `(dir, name)` plus the birth
/// sequence tying the slot to its eviction-queue entry.
#[derive(Debug)]
struct TrackSlot {
    clients: HashSet<ClientId>,
    seq: u64,
}

/// This server's slice of every directory.
#[derive(Debug)]
pub struct DentryShard {
    /// dir → name → value. The inner map is ordered by name so a listing
    /// can be paged with a lexicographic cursor
    /// ([`DentryShard::list_page`]): the cursor survives concurrent
    /// inserts and removes, which an index-based cursor would not.
    dirs: HashMap<InodeId, BTreeMap<String, DentryVal>>,
    /// Clients holding `(dir, name)` — positively or negatively — in
    /// their lookup caches, nested by directory so rmdir can drop a
    /// directory's lists without scanning unrelated state.
    tracking: HashMap<InodeId, HashMap<Arc<str>, TrackSlot>>,
    /// Bounded eviction order for tracking slots (the seq-tagged FIFO
    /// shared with the client directory cache — see [`crate::seqfifo`]):
    /// a key left behind by a consumed-then-recreated slot can never evict
    /// the (younger) recreation, nor fire a spurious invalidation at its
    /// clients.
    track_fifo: SeqFifo<(InodeId, Arc<str>)>,
    /// Live tracking-slot count.
    track_slots: usize,
    /// Directories removed by a committed rmdir. Entries can never be
    /// created under a tombstoned directory, closing the race between a
    /// committed removal and a client with a stale parent lookup.
    tombstones: HashSet<InodeId>,
}

impl Default for DentryShard {
    /// A shard with the default tracking capacity (tests and tools;
    /// servers pass the configured capacity via [`DentryShard::new`]).
    fn default() -> Self {
        DentryShard::new(8192)
    }
}

impl DentryShard {
    /// An empty shard tracking at most `track_capacity` `(dir, name)`
    /// slots.
    pub fn new(track_capacity: usize) -> Self {
        DentryShard {
            dirs: HashMap::new(),
            tracking: HashMap::new(),
            track_fifo: SeqFifo::new(track_capacity),
            track_slots: 0,
            tombstones: HashSet::new(),
        }
    }
    /// Looks up `name` in `dir`'s local slice.
    pub fn lookup(&self, dir: InodeId, name: &str) -> Option<DentryVal> {
        self.dirs.get(&dir).and_then(|m| m.get(name)).copied()
    }

    /// Inserts an entry. With `replace`, an existing non-directory entry is
    /// displaced and returned; without, an existing entry fails `EEXIST`.
    /// Directories are never displaced (`EISDIR`), matching the restricted
    /// rename-over semantics this reproduction supports.
    pub fn insert(
        &mut self,
        dir: InodeId,
        name: &str,
        val: DentryVal,
        replace: bool,
    ) -> FsResult<Option<DentryVal>> {
        if self.tombstones.contains(&dir) {
            return Err(Errno::ENOENT);
        }
        let slot = self.dirs.entry(dir).or_default();
        match slot.get(name) {
            None => {
                slot.insert(name.to_string(), val);
                Ok(None)
            }
            Some(old) if replace => {
                if old.ftype == FileType::Directory {
                    // Nothing may displace a directory entry.
                    return Err(Errno::EISDIR);
                }
                if val.ftype == FileType::Directory {
                    // A directory may not displace a file (POSIX ENOTDIR).
                    return Err(Errno::ENOTDIR);
                }
                let old = *old;
                slot.insert(name.to_string(), val);
                Ok(Some(old))
            }
            Some(_) => Err(Errno::EEXIST),
        }
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, dir: InodeId, name: &str) -> FsResult<DentryVal> {
        if self.tombstones.contains(&dir) {
            return Err(Errno::ENOENT);
        }
        let slot = self.dirs.get_mut(&dir).ok_or(Errno::ENOENT)?;
        let val = slot.remove(name).ok_or(Errno::ENOENT)?;
        if slot.is_empty() {
            self.dirs.remove(&dir);
        }
        Ok(val)
    }

    /// Number of entries this shard holds for `dir` (the rmdir emptiness
    /// check, paper §3.3).
    pub fn count(&self, dir: InodeId) -> usize {
        self.dirs.get(&dir).map_or(0, |m| m.len())
    }

    /// This shard's full contribution to `readdir(dir)`, in name order
    /// (tests and small-directory tools; the server always pages via
    /// [`DentryShard::list_page`]).
    pub fn list(&self, dir: InodeId) -> Vec<DirEntry> {
        self.list_page(dir, None, usize::MAX).0
    }

    /// One page of this shard's contribution to `readdir(dir)`: up to
    /// `max` entries in lexicographic name order, starting strictly after
    /// `after` (`None` = from the start). Returns the page plus the
    /// continuation cursor — `Some(last name in the page)` when more
    /// entries follow, `None` when the shard is exhausted.
    ///
    /// The cursor is a name, so a page boundary is stable under
    /// concurrent mutation: entries created or removed between pages
    /// shift nothing, and an entry alive across the whole listing is
    /// returned exactly once.
    pub fn list_page(
        &self,
        dir: InodeId,
        after: Option<&str>,
        max: usize,
    ) -> (Vec<DirEntry>, Option<String>) {
        let Some(m) = self.dirs.get(&dir) else {
            return (Vec::new(), None);
        };
        let lower = match after {
            Some(name) => Bound::Excluded(name),
            None => Bound::Unbounded,
        };
        let max = max.max(1);
        let mut entries = Vec::with_capacity(max.min(m.len()));
        let mut range = m.range::<str, _>((lower, Bound::Unbounded));
        for (name, v) in range.by_ref() {
            entries.push(DirEntry {
                name: name.clone(),
                ino: v.target.num,
                server: v.target.server,
                ftype: v.ftype,
            });
            if entries.len() == max {
                break;
            }
        }
        let next = if range.next().is_some() {
            entries.last().map(|e| e.name.clone())
        } else {
            None
        };
        (entries, next)
    }

    /// Every entry this shard holds for `dir`, with full values — the
    /// migration snapshot (order is not significant).
    pub fn export(&self, dir: InodeId) -> Vec<(String, DentryVal)> {
        self.dirs.get(&dir).map_or_else(Vec::new, |m| {
            m.iter().map(|(n, v)| (n.clone(), *v)).collect()
        })
    }

    /// Installs a migrated entry unconditionally (the snapshot is
    /// authoritative — a leftover from an earlier residence of the shard
    /// here is simply overwritten). Tombstoned directories still reject
    /// installs: a committed rmdir outranks any migration.
    pub fn install(&mut self, dir: InodeId, name: &str, val: DentryVal) -> FsResult<()> {
        if self.tombstones.contains(&dir) {
            return Err(Errno::ENOENT);
        }
        self.dirs
            .entry(dir)
            .or_default()
            .insert(name.to_string(), val);
        Ok(())
    }

    /// Drops every entry of `dir` (the source's half of a migration
    /// commit), returning how many were dropped. Tracking lists are left
    /// for [`DentryShard::drain_dir_tracking`] so the caller can turn them
    /// into invalidations.
    pub fn drop_dir(&mut self, dir: InodeId) -> usize {
        self.dirs.remove(&dir).map_or(0, |m| m.len())
    }

    /// Removes every tracking slot under `dir`, returning `(name,
    /// clients)` pairs so the caller can invalidate each tracked client —
    /// the migration-commit counterpart of the per-entry
    /// [`DentryShard::take_trackers`].
    #[must_use = "drained slots' clients must be sent invalidations"]
    pub fn drain_dir_tracking(&mut self, dir: InodeId) -> Vec<(String, Vec<ClientId>)> {
        let Some(names) = self.tracking.remove(&dir) else {
            return Vec::new();
        };
        self.track_slots -= names.len();
        names
            .into_iter()
            .map(|(name, slot)| {
                (
                    name.as_ref().to_string(),
                    slot.clients.into_iter().collect(),
                )
            })
            .collect()
    }

    /// True if `dir` was removed by a committed rmdir.
    pub fn is_tombstoned(&self, dir: InodeId) -> bool {
        self.tombstones.contains(&dir)
    }

    /// Marks `dir` permanently removed. Tracking lists under the directory
    /// are dropped too: a tombstoned directory can never gain entries, so
    /// no tracked client will ever need an invalidation for it.
    pub fn tombstone(&mut self, dir: InodeId) {
        self.tombstones.insert(dir);
        self.dirs.remove(&dir);
        if let Some(names) = self.tracking.remove(&dir) {
            self.track_slots -= names.len();
        }
    }

    /// Records that `client` cached `(dir, name)`; it will receive an
    /// invalidation when the entry changes. Creating a slot beyond the
    /// capacity evicts the oldest one; the caller must deliver an
    /// invalidation to each returned eviction's clients (that is what
    /// keeps bounded tracking sound).
    #[must_use = "evicted slots' clients must be sent invalidations"]
    pub fn track(&mut self, dir: InodeId, name: &str, client: ClientId) -> Vec<EvictedTracking> {
        let names = self.tracking.entry(dir).or_default();
        match names.get_mut(name) {
            Some(slot) => {
                slot.clients.insert(client);
                return Vec::new();
            }
            None => {
                // One allocation shared by the map key and the queue key.
                let key: Arc<str> = Arc::from(name);
                let seq = self.track_fifo.admit((dir, Arc::clone(&key)));
                names.insert(
                    key,
                    TrackSlot {
                        clients: HashSet::from([client]),
                        seq,
                    },
                );
                self.track_slots += 1;
            }
        }
        // Eviction through the shared seq-tagged FIFO: a stale key (the
        // slot was consumed by take_trackers, a tombstone, or untrack —
        // possibly recreated since) can never evict the recreation.
        let mut evicted = Vec::new();
        while self.track_slots > self.track_fifo.capacity() {
            let tracking = &self.tracking;
            let Some((edir, ename)) = self
                .track_fifo
                .pop_evictable(|(d, n)| tracking.get(d).and_then(|m| m.get(&**n)).map(|s| s.seq))
            else {
                break;
            };
            let clients = self.take_all_trackers(edir, &ename);
            if !clients.is_empty() {
                evicted.push(EvictedTracking {
                    dir: edir,
                    name: ename.as_ref().to_string(),
                    clients,
                });
            }
        }
        let tracking = &self.tracking;
        self.track_fifo
            .maintain(|(d, n)| tracking.get(d).and_then(|m| m.get(&**n)).map(|s| s.seq));
        evicted
    }

    /// Removes a tracking slot outright, returning every client in it.
    fn take_all_trackers(&mut self, dir: InodeId, name: &str) -> Vec<ClientId> {
        let Some(names) = self.tracking.get_mut(&dir) else {
            return Vec::new();
        };
        let out: Vec<ClientId> = match names.remove(name) {
            Some(slot) => {
                self.track_slots -= 1;
                slot.clients.into_iter().collect()
            }
            None => Vec::new(),
        };
        if names.is_empty() {
            self.tracking.remove(&dir);
        }
        out
    }

    /// Removes and returns the clients tracking `(dir, name)`, excluding
    /// the mutating client (its library updates its own cache locally).
    pub fn take_trackers(&mut self, dir: InodeId, name: &str, except: ClientId) -> Vec<ClientId> {
        let mut out = self.take_all_trackers(dir, name);
        out.retain(|c| *c != except);
        out
    }

    /// Drops a departing client from every tracking list.
    pub fn untrack_client(&mut self, client: ClientId) {
        let mut removed = 0;
        for names in self.tracking.values_mut() {
            for slot in names.values_mut() {
                slot.clients.remove(&client);
            }
            names.retain(|_, slot| {
                let keep = !slot.clients.is_empty();
                if !keep {
                    removed += 1;
                }
                keep
            });
        }
        self.tracking.retain(|_, names| !names.is_empty());
        self.track_slots -= removed;
    }

    /// Number of live tracking slots (diagnostics and bound tests).
    pub fn tracked_slots(&self) -> usize {
        debug_assert_eq!(
            self.track_slots,
            self.tracking.values().map(|m| m.len()).sum::<usize>()
        );
        self.track_slots
    }
}

/// One replicated directory held by a server: a read-only copy of the
/// directory's full (centralized) dentry shard.
#[derive(Debug)]
struct ReplicaDir {
    /// The home server (where writes and anything unanswerable here go).
    home: crate::types::ServerId,
    /// Placement epoch of the replica set this copy belongs to.
    epoch: u64,
    /// The copied entries, ordered like [`DentryShard::dirs`] so listings
    /// page with the same lexicographic cursor.
    entries: BTreeMap<String, DentryVal>,
}

/// The read-only replica copies a server holds, **separate** from its
/// authoritative [`DentryShard`]: replica entries must never vote in an
/// rmdir emptiness check, never export into a migration snapshot, and
/// never be mutated by a client write — keeping them in their own store
/// makes all three impossible by construction.
///
/// A replica is kept converged (not merely dropped) by upsert-or-remove
/// invalidations from the home ([`ReplicaStore::apply`]), so it answers
/// stale *negatives* correctly too: after a create, the copy gains the
/// entry rather than being left to answer ENOENT. Structural events
/// (rmdir mark, migration, retirement) drop the whole copy
/// ([`ReplicaStore::drop_dir`]) — eviction before staleness.
#[derive(Debug, Default)]
pub struct ReplicaStore {
    dirs: HashMap<InodeId, ReplicaDir>,
}

impl ReplicaStore {
    /// Installs (or wholesale replaces) the copy of `dir`.
    pub fn install(
        &mut self,
        dir: InodeId,
        home: crate::types::ServerId,
        epoch: u64,
        entries: impl IntoIterator<Item = (String, DentryVal)>,
    ) {
        self.dirs.insert(
            dir,
            ReplicaDir {
                home,
                epoch,
                entries: entries.into_iter().collect(),
            },
        );
    }

    /// Whether this server holds a copy of `dir`.
    pub fn serves(&self, dir: InodeId) -> bool {
        self.dirs.contains_key(&dir)
    }

    /// Looks `name` up in the copy of `dir`. The outer `None` means the
    /// directory is not replicated here (the caller falls through to its
    /// ordinary shard/redirect path); `Some(None)` is an authoritative
    /// miss — the copy is complete, so an absent name is a real ENOENT.
    pub fn lookup(&self, dir: InodeId, name: &str) -> Option<Option<DentryVal>> {
        self.dirs.get(&dir).map(|d| d.entries.get(name).copied())
    }

    /// One page of the copy's contribution to `readdir(dir)` — the same
    /// name-cursor contract as [`DentryShard::list_page`]. `None` when the
    /// directory is not replicated here.
    pub fn list_page(
        &self,
        dir: InodeId,
        after: Option<&str>,
        max: usize,
    ) -> Option<(Vec<DirEntry>, Option<String>)> {
        let d = self.dirs.get(&dir)?;
        let lower = match after {
            Some(name) => Bound::Excluded(name),
            None => Bound::Unbounded,
        };
        let max = max.max(1);
        let mut entries = Vec::with_capacity(max.min(d.entries.len()));
        let mut range = d.entries.range::<str, _>((lower, Bound::Unbounded));
        for (name, v) in range.by_ref() {
            entries.push(DirEntry {
                name: name.clone(),
                ino: v.target.num,
                server: v.target.server,
                ftype: v.ftype,
            });
            if entries.len() == max {
                break;
            }
        }
        let next = if range.next().is_some() {
            entries.last().map(|e| e.name.clone())
        } else {
            None
        };
        Some((entries, next))
    }

    /// Applies one upsert-or-remove invalidation from the home: the copy
    /// converges to the entry's new state. Ignored when the directory is
    /// not (or no longer) replicated here — a late invalidation after a
    /// drop is harmless.
    pub fn apply(&mut self, dir: InodeId, name: &str, val: Option<DentryVal>) {
        if let Some(d) = self.dirs.get_mut(&dir) {
            match val {
                Some(v) => {
                    d.entries.insert(name.to_string(), v);
                }
                None => {
                    d.entries.remove(name);
                }
            }
        }
    }

    /// Drops the copy of `dir`, returning its `(home, epoch)` so the
    /// server can remember the redirect (replica-aware `NotOwner`: a
    /// client still routing reads here must be pointed back at the home,
    /// not answered a stale ENOENT).
    pub fn drop_dir(&mut self, dir: InodeId) -> Option<(crate::types::ServerId, u64)> {
        self.dirs.remove(&dir).map(|d| (d.home, d.epoch))
    }

    /// Number of directories replicated here (diagnostics).
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// True when no directory is replicated here.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIR: InodeId = InodeId { server: 0, num: 1 };

    fn file_val(num: u64) -> DentryVal {
        DentryVal {
            target: InodeId { server: 1, num },
            ftype: FileType::Regular,
            dist: false,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut s = DentryShard::default();
        assert!(s.insert(DIR, "a", file_val(5), false).unwrap().is_none());
        assert_eq!(s.lookup(DIR, "a").unwrap().target.num, 5);
        assert_eq!(s.count(DIR), 1);
        assert_eq!(s.remove(DIR, "a").unwrap().target.num, 5);
        assert_eq!(s.count(DIR), 0);
        assert_eq!(s.remove(DIR, "a"), Err(Errno::ENOENT));
    }

    #[test]
    fn duplicate_insert_fails_without_replace() {
        let mut s = DentryShard::default();
        s.insert(DIR, "a", file_val(5), false).unwrap();
        assert_eq!(s.insert(DIR, "a", file_val(6), false), Err(Errno::EEXIST));
        // Replace displaces and returns the old value.
        let old = s.insert(DIR, "a", file_val(7), true).unwrap().unwrap();
        assert_eq!(old.target.num, 5);
        assert_eq!(s.lookup(DIR, "a").unwrap().target.num, 7);
    }

    #[test]
    fn replace_never_displaces_directories() {
        let mut s = DentryShard::default();
        let dir_val = DentryVal {
            target: InodeId { server: 0, num: 9 },
            ftype: FileType::Directory,
            dist: true,
        };
        s.insert(DIR, "d", dir_val, false).unwrap();
        assert_eq!(s.insert(DIR, "d", file_val(5), true), Err(Errno::EISDIR));
    }

    #[test]
    fn tombstone_blocks_creation() {
        let mut s = DentryShard::default();
        s.tombstone(DIR);
        assert_eq!(s.insert(DIR, "a", file_val(5), false), Err(Errno::ENOENT));
        assert!(s.is_tombstoned(DIR));
    }

    #[test]
    fn tracking_roundtrip() {
        let mut s = DentryShard::default();
        let _ = s.track(DIR, "a", 1);
        let _ = s.track(DIR, "a", 2);
        let _ = s.track(DIR, "a", 3);
        let mut got = s.take_trackers(DIR, "a", 2);
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
        // Tracking list is consumed.
        assert!(s.take_trackers(DIR, "a", 0).is_empty());
    }

    #[test]
    fn untrack_client_purges() {
        let mut s = DentryShard::default();
        let _ = s.track(DIR, "a", 1);
        let _ = s.track(DIR, "b", 1);
        let _ = s.track(DIR, "b", 2);
        s.untrack_client(1);
        assert_eq!(s.tracked_slots(), 1);
        assert!(s.take_trackers(DIR, "a", 0).is_empty());
        assert_eq!(s.take_trackers(DIR, "b", 0), vec![2]);
        assert_eq!(s.tracked_slots(), 0);
    }

    #[test]
    fn tracking_is_bounded_under_adversarial_misses() {
        // A probe stream of distinct (absent) names: the tracking table
        // must stay within capacity, and every evicted slot must hand back
        // its clients so the server can invalidate them.
        let mut s = DentryShard::new(16);
        let mut evicted_names = Vec::new();
        for i in 0..1000 {
            for ev in s.track(DIR, &format!("ghost{i}"), 7) {
                assert_eq!(ev.clients, vec![7]);
                evicted_names.push(ev.name);
            }
            assert!(s.tracked_slots() <= 16, "tracking grew past capacity");
        }
        assert_eq!(s.tracked_slots(), 16);
        // Everything inserted was either still tracked or evicted-with-
        // notification; nothing silently vanished.
        assert_eq!(evicted_names.len(), 1000 - 16);
        assert_eq!(evicted_names[0], "ghost0");
    }

    #[test]
    fn eviction_skips_consumed_slots() {
        let mut s = DentryShard::new(2);
        let _ = s.track(DIR, "a", 1);
        let _ = s.track(DIR, "b", 2);
        // "a" is consumed by an invalidation (ADD_MAP on the name).
        assert_eq!(s.take_trackers(DIR, "a", 0), vec![1]);
        // Inserting two more evicts oldest *live* slots only: first "b",
        // then nothing (capacity holds the two new ones).
        let ev = s.track(DIR, "c", 3);
        assert!(ev.is_empty(), "capacity not exceeded yet");
        let ev = s.track(DIR, "d", 4);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "b");
        assert_eq!(ev[0].clients, vec![2]);
        assert_eq!(s.tracked_slots(), 2);
    }

    #[test]
    fn recreated_tracking_slot_not_evicted_by_stale_key() {
        // A slot is consumed (invalidation) and recreated under the same
        // name: the stale queue key must not evict the fresh slot — and in
        // particular must not fire a spurious invalidation at the client
        // that just cached the entry.
        let mut s = DentryShard::new(2);
        let _ = s.track(DIR, "a", 1);
        let _ = s.track(DIR, "b", 2);
        assert_eq!(s.take_trackers(DIR, "a", 0), vec![1]); // consume "a"
        let ev = s.track(DIR, "a", 3); // recreation: youngest slot
        assert!(ev.is_empty());
        let ev = s.track(DIR, "c", 4); // overflow: must evict "b", not "a"
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "b");
        assert_eq!(s.take_trackers(DIR, "a", 0), vec![3], "recreation survives");
    }

    #[test]
    fn tombstone_accounts_tracked_slots() {
        let mut s = DentryShard::new(8);
        let _ = s.track(DIR, "a", 1);
        let _ = s.track(DIR, "b", 1);
        s.tombstone(DIR);
        assert_eq!(s.tracked_slots(), 0);
    }

    #[test]
    fn export_install_drop_roundtrip() {
        let mut src = DentryShard::default();
        src.insert(DIR, "a", file_val(1), false).unwrap();
        src.insert(DIR, "b", file_val(2), false).unwrap();
        let snap = src.export(DIR);
        assert_eq!(snap.len(), 2);
        let mut dst = DentryShard::default();
        for (n, v) in &snap {
            dst.install(DIR, n, *v).unwrap();
        }
        assert_eq!(src.drop_dir(DIR), 2);
        assert_eq!(src.count(DIR), 0);
        assert_eq!(dst.count(DIR), 2);
        assert_eq!(dst.lookup(DIR, "a").unwrap().target.num, 1);
        // Install into a tombstoned directory is refused: a committed
        // rmdir outranks a migration.
        dst.tombstone(DIR);
        assert_eq!(dst.install(DIR, "c", file_val(3)), Err(Errno::ENOENT));
    }

    #[test]
    fn drain_dir_tracking_returns_every_tracked_client() {
        let mut s = DentryShard::default();
        let _ = s.track(DIR, "a", 1);
        let _ = s.track(DIR, "a", 2);
        let _ = s.track(DIR, "b", 3);
        let other = InodeId { server: 1, num: 4 };
        let _ = s.track(other, "x", 9);
        let mut drained = s.drain_dir_tracking(DIR);
        drained.sort();
        assert_eq!(drained.len(), 2);
        let (an, mut ac) = drained[0].clone();
        ac.sort_unstable();
        assert_eq!((an.as_str(), ac), ("a", vec![1, 2]));
        assert_eq!(drained[1], ("b".to_string(), vec![3]));
        // Unrelated directories keep their tracking, and the slot count
        // stays consistent.
        assert_eq!(s.tracked_slots(), 1);
        assert_eq!(s.take_trackers(other, "x", 0), vec![9]);
    }

    #[test]
    fn list_reports_entry_metadata() {
        let mut s = DentryShard::default();
        s.insert(DIR, "x", file_val(5), false).unwrap();
        let l = s.list(DIR);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].name, "x");
        assert_eq!(l[0].ino, 5);
        assert_eq!(l[0].server, 1);
    }

    #[test]
    fn list_page_walks_in_name_order_with_stable_cursor() {
        let mut s = DentryShard::default();
        for i in 0..10 {
            s.insert(DIR, &format!("f{i:02}"), file_val(i), false)
                .unwrap();
        }
        // Exact-boundary pages: 10 entries in pages of 4 → 4, 4, 2.
        let (p1, c1) = s.list_page(DIR, None, 4);
        assert_eq!(
            p1.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["f00", "f01", "f02", "f03"]
        );
        assert_eq!(c1.as_deref(), Some("f03"));
        let (p2, c2) = s.list_page(DIR, c1.as_deref(), 4);
        assert_eq!(p2.len(), 4);
        assert_eq!(c2.as_deref(), Some("f07"));
        let (p3, c3) = s.list_page(DIR, c2.as_deref(), 4);
        assert_eq!(
            p3.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["f08", "f09"]
        );
        assert!(c3.is_none(), "final page carries no cursor");
        // A page that ends exactly at the last entry also ends cleanly.
        let (p, c) = s.list_page(DIR, Some("f07"), 2);
        assert_eq!(p.len(), 2);
        assert!(c.is_none());
    }

    #[test]
    fn list_page_cursor_survives_concurrent_mutation() {
        let mut s = DentryShard::default();
        for i in 0..6 {
            s.insert(DIR, &format!("f{i}"), file_val(i), false).unwrap();
        }
        let (p1, c1) = s.list_page(DIR, None, 3); // f0 f1 f2
        assert_eq!(c1.as_deref(), Some("f2"));
        // Mutations on both sides of the cursor between pages.
        s.remove(DIR, "f1").unwrap(); // behind: already returned
        s.remove(DIR, "f4").unwrap(); // ahead: must simply not appear
        s.insert(DIR, "f0a", file_val(90), false).unwrap(); // behind: missed, fine
        s.insert(DIR, "f5a", file_val(91), false).unwrap(); // ahead: appears
        let (p2, c2) = s.list_page(DIR, c1.as_deref(), 10);
        let names: Vec<&str> = p1.iter().chain(&p2).map(|e| e.name.as_str()).collect();
        // Entries alive for the whole listing (f0 f2 f3 f5) appear exactly
        // once; nothing is duplicated, nothing shifts.
        for alive in ["f0", "f2", "f3", "f5"] {
            assert_eq!(names.iter().filter(|n| **n == alive).count(), 1);
        }
        assert!(names.contains(&"f5a"));
        assert!(c2.is_none());
    }
}
