//! Server-side inode table.

use fsapi::{Errno, FileType, FsResult, Mode};
use nccmem::BlockId;

/// Type-specific inode state.
#[derive(Debug)]
pub enum InodeKind {
    /// Regular file: ordered block list plus byte size (paper §3.2: the
    /// server responds to `open` with "the block-list associated with that
    /// file").
    File {
        /// Buffer-cache blocks backing the file, in order.
        blocks: Vec<BlockId>,
        /// Current size in bytes.
        size: u64,
    },
    /// Directory: entries live in the dentry shards; the inode (at the
    /// *home server*) records the distribution flag and anchors the rmdir
    /// serialization (paper §3.3).
    Dir {
        /// Whether entries are hashed across all servers.
        dist: bool,
    },
    /// Pipe: buffer state lives in the pipe table.
    Pipe,
}

/// One inode.
#[derive(Debug)]
pub struct Inode {
    /// Per-server inode number.
    pub num: u64,
    /// Permission bits.
    pub mode: Mode,
    /// Hard link count.
    pub nlink: u32,
    /// Open descriptor handles referencing this inode (across all clients).
    /// "The server responsible for that file's inode tracks the open file
    /// descriptors and associated reference count" (paper §3.4).
    pub open_fds: u32,
    /// Unlinked while open: data stays valid until the last close
    /// (paper §3.4).
    pub orphaned: bool,
    /// Blocks cut off by truncate, freed only when `open_fds` drops to zero
    /// so a concurrent writer cannot scribble on a reallocated block
    /// (paper §3.2).
    pub defer_free: Vec<BlockId>,
    /// Type-specific state.
    pub kind: InodeKind,
}

impl Inode {
    /// The inode's file type.
    pub fn ftype(&self) -> FileType {
        match self.kind {
            InodeKind::File { .. } => FileType::Regular,
            InodeKind::Dir { .. } => FileType::Directory,
            InodeKind::Pipe => FileType::Pipe,
        }
    }

    /// File size (0 for non-files).
    pub fn size(&self) -> u64 {
        match &self.kind {
            InodeKind::File { size, .. } => *size,
            _ => 0,
        }
    }

    /// Block count (0 for non-files).
    pub fn nblocks(&self) -> u64 {
        match &self.kind {
            InodeKind::File { blocks, .. } => blocks.len() as u64,
            _ => 0,
        }
    }
}

/// The per-server inode table with scalable local number allocation
/// (paper §3.6.4: per-server inode numbers avoid global coordination).
#[derive(Debug, Default)]
pub struct InodeTable {
    map: std::collections::HashMap<u64, Inode>,
    next: u64,
}

impl InodeTable {
    /// Creates an empty table; numbers start at `first` (server 0 reserves
    /// number 1 for the root directory).
    pub fn new(first: u64) -> Self {
        InodeTable {
            map: Default::default(),
            next: first,
        }
    }

    /// Allocates a fresh inode.
    pub fn alloc(&mut self, mode: Mode, kind: InodeKind) -> u64 {
        let num = self.next;
        self.next += 1;
        self.insert_at(num, mode, kind);
        num
    }

    /// Installs an inode at a fixed number (root bootstrap).
    pub fn insert_at(&mut self, num: u64, mode: Mode, kind: InodeKind) {
        self.next = self.next.max(num + 1);
        let prev = self.map.insert(
            num,
            Inode {
                num,
                mode,
                nlink: 1,
                open_fds: 0,
                orphaned: false,
                defer_free: Vec::new(),
                kind,
            },
        );
        debug_assert!(prev.is_none(), "inode {num} double-allocated");
    }

    /// Looks up an inode.
    pub fn get(&self, num: u64) -> FsResult<&Inode> {
        self.map.get(&num).ok_or(Errno::ENOENT)
    }

    /// Looks up an inode mutably.
    pub fn get_mut(&mut self, num: u64) -> FsResult<&mut Inode> {
        self.map.get_mut(&num).ok_or(Errno::ENOENT)
    }

    /// Removes an inode, returning it (for block reclamation).
    pub fn remove(&mut self, num: u64) -> Option<Inode> {
        self.map.remove(&num)
    }

    /// Number of live inodes (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no inodes exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_dense_and_unique() {
        let mut t = InodeTable::new(2);
        let a = t.alloc(
            Mode::default(),
            InodeKind::File {
                blocks: vec![],
                size: 0,
            },
        );
        let b = t.alloc(Mode::default(), InodeKind::Dir { dist: true });
        assert_eq!(a, 2);
        assert_eq!(b, 3);
        assert_eq!(t.get(a).unwrap().ftype(), FileType::Regular);
        assert_eq!(t.get(b).unwrap().ftype(), FileType::Directory);
        assert!(matches!(t.get(99), Err(Errno::ENOENT)));
    }

    #[test]
    fn insert_at_bumps_next() {
        let mut t = InodeTable::new(1);
        t.insert_at(1, Mode::default(), InodeKind::Dir { dist: false });
        let n = t.alloc(Mode::default(), InodeKind::Pipe);
        assert_eq!(n, 2);
    }

    #[test]
    fn size_and_blocks() {
        let mut t = InodeTable::new(1);
        let n = t.alloc(
            Mode::default(),
            InodeKind::File {
                blocks: vec![BlockId(1), BlockId(2)],
                size: 5000,
            },
        );
        let ino = t.get(n).unwrap();
        assert_eq!(ino.size(), 5000);
        assert_eq!(ino.nblocks(), 2);
    }

    #[test]
    fn remove_returns_inode() {
        let mut t = InodeTable::new(1);
        let n = t.alloc(Mode::default(), InodeKind::Pipe);
        assert!(t.remove(n).is_some());
        assert!(t.remove(n).is_none());
        assert!(t.is_empty());
    }
}
