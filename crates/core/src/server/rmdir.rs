//! Server-side state for the three-phase directory removal protocol.
//!
//! Paper §3.3: removing a distributed directory must be atomic with respect
//! to concurrent file creation. Hare runs a two-phase commit (mark for
//! deletion, then COMMIT or ABORT) preceded by a serialization phase at the
//! directory's *home server* so concurrent `rmdir`s of one directory cannot
//! deadlock. While a directory is marked, operations on it are **delayed**
//! (their envelopes parked here) until the coordinator resolves the
//! outcome.

use crate::proto::ServerMsg;
use crate::types::InodeId;
use std::collections::{HashMap, VecDeque};

/// A parked serialization-lock waiter.
#[derive(Debug)]
pub struct LockWaiter {
    /// Reply channel for the eventual `RmdirLocked` grant.
    pub reply: msg::Sender<crate::proto::WireReply>,
    /// Core of the waiting client.
    pub src_core: usize,
}

/// A directory operation delayed by a deletion mark, replayed on resolve.
pub type ParkedOp = msg::Envelope<ServerMsg>;

/// Rmdir protocol state on one server.
#[derive(Debug, Default)]
pub struct RmdirState {
    /// Home-server serialization locks: present key = locked; the queue
    /// holds waiters for the lock.
    locks: HashMap<InodeId, VecDeque<LockWaiter>>,
    /// Directories marked for deletion on this server, with the operations
    /// delayed behind the mark.
    marks: HashMap<InodeId, Vec<ParkedOp>>,
}

impl RmdirState {
    /// Tries to take the serialization lock for `dir`. Returns true if
    /// granted immediately; otherwise parks `waiter`.
    pub fn lock(&mut self, dir: InodeId, waiter: impl FnOnce() -> LockWaiter) -> bool {
        match self.locks.entry(dir) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(VecDeque::new());
                true
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().push_back(waiter());
                false
            }
        }
    }

    /// Releases the serialization lock; returns the next waiter to grant,
    /// if any (the lock stays held on its behalf).
    pub fn unlock(&mut self, dir: InodeId) -> Option<LockWaiter> {
        let queue = self.locks.get_mut(&dir)?;
        match queue.pop_front() {
            Some(w) => Some(w),
            None => {
                self.locks.remove(&dir);
                None
            }
        }
    }

    /// True if `dir` is currently marked for deletion on this server.
    pub fn is_marked(&self, dir: InodeId) -> bool {
        self.marks.contains_key(&dir)
    }

    /// Marks `dir` for deletion. Returns false if already marked (protocol
    /// violation guarded by the serialization phase).
    pub fn mark(&mut self, dir: InodeId) -> bool {
        if self.marks.contains_key(&dir) {
            return false;
        }
        self.marks.insert(dir, Vec::new());
        true
    }

    /// Parks an operation behind `dir`'s mark.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is not marked (callers check first).
    pub fn park(&mut self, dir: InodeId, op: ParkedOp) {
        self.marks
            .get_mut(&dir)
            .expect("park requires an existing mark")
            .push(op);
    }

    /// Removes the mark (COMMIT or ABORT), returning the delayed operations
    /// for replay.
    pub fn resolve(&mut self, dir: InodeId) -> Vec<ParkedOp> {
        self.marks.remove(&dir).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    const DIR: InodeId = InodeId { server: 0, num: 7 };

    fn waiter() -> LockWaiter {
        let (tx, _rx) = msg::channel(msg::MsgStats::shared());
        LockWaiter {
            reply: tx,
            src_core: 0,
        }
    }

    #[test]
    fn lock_grants_then_queues() {
        let mut s = RmdirState::default();
        assert!(s.lock(DIR, waiter));
        assert!(!s.lock(DIR, waiter), "second locker must queue");
        // Unlock hands the lock to the waiter.
        assert!(s.unlock(DIR).is_some());
        // The waiter now holds it; releasing again frees the lock.
        assert!(s.unlock(DIR).is_none());
        assert!(s.lock(DIR, waiter));
    }

    #[test]
    fn mark_park_resolve() {
        let mut s = RmdirState::default();
        assert!(!s.is_marked(DIR));
        assert!(s.mark(DIR));
        assert!(!s.mark(DIR), "double mark rejected");
        assert!(s.is_marked(DIR));

        let (tx, _rx) = msg::channel(msg::MsgStats::shared());
        s.park(
            DIR,
            msg::Envelope {
                payload: ServerMsg {
                    req: Request::ListShard {
                        dir: DIR,
                        after: None,
                        max: 0,
                    },
                    reply: tx,
                    span: None,
                },
                deliver_at: 5,
                src_core: 1,
            },
        );
        let parked = s.resolve(DIR);
        assert_eq!(parked.len(), 1);
        assert!(!s.is_marked(DIR));
        assert!(s.resolve(DIR).is_empty());
    }

    #[test]
    #[should_panic]
    fn park_without_mark_panics() {
        let mut s = RmdirState::default();
        let (tx, _rx) = msg::channel(msg::MsgStats::shared());
        s.park(
            DIR,
            msg::Envelope {
                payload: ServerMsg {
                    req: Request::ListShard {
                        dir: DIR,
                        after: None,
                        max: 0,
                    },
                    reply: tx,
                    span: None,
                },
                deliver_at: 0,
                src_core: 0,
            },
        );
    }
}
