//! Server-side open file descriptor tracking.
//!
//! Hare's *hybrid* descriptor tracking (paper §3.4): the server responsible
//! for a file's inode records every open descriptor and its reference
//! count, so unlinked files stay valid until the last close. The offset is
//! client-held ("local") while one process owns the descriptor and migrates
//! here ("shared") when the descriptor is shared by fork/spawn/dup.

use fsapi::OpenFlags;

/// What an open descriptor handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdKind {
    /// A regular file inode on this server.
    File,
    /// The read end of a pipe on this server.
    PipeRead,
    /// The write end of a pipe on this server.
    PipeWrite,
}

/// One server-side descriptor record.
#[derive(Debug)]
pub struct ServerFd {
    /// Local inode number (file) or pipe number.
    pub ino: u64,
    /// File or pipe end.
    pub kind: FdKind,
    /// Open flags at descriptor creation.
    pub flags: OpenFlags,
    /// Processes referencing this descriptor.
    pub refs: u32,
    /// `Some(offset)`: the descriptor is in **shared** state and the server
    /// owns the offset. `None`: local state, the client owns it.
    pub shared_offset: Option<u64>,
    /// Set when `refs` has dropped back to one: the next shared operation
    /// returns the offset to the surviving client (demotion, paper §3.4).
    pub demote_armed: bool,
}

/// The per-server descriptor table.
#[derive(Debug, Default)]
pub struct FdTable {
    map: std::collections::HashMap<u64, ServerFd>,
    next: u64,
}

impl FdTable {
    /// Opens a new descriptor record in local state with one reference.
    pub fn open(&mut self, ino: u64, kind: FdKind, flags: OpenFlags) -> u64 {
        let id = self.next;
        self.next += 1;
        self.map.insert(
            id,
            ServerFd {
                ino,
                kind,
                flags,
                refs: 1,
                shared_offset: None,
                demote_armed: false,
            },
        );
        id
    }

    /// Looks up a descriptor.
    pub fn get(&self, id: u64) -> Option<&ServerFd> {
        self.map.get(&id)
    }

    /// Looks up a descriptor mutably.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut ServerFd> {
        self.map.get_mut(&id)
    }

    /// Drops one reference; returns the record if it reached zero (caller
    /// finishes inode/pipe bookkeeping). Arms demotion at exactly one
    /// remaining reference.
    pub fn close(&mut self, id: u64) -> Option<ServerFd> {
        let fd = self.map.get_mut(&id)?;
        fd.refs -= 1;
        if fd.refs == 0 {
            return self.map.remove(&id);
        }
        if fd.refs == 1 && fd.shared_offset.is_some() {
            fd.demote_armed = true;
        }
        None
    }

    /// Adds a reference, migrating the offset to the server on the first
    /// share.
    pub fn incref(&mut self, id: u64, offset: u64) -> bool {
        match self.map.get_mut(&id) {
            Some(fd) => {
                fd.refs += 1;
                fd.demote_armed = false;
                if fd.shared_offset.is_none() {
                    fd.shared_offset = Some(offset);
                }
                true
            }
            None => false,
        }
    }

    /// Number of live descriptors (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no descriptors are open on this server.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_lifecycle() {
        let mut t = FdTable::default();
        let id = t.open(7, FdKind::File, OpenFlags::RDWR);
        assert_eq!(t.get(id).unwrap().refs, 1);
        assert!(t.get(id).unwrap().shared_offset.is_none(), "starts local");

        // Share it: offset migrates to the server.
        assert!(t.incref(id, 123));
        let fd = t.get(id).unwrap();
        assert_eq!(fd.refs, 2);
        assert_eq!(fd.shared_offset, Some(123));

        // First close leaves one reference and arms demotion.
        assert!(t.close(id).is_none());
        let fd = t.get(id).unwrap();
        assert_eq!(fd.refs, 1);
        assert!(fd.demote_armed);

        // Last close removes the record.
        let gone = t.close(id).unwrap();
        assert_eq!(gone.ino, 7);
        assert!(t.is_empty());
    }

    #[test]
    fn second_incref_keeps_original_offset() {
        let mut t = FdTable::default();
        let id = t.open(1, FdKind::File, OpenFlags::RDONLY);
        t.incref(id, 10);
        t.incref(id, 99);
        assert_eq!(t.get(id).unwrap().shared_offset, Some(10));
        assert_eq!(t.get(id).unwrap().refs, 3);
    }

    #[test]
    fn incref_clears_demote() {
        let mut t = FdTable::default();
        let id = t.open(1, FdKind::File, OpenFlags::RDONLY);
        t.incref(id, 0);
        t.close(id);
        assert!(t.get(id).unwrap().demote_armed);
        t.incref(id, 5);
        assert!(!t.get(id).unwrap().demote_armed);
    }

    #[test]
    fn unknown_ids() {
        let mut t = FdTable::default();
        assert!(t.get(99).is_none());
        assert!(!t.incref(99, 0));
        assert!(t.close(99).is_none());
    }
}
