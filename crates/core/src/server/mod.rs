//! The Hare file server.
//!
//! One server runs per configured server core (paper Figure 2). Each server
//! owns: a shard of every distributed directory (plus all entries of
//! centralized directories homed here), the inodes it allocated, their open
//! descriptors, its partition of the shared buffer cache, and its pipes.
//! Servers never talk to each other — all multi-server operations are
//! composed by client libraries (paper §3.3).
//!
//! The server is single-threaded: its state needs no locks, and requests
//! serialize on its core's virtual clock, which is exactly the queueing
//! behaviour the evaluation measures.

pub mod buffer;
pub mod dentry;
pub mod fdtable;
pub mod inode;
pub mod pipes;
pub mod rmdir;

use crate::machine::Machine;
use crate::otrace::Cause;
use crate::placement::RoutingTable;
use crate::proto::{
    base_service_cost, DemoteInfo, Invalidation, MarkResult, MigEntry, OpenResult, PathEntry,
    Reply, Request, ServerMsg, TerminalOp, TerminalReply, WireReply,
};
use crate::types::{ClientId, FdId, InodeId, ServerId};
use buffer::BlockAllocator;
use dentry::{DentryShard, DentryVal, ReplicaStore};
use fdtable::{FdKind, FdTable};
use fsapi::{Errno, FileType, FsResult, Mode, OpenFlags, Stat, Whence};
use inode::{InodeKind, InodeTable};
use nccmem::{BlockId, BLOCK_SIZE};
use pipes::{Parked, ParkedPayload, Pipe, PipeTable, Wakeup};
use rmdir::{LockWaiter, RmdirState};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-request side effects gathered during dispatch and applied once the
/// request's completion time is known.
#[derive(Default)]
struct Ctx {
    /// Additional service cycles beyond the request's base cost.
    extra: u64,
    /// Base cycles refunded for work that never ran (batch entries skipped
    /// by fail-fast or rejected as non-batchable). Always a subset of the
    /// request's base cost.
    refund: u64,
    /// Parked replies released by this request (pipe progress, lock
    /// hand-off).
    wake: Vec<Wakeup>,
    /// A chained [`Request::LookupPath`] remainder to forward to a peer
    /// server, carrying the client's reply channel as the continuation.
    /// Mutually exclusive with an inline reply.
    forward: Option<(ServerId, Request)>,
    /// Directory-cache invalidations to deliver (client, message).
    invals: Vec<(ClientId, Invalidation)>,
    /// One-way server→server sends (replica invalidation and eviction):
    /// plain sends with no reply expected, delivered after the reply like
    /// the client invalidations — a replica is just a very large tracked
    /// client, and these are its callbacks.
    peer_sends: Vec<(ServerId, Request)>,
    /// Operations delayed behind a deletion mark, replayed after COMMIT or
    /// ABORT resolved it.
    replays: Vec<rmdir::ParkedOp>,
}

/// Construction parameters for one server.
pub struct ServerParams {
    /// Server index.
    pub id: ServerId,
    /// Core the server runs on.
    pub core: usize,
    /// First DRAM block of this server's buffer-cache partition.
    pub partition_start: usize,
    /// Partition length in blocks.
    pub partition_len: usize,
    /// Root directory distribution flag (server 0 creates the root).
    pub root_distributed: bool,
    /// Pipe capacity in bytes.
    pub pipe_capacity: usize,
    /// Whether clients cache negative dentries (mirrors
    /// `Techniques::neg_dircache`): gates miss tracking and fresh-insert
    /// invalidations so the ablation truly restores baseline behavior.
    pub neg_dircache: bool,
    /// Capacity of the `(dir, name)` client-tracking table; evictions
    /// beyond it invalidate the tracked clients first (see
    /// [`dentry::DentryShard`]).
    pub track_capacity: usize,
    /// Handles to every server (self included), for forwarding chained
    /// [`Request::LookupPath`] remainders to the next component's owner.
    pub peers: Arc<Vec<crate::rpc::ServerHandle>>,
    /// Whether the directory-distribution technique is on (mirrors
    /// `Techniques::distribution`): the chained walk must route with the
    /// same effective distribution flags the clients use.
    pub distribution: bool,
    /// Stripe unit in bytes for the striping policy (multiple of the block
    /// size). Only consulted when `stripe_width >= 2`.
    pub stripe_unit: u64,
    /// Effective stripe width (already normalized by the instance: the
    /// `striping` toggle off is width 1, the paper's all-blocks-home
    /// layout).
    pub stripe_width: usize,
    /// Effective per-directory shard width (already normalized by the
    /// instance to `1..=nservers`; `nservers` is the paper's every-server
    /// spread). The chained walk must route with the same width the
    /// clients use.
    pub dir_shard_width: usize,
    /// Upper bound on the entries one `ListShard` (or fused `List`
    /// terminal) reply carries; larger shards page with a continuation
    /// cursor.
    pub list_page_max: usize,
}

/// One Hare file server.
pub struct Server {
    id: ServerId,
    core: usize,
    machine: Arc<Machine>,
    inodes: InodeTable,
    dentries: DentryShard,
    fds: FdTable,
    alloc: BlockAllocator,
    pipes: PipeTable,
    rmdir: RmdirState,
    clients: HashMap<ClientId, (msg::Sender<Invalidation>, usize)>,
    pipe_capacity: usize,
    neg_dircache: bool,
    peers: Arc<Vec<crate::rpc::ServerHandle>>,
    distribution: bool,
    /// Striping knobs for the extent-map policy attached to opened files
    /// (see [`crate::placement::extent_for`]). Width 1 means no extent
    /// maps are ever handed out — the paper's layout.
    stripe_unit: u64,
    stripe_width: usize,
    /// Per-directory shard width for routing (see [`ServerParams`]).
    dir_shard_width: usize,
    /// Page bound for shard listings (see [`ServerParams`]).
    list_page_max: usize,
    /// This server's copy of the epoch-versioned routing table. Starts at
    /// epoch 0 (pure hash); updated by the migrations this server takes
    /// part in. Entry operations for a directory whose shard migrated away
    /// answer [`Reply::NotOwner`]; chain hops re-forward instead.
    routing: RoutingTable,
    /// Directories whose shard is mid-migration (between BEGIN and
    /// COMMIT/ABORT), with the operations parked behind the copy window —
    /// the same delay discipline as an rmdir deletion mark.
    migrating: HashMap<InodeId, Vec<rmdir::ParkedOp>>,
    /// Read-only replica copies this server holds for other servers'
    /// centralized directories (the read side of dynamic placement).
    /// Strictly separate from `dentries`: replica entries never vote in
    /// rmdir emptiness checks, never export into migration snapshots, and
    /// never take client writes.
    replicas: ReplicaStore,
    /// Operations served since the last `LoadReport { reset: true }` (the
    /// rebalancer's coarse signal).
    ops_served: u64,
    /// Entry operations per directory (the rebalancer's hot-directory
    /// signal). Bounded: beyond [`DIR_OPS_CAPACITY`] distinct directories,
    /// new ones go uncounted until a reset — load tracking must never be a
    /// memory hole.
    dir_ops: HashMap<InodeId, u64>,
    /// Entry *writes* per directory (ADD_MAP / RM_MAP / coalesced
    /// creates), the replicate-vs-migrate signal. Bounded with and reset
    /// alongside `dir_ops`.
    dir_writes: HashMap<InodeId, u64>,
    /// Virtual time the current busy period is anchored at (the last
    /// phase barrier).
    anchor: u64,
    /// Service cycles dispensed since `anchor`.
    acc: u64,
    stop: bool,
}

impl Server {
    /// Creates a server; server 0 bootstraps the root directory inode.
    pub fn new(machine: Arc<Machine>, params: ServerParams) -> Self {
        let mut inodes = InodeTable::new(2);
        if params.id == InodeId::ROOT.server {
            inodes.insert_at(
                InodeId::ROOT.num,
                Mode(0o755),
                InodeKind::Dir {
                    dist: params.root_distributed,
                },
            );
        }
        Server {
            id: params.id,
            core: params.core,
            machine,
            inodes,
            dentries: DentryShard::new(params.track_capacity),
            fds: FdTable::default(),
            alloc: BlockAllocator::new(params.partition_start, params.partition_len),
            pipes: PipeTable::default(),
            rmdir: RmdirState::default(),
            clients: HashMap::new(),
            pipe_capacity: params.pipe_capacity,
            neg_dircache: params.neg_dircache,
            peers: params.peers,
            distribution: params.distribution,
            stripe_unit: params.stripe_unit,
            stripe_width: params.stripe_width,
            dir_shard_width: params.dir_shard_width,
            list_page_max: params.list_page_max.max(1),
            routing: RoutingTable::new(),
            migrating: HashMap::new(),
            replicas: ReplicaStore::default(),
            ops_served: 0,
            dir_ops: HashMap::new(),
            dir_writes: HashMap::new(),
            anchor: 0,
            acc: 0,
            stop: false,
        }
    }

    /// Runs the request loop until shutdown. Consumes the server.
    pub fn run(mut self, rx: msg::Receiver<ServerMsg>) {
        while !self.stop {
            match rx.recv() {
                Ok(env) => self.handle(env),
                Err(_) => break,
            }
        }
    }

    /// Serves one request: the server's core absorbs the executed work and
    /// the completion time reflects queueing at a saturated server.
    ///
    /// Completion is `max(arrival + service, anchor + accumulated
    /// service)`: when the server is saturated (requests keep it
    /// continuously busy since the last phase barrier) the accumulated
    /// term dominates and requests queue — the `pfind sparse` bottleneck.
    /// When the server has spare capacity, completion tracks the arrival.
    /// Deliberately *not* `max(now, arrival) + service`: real threads
    /// deliver messages out of virtual-time order, and a ratcheting `now`
    /// would let one late-arriving message inflate every later-processed
    /// one (the simulation artifact, not queueing).
    fn serve(&mut self, arrival: u64, service: u64) -> u64 {
        let sync = self.machine.sync_time();
        if sync > self.anchor {
            self.anchor = sync;
            self.acc = 0;
        }
        self.acc += service;
        self.machine.busy.advance(self.core, service);
        let done = (arrival + service).max(self.anchor + self.acc);
        self.machine.note(done);
        done
    }

    /// The directory an operation must be delayed on while marked for
    /// deletion (paper §3.3: "file creation and other directory operations
    /// are delayed until the server receives a COMMIT or ABORT message").
    fn marked_dir_of(req: &Request) -> Option<InodeId> {
        match req {
            Request::Lookup { dir, .. }
            | Request::LookupOpen { dir, .. }
            | Request::LookupStat { dir, .. }
            | Request::LookupPath { dir, .. }
            | Request::AddMap { dir, .. }
            | Request::RmMap { dir, .. }
            | Request::ListShard { dir, .. } => Some(*dir),
            Request::Create {
                add_map: Some((dir, _)),
                ..
            } => Some(*dir),
            // A migration of a directory being rmdir'd waits the removal
            // out (and fails cleanly on its tombstone if it commits).
            Request::MigrateBegin { dir } => Some(*dir),
            _ => None,
        }
    }

    /// The directory an operation must be delayed on while its shard is
    /// mid-migration: the rmdir set plus the rmdir protocol's own
    /// shard-inspecting messages (their emptiness checks must not observe
    /// a half-copied shard).
    fn migrating_dir_of(req: &Request) -> Option<InodeId> {
        match req {
            Request::RmdirMark { dir } | Request::RmdirCentral { dir } => Some(*dir),
            other => Self::marked_dir_of(other),
        }
    }

    /// The marked-or-migrating directory this request (or, for a batch,
    /// any of its entries) must be parked on, if any. Parking the whole
    /// batch keeps the in-order execution guarantee: entries never reorder
    /// around a deletion mark or a migration window.
    fn park_dir_of(&self, req: &Request) -> Option<InodeId> {
        match req {
            Request::Batch { reqs, .. } => reqs.iter().find_map(|r| self.park_dir_of(r)),
            other => Self::marked_dir_of(other)
                .filter(|d| self.rmdir.is_marked(*d))
                .or_else(|| {
                    Self::migrating_dir_of(other).filter(|d| self.migrating.contains_key(d))
                }),
        }
    }

    /// Processes one request envelope end-to-end (including virtual-time
    /// accounting and reply delivery).
    pub fn handle(&mut self, env: msg::Envelope<ServerMsg>) {
        // Delay operations on directories marked for deletion or caught in
        // a migration copy window.
        if let Some(dir) = self.park_dir_of(&env.payload.req) {
            // The server still pays for receiving and inspecting the
            // message.
            let cost = self.machine.cost.msg_recv + 100;
            self.serve(env.deliver_at, cost);
            // Mark the wait in the op's span tree; the eventual replay
            // attaches as a later sibling ([`Tracer::replay_ctx`]).
            self.machine
                .otrace
                .park_leaf(env.payload.span, self.core, env.deliver_at);
            if self.rmdir.is_marked(dir) {
                self.rmdir.park(dir, env);
            } else {
                self.migrating
                    .get_mut(&dir)
                    .expect("park_dir_of saw the migration")
                    .push(env);
            }
            return;
        }

        let deliver_at = env.deliver_at;
        let src_core = env.src_core;
        let ServerMsg { req, reply, span } = env.payload;
        if matches!(req, Request::Shutdown) {
            self.stop = true;
            return;
        }
        // The server side of the op's span tree: a child span from the
        // request's context, charged with every send this handling issues
        // (reply, chain forward, invalidations, replica callbacks).
        let traced = self
            .machine
            .otrace
            .begin_from(span, req.name(), self.core, deliver_at);
        let base = base_service_cost(&req);
        let mut ctx = Ctx::default();
        let out = self.dispatch(req, src_core, &reply, &mut ctx);

        let mut cost = self.machine.cost.msg_recv + (base + ctx.extra).saturating_sub(ctx.refund);
        if out.is_some() || ctx.forward.is_some() {
            cost += self.machine.cost.msg_send;
        }
        cost += (ctx.wake.len() + ctx.invals.len() + ctx.peer_sends.len()) as u64
            * self.machine.cost.msg_send;
        if self.machine.timeshared(self.core) {
            cost += self.machine.cost.ctx_switch;
        }
        let done = self.serve(deliver_at, cost);

        if let Some(r) = out {
            if reply
                .send(
                    r,
                    done + self.machine.latency(self.core, src_core),
                    self.core,
                )
                .is_ok()
            {
                self.machine.otrace.charge_send();
            }
        } else if let Some((peer, fwd)) = ctx.forward.take() {
            // Chained LookupPath hand-off: the remainder travels to the
            // next owner with the client's reply channel as continuation.
            // `src_core` is preserved so the final server's reply latency
            // targets the originating client, not this hop.
            let fspan = self.machine.otrace.send_ctx(Cause::ChainHop);
            let h = &self.peers[peer as usize];
            let _ = h.tx.send(
                ServerMsg {
                    req: fwd,
                    reply,
                    span: fspan,
                },
                done + self.machine.latency(self.core, h.core),
                src_core,
            );
        }
        for (tx, wsrc, wr) in ctx.wake.drain(..) {
            if tx
                .send(wr, done + self.machine.latency(self.core, wsrc), self.core)
                .is_ok()
            {
                self.machine.otrace.charge_send();
            }
        }
        for (client, inv) in ctx.invals.drain(..) {
            if let Some((tx, ccore)) = self.clients.get(&client) {
                // Atomic delivery: the invalidation is in the client's queue
                // when this send returns; the server never waits for an ack
                // (paper §3.6.1).
                self.machine
                    .events
                    .invalidations
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if tx
                    .send(
                        inv,
                        done + self.machine.latency(self.core, *ccore),
                        self.core,
                    )
                    .is_ok()
                {
                    self.machine
                        .otrace
                        .leaf_send(Cause::Inval, "inval", self.core, done);
                }
            }
        }
        for (peer, preq) in ctx.peer_sends.drain(..) {
            // One-way replica callback: like a chain forward it is a plain
            // send (atomic delivery, no ack awaited), but no reply channel
            // travels with it — the throwaway receiver is dropped and the
            // peer's inline reply evaporates harmlessly.
            let pspan = self.machine.otrace.send_ctx(Cause::Inval);
            let (tx, _rx) = crate::rpc::oneway_reply_slot(&self.machine);
            let h = &self.peers[peer as usize];
            let _ = h.tx.send(
                ServerMsg {
                    req: preq,
                    reply: tx,
                    span: pspan,
                },
                done + self.machine.latency(self.core, h.core),
                self.core,
            );
        }
        if traced {
            self.machine.otrace.end_span(done);
        }
        // Replay operations that were delayed behind a resolved mark.
        for parked in ctx.replays {
            self.machine
                .events
                .park_replays
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let arrival = parked.deliver_at.max(done);
            let mut payload = parked.payload;
            // Re-attach the parked op's span at a fresh child position so
            // the tree shows the park and the replay as siblings.
            if let Some(rspan) = self.machine.otrace.replay_ctx(payload.span) {
                payload.span = Some(rspan);
            }
            self.handle(msg::Envelope {
                payload,
                deliver_at: arrival,
                src_core: parked.src_core,
            });
        }
    }

    /// Executes a request against server state. Returns `None` when the
    /// reply was parked for later (blocked pipe I/O, rmdir lock wait).
    fn dispatch(
        &mut self,
        req: Request,
        src_core: usize,
        reply: &msg::Sender<WireReply>,
        ctx: &mut Ctx,
    ) -> Option<WireReply> {
        self.note_op(&req);
        match req {
            Request::Register {
                client,
                core,
                inval,
            } => {
                self.clients.insert(client, (inval, core));
                Some(Ok(Reply::Unit))
            }
            Request::Unregister { client } => {
                self.clients.remove(&client);
                self.dentries.untrack_client(client);
                Some(Ok(Reply::Unit))
            }
            Request::Lookup { client, dir, name } => Some(self.op_lookup(client, dir, &name, ctx)),
            Request::LookupOpen {
                client,
                dir,
                name,
                flags,
            } => Some(self.op_lookup_open(client, dir, &name, flags, ctx)),
            Request::LookupStat { client, dir, name } => {
                Some(self.op_lookup_stat(client, dir, &name, ctx))
            }
            Request::LookupPath {
                client,
                dir,
                dist,
                comps,
                acc,
                hops,
                terminal,
            } => self.op_lookup_path(client, dir, dist, comps, acc, hops, terminal, ctx),
            Request::AddMap {
                client,
                dir,
                name,
                target,
                ftype,
                dist,
                replace,
            } => Some(self.op_add_map(client, dir, &name, target, ftype, dist, replace, ctx)),
            Request::RmMap {
                client,
                dir,
                name,
                must_be_file,
            } => Some(self.op_rm_map(client, dir, &name, must_be_file, ctx)),
            Request::ListShard { dir, after, max } => {
                Some(self.op_list_shard(dir, after.as_deref(), max, ctx))
            }
            Request::MigrateBegin { dir } => Some(self.op_migrate_begin(dir, ctx)),
            Request::MigrateInstall {
                dir,
                epoch,
                entries,
            } => Some(self.op_migrate_install(dir, epoch, entries, ctx)),
            Request::MigrateCommit { dir, epoch, to } => {
                Some(self.op_migrate_commit(dir, epoch, to, ctx))
            }
            Request::MigrateAbort { dir } => {
                ctx.replays = self.migrating.remove(&dir).unwrap_or_default();
                Some(Ok(Reply::Unit))
            }
            Request::LoadReport { reset } => Some(self.op_load_report(reset)),
            Request::ReplicaExport { dir, replica } => {
                Some(self.op_replica_export(dir, replica, ctx))
            }
            Request::ReplicaInstall {
                dir,
                home,
                epoch,
                entries,
            } => Some(self.op_replica_install(dir, home, epoch, entries, ctx)),
            Request::ReplicaDrop { dir, replica } => Some(self.op_replica_drop(dir, replica)),
            Request::ReplicaInval { dir, name, val } => {
                self.replicas.apply(
                    dir,
                    &name,
                    val.map(|(target, ftype, dist)| DentryVal {
                        target,
                        ftype,
                        dist,
                    }),
                );
                Some(Ok(Reply::Unit))
            }
            Request::RmdirSerialize { dir } => self.op_rmdir_serialize(dir, src_core, reply),
            Request::RmdirRelease { dir } => {
                if let Some(w) = self.rmdir.unlock(dir) {
                    ctx.wake.push((w.reply, w.src_core, Ok(Reply::RmdirLocked)));
                }
                Some(Ok(Reply::Unit))
            }
            Request::RmdirMark { dir } => Some(self.op_rmdir_mark(dir, ctx)),
            Request::RmdirCommit { dir } => {
                ctx.replays = self.rmdir.resolve(dir);
                self.dentries.tombstone(dir);
                if let Some((home, epoch)) = self.replicas.drop_dir(dir) {
                    self.routing.learn(dir, home, epoch);
                }
                if dir.server == self.id {
                    self.inodes.remove(dir.num);
                }
                Some(Ok(Reply::Unit))
            }
            Request::RmdirAbort { dir } => {
                ctx.replays = self.rmdir.resolve(dir);
                Some(Ok(Reply::Unit))
            }
            Request::RmdirCentral { dir } => Some(self.op_rmdir_central(dir, ctx)),
            Request::Create {
                client,
                ftype,
                mode,
                dist,
                add_map,
                open,
            } => Some(self.op_create(client, ftype, mode, dist, add_map, open, ctx)),
            Request::OpenInode {
                client: _,
                num,
                flags,
            } => Some(self.op_open(num, flags, ctx)),
            Request::CloseFd { fd, size } => Some(self.op_close(fd, size, ctx)),
            Request::FdIncref { fd, offset } => Some(self.op_incref(fd, offset)),
            Request::SharedIo {
                fd,
                len,
                write,
                append,
            } => Some(self.op_shared_io(fd, len, write, append, ctx)),
            Request::SeekShared { fd, offset, whence } => Some(self.op_seek(fd, offset, whence)),
            Request::AllocBlocks { fd, min_size } => Some(self.op_alloc(fd, min_size, ctx)),
            Request::SetSize { fd, size } => Some(self.op_set_size(fd, size)),
            Request::Truncate { fd, size } => Some(self.op_truncate(fd, size)),
            Request::ReadData { fd, offset, len } => Some(self.op_read_data(fd, offset, len, ctx)),
            Request::WriteData {
                fd,
                offset,
                data,
                append,
            } => Some(self.op_write_data(fd, offset, data, append, ctx)),
            Request::ReadStripe {
                blocks,
                offset,
                len,
            } => Some(self.op_read_stripe(&blocks, offset, len, ctx)),
            Request::WriteStripe {
                blocks,
                offset,
                data,
            } => Some(self.op_write_stripe(&blocks, offset, data, ctx)),
            Request::LinkIncref { num } => Some(self.op_link_incref(num)),
            Request::LinkDecref { num } => Some(self.op_link_decref(num)),
            Request::StatInode { num } => Some(self.op_stat(num)),
            Request::PipeCreate => Some(self.op_pipe_create()),
            Request::PipeRead { fd, max } => self.op_pipe_read(fd, max, src_core, reply, ctx),
            Request::PipeWrite { fd, data } => self.op_pipe_write(fd, data, src_core, reply, ctx),
            Request::Batch { reqs, fail_fast } => {
                Some(self.op_batch(reqs, fail_fast, src_core, reply, ctx))
            }
            Request::Shutdown => {
                self.stop = true;
                None
            }
        }
    }

    /// True for requests that always reply inline and may therefore travel
    /// inside a batch. Parking requests are excluded because a parked reply
    /// would arrive as a bare [`WireReply`] instead of a batch slot;
    /// [`Request::LookupPath`] is excluded because a forwarded chain's
    /// reply comes from a *different server* than the batch envelope's.
    fn batchable(req: &Request) -> bool {
        !matches!(
            req,
            Request::Batch { .. }
                | Request::PipeRead { .. }
                | Request::PipeWrite { .. }
                | Request::RmdirSerialize { .. }
                | Request::LookupPath { .. }
                | Request::Register { .. }
                // MigrateBegin can park behind an rmdir mark, so its reply
                // may not come inline.
                | Request::MigrateBegin { .. }
                | Request::Shutdown
        )
    }

    /// Executes a batch: entries run in order, each paying its normal
    /// service cost (charged by [`base_service_cost`] on the envelope plus
    /// the per-entry `ctx.extra` its handler adds), while the message
    /// overhead is paid once for the whole exchange in [`Server::handle`].
    fn op_batch(
        &mut self,
        reqs: Vec<Request>,
        fail_fast: bool,
        src_core: usize,
        reply: &msg::Sender<WireReply>,
        ctx: &mut Ctx,
    ) -> WireReply {
        let mut out = Vec::with_capacity(reqs.len());
        let mut failed = false;
        for req in reqs {
            if fail_fast && failed {
                // Skipped because an earlier entry failed; the client
                // reports that earlier error. The entry never ran, so its
                // base cycles (pre-charged on the whole envelope) are
                // refunded.
                ctx.refund += base_service_cost(&req);
                out.push(Err(Errno::EAGAIN));
                continue;
            }
            let entry = if Self::batchable(&req) {
                // Each riding entry gets its own local span under the
                // batch envelope's, so explain dumps show what the batch
                // actually carried.
                let traced =
                    self.machine
                        .otrace
                        .begin_local(Cause::BatchRide, req.name(), self.core, 0);
                let entry = self
                    .dispatch(req, src_core, reply, ctx)
                    .expect("batchable requests reply inline");
                if traced {
                    self.machine.otrace.end_span(0);
                }
                entry
            } else {
                ctx.refund += base_service_cost(&req);
                Err(Errno::EINVAL)
            };
            // A NotOwner redirect is Ok at the wire level but means the
            // entry did NOT execute — for an ordered (fail-fast) pair the
            // later halves must be skipped too, or rename's add-before-rm
            // guarantee would break while the add half re-routes.
            failed = failed || entry.is_err() || matches!(entry, Ok(Reply::NotOwner { .. }));
            out.push(entry);
        }
        Ok(Reply::Batch(out))
    }

    // ----- Load accounting and placement ----------------------------------

    /// Counts one served operation toward the load counters (total plus,
    /// for entry operations, the per-directory hot counter). Control
    /// traffic — registration, migration, load reports, batch envelopes
    /// (whose entries count individually) — is not load.
    fn note_op(&mut self, req: &Request) {
        const DIR_OPS_CAPACITY: usize = 4096;
        match req {
            Request::Register { .. }
            | Request::Unregister { .. }
            | Request::MigrateBegin { .. }
            | Request::MigrateInstall { .. }
            | Request::MigrateCommit { .. }
            | Request::MigrateAbort { .. }
            | Request::LoadReport { .. }
            | Request::ReplicaExport { .. }
            | Request::ReplicaInstall { .. }
            | Request::ReplicaDrop { .. }
            | Request::ReplicaInval { .. }
            | Request::Batch { .. }
            | Request::Shutdown => return,
            _ => {}
        }
        self.ops_served += 1;
        self.machine.record_server_op(self.id);
        // The per-directory signal counts shard work only: operations that
        // would move with the directory's dentry shard if it migrated.
        let dir = match req {
            Request::Lookup { dir, .. }
            | Request::LookupOpen { dir, .. }
            | Request::LookupStat { dir, .. }
            | Request::AddMap { dir, .. }
            | Request::RmMap { dir, .. }
            | Request::ListShard { dir, .. } => Some(*dir),
            Request::Create {
                add_map: Some((dir, _)),
                ..
            } => Some(*dir),
            _ => None,
        };
        if let Some(dir) = dir {
            if self.dir_ops.len() < DIR_OPS_CAPACITY || self.dir_ops.contains_key(&dir) {
                *self.dir_ops.entry(dir).or_insert(0) += 1;
            }
            // The write slice of the same signal: shard mutations, the
            // planner's evidence *against* replicating the directory.
            let is_write = matches!(
                req,
                Request::AddMap { .. }
                    | Request::RmMap { .. }
                    | Request::Create {
                        add_map: Some(_),
                        ..
                    }
            );
            if is_write
                && (self.dir_writes.len() < DIR_OPS_CAPACITY || self.dir_writes.contains_key(&dir))
            {
                *self.dir_writes.entry(dir).or_insert(0) += 1;
            }
        }
    }

    /// The redirect to answer when this server no longer owns `dir`'s
    /// shard (its routing table names another owner). The guard at the top
    /// of every entry-operation handler: a stale client pays exactly one
    /// extra exchange, folds the redirect into its table, and retries at
    /// the named owner.
    fn not_owner(&self, dir: InodeId) -> Option<WireReply> {
        self.routing.foreign_owner(dir, self.id).map(|r| {
            self.machine
                .events
                .not_owner_bounces
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(Reply::NotOwner {
                dir,
                epoch: r.epoch,
                owner: r.owner,
            })
        })
    }

    /// Phase 1 of a shard migration, at the source: validate, mark the
    /// directory migrating (later operations park until COMMIT/ABORT), and
    /// snapshot the entries. Only centralized directories migrate — a
    /// distributed directory's entries are spread by the hash and have no
    /// single shard to move — and the root is pinned. The first migration
    /// starts at the home server, which holds the inode and can check the
    /// distribution flag; re-migrations start at a past destination, where
    /// the invariant is already established.
    fn op_migrate_begin(&mut self, dir: InodeId, ctx: &mut Ctx) -> WireReply {
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        if dir == InodeId::ROOT {
            return Err(Errno::EINVAL);
        }
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        if dir.server == self.id && self.routing.override_of(dir).is_none() {
            // First migration: the home server holds the inode.
            let ino = self.inodes.get(dir.num)?;
            match ino.kind {
                InodeKind::Dir { dist } => {
                    if dist && self.distribution {
                        return Err(Errno::EINVAL);
                    }
                }
                _ => return Err(Errno::ENOTDIR),
            }
        }
        // Evict read replicas *before* reading the snapshot epoch, so the
        // eviction's epoch bump is included in it and the driver's
        // install-at-epoch+1 stays strictly newer than every replica
        // record anywhere.
        self.replica_evict_all(dir, ctx);
        let entries: Vec<MigEntry> = self
            .dentries
            .export(dir)
            .into_iter()
            .map(|(name, v)| MigEntry {
                name,
                target: v.target,
                ftype: v.ftype,
                dist: v.dist,
            })
            .collect();
        ctx.extra += 30 * entries.len() as u64;
        self.migrating.entry(dir).or_default();
        Ok(Reply::MigrateSnapshot {
            epoch: self.routing.epoch_of(dir),
            entries,
        })
    }

    /// Phase 2, at the destination: install the snapshot and own the
    /// directory as of `epoch`. No client routes here until the source
    /// starts redirecting, so the data always lands before the first
    /// redirect can.
    fn op_migrate_install(
        &mut self,
        dir: InodeId,
        epoch: u64,
        entries: Vec<MigEntry>,
        ctx: &mut Ctx,
    ) -> WireReply {
        // A destination mid-rmdir (or itself mid-migration) must REJECT,
        // not park: the rmdir's mark fan-out may be parked behind the
        // *source's* migration window, so parking here would close a wait
        // cycle (driver → install → rmdir → source mark → driver's
        // commit). The inline EAGAIN makes the driver abort — the source
        // unparks and replays, the rmdir proceeds, and the rebalancer
        // simply tries again later. Installing into a marked directory
        // would also let the rmdir's emptiness votes miss the migrated
        // entries and commit a non-empty removal.
        if self.rmdir.is_marked(dir) || self.migrating.contains_key(&dir) {
            return Err(Errno::EAGAIN);
        }
        // A destination that held a read replica of this very directory is
        // about to become its owner: the copy is superseded.
        self.replicas.drop_dir(dir);
        ctx.extra += 30 * entries.len() as u64;
        for e in &entries {
            self.dentries.install(
                dir,
                &e.name,
                DentryVal {
                    target: e.target,
                    ftype: e.ftype,
                    dist: e.dist,
                },
            )?;
        }
        self.routing.learn(dir, self.id, epoch);
        Ok(Reply::Unit)
    }

    /// Phase 3, at the source: drop the migrated entries, record the
    /// redirect, invalidate every client tracked for the directory (the
    /// existing tracking lists double as the migration's invalidation
    /// fan-out — stale dircache and negative entries are re-resolved and
    /// pick up the redirect), and replay the operations parked since
    /// BEGIN, which now answer [`Reply::NotOwner`].
    fn op_migrate_commit(
        &mut self,
        dir: InodeId,
        epoch: u64,
        to: ServerId,
        ctx: &mut Ctx,
    ) -> WireReply {
        self.routing.learn(dir, to, epoch);
        let dropped = self.dentries.drop_dir(dir);
        ctx.extra += 10 * dropped as u64;
        for (name, clients) in self.dentries.drain_dir_tracking(dir) {
            for c in clients {
                ctx.invals.push((
                    c,
                    Invalidation {
                        dir,
                        name: name.clone(),
                    },
                ));
            }
        }
        ctx.replays = self.migrating.remove(&dir).unwrap_or_default();
        self.machine
            .events
            .migrations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(Reply::Unit)
    }

    /// Answers the rebalancer's load probe: total operations served plus
    /// the hottest directories by entry-operation count (and the write
    /// slice of it, the replicate-vs-migrate signal).
    fn op_load_report(&mut self, reset: bool) -> WireReply {
        let mut hot: Vec<(InodeId, u64, u64)> = self
            .dir_ops
            .iter()
            .map(|(d, n)| (*d, *n, self.dir_writes.get(d).copied().unwrap_or(0)))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(8);
        let ops = self.ops_served;
        if reset {
            self.ops_served = 0;
            self.dir_ops.clear();
            self.dir_writes.clear();
        }
        Ok(Reply::Load { ops, hot_dirs: hot })
    }

    // ----- Read replication -----------------------------------------------

    /// Phase 1 of growing a read replica, at the **home**: validate,
    /// register `replica` in the directory's read set (bumping the
    /// placement epoch), and snapshot the entries — *without* parking or
    /// dropping anything, because the home keeps serving reads and all
    /// writes throughout. The guards mirror [`Server::op_migrate_begin`],
    /// and the rmdir/migration overlap is an **inline EAGAIN reject,
    /// never a park** — the same discipline as the pinned
    /// `MigrateInstall`-vs-rmdir guard, and for the same wait-cycle
    /// reason.
    fn op_replica_export(&mut self, dir: InodeId, replica: ServerId, ctx: &mut Ctx) -> WireReply {
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        if dir == InodeId::ROOT {
            return Err(Errno::EINVAL);
        }
        if (replica as usize) >= self.peers.len() || replica == self.id {
            return Err(Errno::EINVAL);
        }
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        if self.rmdir.is_marked(dir) || self.migrating.contains_key(&dir) {
            return Err(Errno::EAGAIN);
        }
        if dir.server == self.id && self.routing.override_of(dir).is_none() {
            // First placement change: the home server holds the inode and
            // can check that the directory is centralized.
            let ino = self.inodes.get(dir.num)?;
            match ino.kind {
                InodeKind::Dir { dist } => {
                    if dist && self.distribution {
                        return Err(Errno::EINVAL);
                    }
                }
                _ => return Err(Errno::ENOTDIR),
            }
        }
        let mut set = self
            .routing
            .replicas_of(dir)
            .map(|r| r.servers.clone())
            .unwrap_or_default();
        if !set.contains(&replica) {
            set.push(replica);
        }
        let epoch = self.routing.epoch_of(dir) + 1;
        self.routing.learn_replicas(dir, set, epoch);
        let entries: Vec<MigEntry> = self
            .dentries
            .export(dir)
            .into_iter()
            .map(|(name, v)| MigEntry {
                name,
                target: v.target,
                ftype: v.ftype,
                dist: v.dist,
            })
            .collect();
        ctx.extra += 30 * entries.len() as u64;
        // Unlike MigrateBegin's snapshot (whose epoch the driver bumps on
        // install), the export's epoch is the *new* one: the replica set
        // including the exported-to server.
        Ok(Reply::MigrateSnapshot { epoch, entries })
    }

    /// Phase 2, at the **replica**: store the copy. Refused on a local
    /// tombstone (a committed rmdir outranks any placement change) and
    /// with an inline EAGAIN inside a local rmdir-mark window.
    fn op_replica_install(
        &mut self,
        dir: InodeId,
        home: ServerId,
        epoch: u64,
        entries: Vec<MigEntry>,
        ctx: &mut Ctx,
    ) -> WireReply {
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        if self.rmdir.is_marked(dir) {
            return Err(Errno::EAGAIN);
        }
        ctx.extra += 30 * entries.len() as u64;
        self.replicas.install(
            dir,
            home,
            epoch,
            entries.into_iter().map(|e| {
                (
                    e.name,
                    DentryVal {
                        target: e.target,
                        ftype: e.ftype,
                        dist: e.dist,
                    },
                )
            }),
        );
        Ok(Reply::Unit)
    }

    /// Retires a replica — dual-role by design, so the same message works
    /// driver→home, driver→replica, and home→replica (the one-way
    /// eviction): at the home it unregisters `replica` from the read set
    /// (bumping the epoch); at the replica server itself it drops the
    /// copy and remembers the home as a routing override, so a client
    /// still routing reads here gets a replica-aware [`Reply::NotOwner`]
    /// instead of a stale answer.
    fn op_replica_drop(&mut self, dir: InodeId, replica: ServerId) -> WireReply {
        if let Some(rec) = self.routing.replicas_of(dir) {
            if rec.servers.contains(&replica) {
                let set: Vec<ServerId> = rec
                    .servers
                    .iter()
                    .copied()
                    .filter(|s| *s != replica)
                    .collect();
                let epoch = self.routing.epoch_of(dir) + 1;
                self.routing.learn_replicas(dir, set, epoch);
            }
        }
        if replica == self.id {
            if let Some((home, epoch)) = self.replicas.drop_dir(dir) {
                // Replica-aware NotOwner: remember who answers now.
                self.routing.learn(dir, home, epoch);
            }
        }
        Ok(Reply::Unit)
    }

    /// Queues one upsert-or-remove invalidation to every replica of `dir`
    /// after a write to the home shard. The new state travels with the
    /// message, so the copies *converge* rather than merely shrink — a
    /// replica never answers a stale negative after a create.
    fn replica_fanout(&mut self, dir: InodeId, name: &str, val: Option<DentryVal>, ctx: &mut Ctx) {
        let Some(rec) = self.routing.replicas_of(dir) else {
            return;
        };
        for s in rec.servers.clone() {
            ctx.peer_sends.push((
                s,
                Request::ReplicaInval {
                    dir,
                    name: name.to_string(),
                    val: val.map(|v| (v.target, v.ftype, v.dist)),
                },
            ));
        }
    }

    /// Evicts every replica of `dir` outright (one-way
    /// [`Request::ReplicaDrop`] per copy holder) and retires the read set
    /// locally. Called before any structural change a converging copy
    /// could not survive: a migration of the shard, an rmdir mark, a
    /// centralized removal. Eviction-before-staleness: readers fall back
    /// to the home, where the structural protocol parks or redirects them
    /// correctly.
    fn replica_evict_all(&mut self, dir: InodeId, ctx: &mut Ctx) {
        let Some(rec) = self.routing.replicas_of(dir) else {
            return;
        };
        let servers = rec.servers.clone();
        if servers.is_empty() {
            return;
        }
        let epoch = self.routing.epoch_of(dir) + 1;
        self.routing.learn_replicas(dir, Vec::new(), epoch);
        for s in servers {
            ctx.peer_sends
                .push((s, Request::ReplicaDrop { dir, replica: s }));
        }
    }

    // ----- Directory entry operations ------------------------------------

    fn op_lookup(
        &mut self,
        client: ClientId,
        dir: InodeId,
        name: &str,
        ctx: &mut Ctx,
    ) -> WireReply {
        // A read replica answers before the ownership guard: the client
        // routed here *because* this server holds a copy, not the shard.
        // Served without tracking — replica reads are never client-cached,
        // so there is nothing to invalidate.
        if let Some(hit) = self.replicas.lookup(dir, name) {
            return match hit {
                Some(v) => Ok(Reply::Lookup {
                    target: v.target,
                    ftype: v.ftype,
                    dist: v.dist,
                }),
                None => Err(Errno::ENOENT),
            };
        }
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        match self.dentries.lookup(dir, name) {
            Some(v) => {
                self.track_entry(dir, name, client, ctx);
                Ok(Reply::Lookup {
                    target: v.target,
                    ftype: v.ftype,
                    dist: v.dist,
                })
            }
            None => {
                // Track the miss too: a client caching the ENOENT
                // (negative dentry) must be invalidated when the name is
                // later created. Gated so the ablation sheds this state.
                if self.neg_dircache {
                    self.track_entry(dir, name, client, ctx);
                }
                Err(Errno::ENOENT)
            }
        }
    }

    /// Coalesced lookup+open (extends §3.6.3 to the open-existing path):
    /// resolves the entry and, when its inode is local and a regular file,
    /// opens a descriptor in the same round trip.
    fn op_lookup_open(
        &mut self,
        client: ClientId,
        dir: InodeId,
        name: &str,
        flags: OpenFlags,
        ctx: &mut Ctx,
    ) -> WireReply {
        // Replica-served, untracked — see [`Server::op_lookup`]. The open
        // half still fuses when the inode happens to live here.
        if let Some(hit) = self.replicas.lookup(dir, name) {
            return match hit {
                Some(v) => {
                    let open = if v.ftype == FileType::Regular && v.target.server == self.id {
                        match self.open_local_file(v.target.num, flags, ctx) {
                            Ok(o) => {
                                ctx.extra += 700;
                                Some(o)
                            }
                            Err(_) => None,
                        }
                    } else {
                        None
                    };
                    Ok(Reply::LookupOpened {
                        target: v.target,
                        ftype: v.ftype,
                        dist: v.dist,
                        open,
                    })
                }
                None => Err(Errno::ENOENT),
            };
        }
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        match self.dentries.lookup(dir, name) {
            Some(v) => {
                self.track_entry(dir, name, client, ctx);
                let open = if v.ftype == FileType::Regular && v.target.server == self.id {
                    // The open half of the coalesced message (cheaper than
                    // a standalone OpenInode: no second dispatch). A
                    // failing open (EACCES) degrades to lookup-only — and
                    // charges nothing extra — so the client still caches
                    // the dentry; its fallback OpenInode reproduces the
                    // authoritative error.
                    match self.open_local_file(v.target.num, flags, ctx) {
                        Ok(o) => {
                            ctx.extra += 700;
                            Some(o)
                        }
                        Err(_) => None,
                    }
                } else {
                    None
                };
                Ok(Reply::LookupOpened {
                    target: v.target,
                    ftype: v.ftype,
                    dist: v.dist,
                    open,
                })
            }
            None => {
                // Track the miss for negative-cache invalidation.
                if self.neg_dircache {
                    self.track_entry(dir, name, client, ctx);
                }
                Err(Errno::ENOENT)
            }
        }
    }

    /// Coalesced lookup+stat (the `stat` sibling of
    /// [`Server::op_lookup_open`]): resolves the entry and, when its inode
    /// is stored here, returns the metadata in the same round trip. Unlike
    /// the open variant there is no type restriction — directories and
    /// files stat alike.
    fn op_lookup_stat(
        &mut self,
        client: ClientId,
        dir: InodeId,
        name: &str,
        ctx: &mut Ctx,
    ) -> WireReply {
        // Replica-served, untracked — see [`Server::op_lookup`]. The stat
        // half still fuses when the inode happens to live here.
        if let Some(hit) = self.replicas.lookup(dir, name) {
            return match hit {
                Some(v) => {
                    let stat = if v.target.server == self.id {
                        match self.op_stat(v.target.num) {
                            Ok(Reply::Stat(s)) => {
                                ctx.extra += 400;
                                Some(s)
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    Ok(Reply::LookupStated {
                        target: v.target,
                        ftype: v.ftype,
                        dist: v.dist,
                        stat,
                    })
                }
                None => Err(Errno::ENOENT),
            };
        }
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        match self.dentries.lookup(dir, name) {
            Some(v) => {
                self.track_entry(dir, name, client, ctx);
                let stat = if v.target.server == self.id {
                    // The stat half of the coalesced message. A failing
                    // local stat (the inode vanished) degrades to
                    // lookup-only; the client's fallback StatInode
                    // reproduces the authoritative error.
                    match self.op_stat(v.target.num) {
                        Ok(Reply::Stat(s)) => {
                            ctx.extra += 400;
                            Some(s)
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                Ok(Reply::LookupStated {
                    target: v.target,
                    ftype: v.ftype,
                    dist: v.dist,
                    stat,
                })
            }
            None => {
                // Track the miss for negative-cache invalidation.
                if self.neg_dircache {
                    self.track_entry(dir, name, client, ctx);
                }
                Err(Errno::ENOENT)
            }
        }
    }

    /// Chained multi-component resolution (the server half of the
    /// `chained_resolution` technique). Resolves consecutive components of
    /// `comps` for as long as this server owns their shard, then either
    /// answers the client with the accumulated prefix or forwards the
    /// remainder to the next component's owner (via `ctx.forward`; the
    /// reply channel travels with it, so the final server answers the
    /// client directly).
    ///
    /// Correctness notes:
    /// * Every resolved component is tracked exactly like a standalone
    ///   [`Request::Lookup`] (misses included when negative caching is
    ///   on), so the client may cache the entire returned prefix.
    /// * Revisiting a server is *normal* (shards alternate along a path);
    ///   termination comes from progress, not visit sets: a forward always
    ///   targets the first remaining component's owner, so every hop
    ///   resolves at least one component. The explicit hop budget only
    ///   guards against mis-routed or crafted requests, answering `ELOOP`
    ///   instead of forwarding further.
    /// * A deletion-marked directory reached mid-walk stops the chain with
    ///   `EAGAIN` (the initial park check in [`Server::handle`] only sees
    ///   the first component's directory); the client retries that
    ///   component as a plain lookup, which parks until COMMIT/ABORT.
    ///   Because the fused terminal runs only after the *whole* walk
    ///   succeeded, an `EAGAIN` stop can never have opened a descriptor —
    ///   a fused open of an rmdir-marked path degrades to the retry,
    ///   never to an orphan fd.
    /// * The fused terminal op executes strictly on this (final) server:
    ///   a remote terminal inode degrades to `term: None` rather than
    ///   forwarding mid-execution, preserving the per-hop-progress
    ///   termination argument.
    #[allow(clippy::too_many_arguments)]
    fn op_lookup_path(
        &mut self,
        client: ClientId,
        dir: InodeId,
        dist: bool,
        mut comps: Vec<String>,
        mut acc: Vec<PathEntry>,
        hops: u32,
        terminal: TerminalOp,
        ctx: &mut Ctx,
    ) -> Option<WireReply> {
        let nservers = self.peers.len();
        let max_hops = (acc.len() + comps.len() + 2 * nservers) as u32;
        let mut cur_dir = dir;
        let mut cur_dist = dist;
        let mut idx = 0;
        let mut stopped = None;
        while idx < comps.len() {
            let name = &comps[idx];
            // Routed through this server's table, not the bare hash: a hop
            // that landed on a stale owner (the directory's shard migrated
            // away) re-forwards to the owner this server knows — still
            // feed-forward, still within the hop budget — instead of
            // bouncing the client.
            let owner = self
                .routing
                .route(cur_dir, cur_dist, name, self.dir_shard_width, nservers);
            if owner != self.id {
                // A local read replica of this component's directory lets
                // the walk continue here without a hop — still
                // feed-forward, and untracked like every replica read.
                // Only positive hits are served: a miss forwards to the
                // owner so ENOENT (and any create terminal) stays
                // authoritative at the home shard.
                if let Some(Some(v)) = self.replicas.lookup(cur_dir, name) {
                    ctx.extra += crate::proto::LOOKUP_SERVICE_COST;
                    acc.push(PathEntry {
                        target: v.target,
                        ftype: v.ftype,
                        dist: v.dist,
                        replica: true,
                    });
                    if idx + 1 < comps.len() {
                        if v.ftype != FileType::Directory {
                            stopped = Some(Errno::ENOTDIR);
                            break;
                        }
                        cur_dir = v.target;
                        cur_dist = v.dist && self.distribution;
                    }
                    idx += 1;
                    continue;
                }
                if hops >= max_hops {
                    stopped = Some(Errno::ELOOP);
                    break;
                }
                let rest = comps.split_off(idx);
                ctx.forward = Some((
                    owner,
                    Request::LookupPath {
                        client,
                        dir: cur_dir,
                        dist: cur_dist,
                        comps: rest,
                        acc,
                        hops: hops + 1,
                        terminal,
                    },
                ));
                return None;
            }
            if self.rmdir.is_marked(cur_dir) || self.migrating.contains_key(&cur_dir) {
                // A deletion mark or a migration copy window mid-walk: the
                // client retries this component as a plain (parkable)
                // single RPC, which waits the window out.
                stopped = Some(Errno::EAGAIN);
                break;
            }
            // The per-component lookup work (the chain envelope's base
            // cost covers routing; each component costs what a standalone
            // lookup's service would).
            ctx.extra += crate::proto::LOOKUP_SERVICE_COST;
            if self.dentries.is_tombstoned(cur_dir) {
                stopped = Some(Errno::ENOENT);
                break;
            }
            match self.dentries.lookup(cur_dir, name) {
                Some(v) => {
                    self.track_entry(cur_dir, name, client, ctx);
                    acc.push(PathEntry {
                        target: v.target,
                        ftype: v.ftype,
                        dist: v.dist,
                        replica: false,
                    });
                    if idx + 1 < comps.len() {
                        if v.ftype != FileType::Directory {
                            stopped = Some(Errno::ENOTDIR);
                            break;
                        }
                        cur_dir = v.target;
                        cur_dist = v.dist && self.distribution;
                    }
                    idx += 1;
                }
                None => {
                    // A missing *final* component under a Create terminal
                    // is not a failed walk — it is the create target, and
                    // by routing this server owns its dentry shard, which
                    // is exactly where the coalesced placement policy puts
                    // the inode. Create it here: the chained form of the
                    // coalesced [`Request::Create`].
                    if idx + 1 == comps.len() && self.coalesced_create_here(client) {
                        if let TerminalOp::Create { flags, mode } = terminal {
                            let (entry, ino, open) =
                                self.terminal_create(client, cur_dir, name, flags, mode, ctx);
                            acc.push(entry);
                            return Some(Ok(Reply::Path {
                                entries: acc,
                                stopped: None,
                                term: Some(TerminalReply::Created { ino, open }),
                            }));
                        }
                    }
                    // Track the miss for negative-cache invalidation.
                    if self.neg_dircache {
                        self.track_entry(cur_dir, name, client, ctx);
                    }
                    stopped = Some(Errno::ENOENT);
                    break;
                }
            }
        }
        let term = if stopped.is_none() {
            // The fused terminal half runs in place on the last chain
            // server — a local span, no message.
            let traced =
                self.machine
                    .otrace
                    .begin_local(Cause::Terminal, "fused_terminal", self.core, 0);
            let term = self.exec_terminal(terminal, acc.last().copied(), ctx);
            if traced {
                self.machine.otrace.end_span(0);
            }
            term
        } else {
            None
        };
        Some(Ok(Reply::Path {
            entries: acc,
            stopped,
            term,
        }))
    }

    /// Executes the fused terminal op of a completed chain walk against the
    /// final resolved dentry, strictly locally. Anything the final server
    /// cannot answer from its own shards — a remote terminal inode, a
    /// non-file open target, a failing local attempt — degrades to `None`;
    /// the client's ordinary follow-up RPC then reproduces the
    /// authoritative result. No path here ever forwards to a peer.
    fn exec_terminal(
        &mut self,
        terminal: TerminalOp,
        last: Option<PathEntry>,
        ctx: &mut Ctx,
    ) -> Option<TerminalReply> {
        let last = last?;
        match terminal {
            TerminalOp::None => None,
            TerminalOp::Stat => {
                if last.target.server != self.id {
                    return None;
                }
                match self.op_stat(last.target.num) {
                    Ok(Reply::Stat(s)) => {
                        // The stat half, priced like the coalesced
                        // LookupStat's.
                        ctx.extra += 400;
                        Some(TerminalReply::Stat(s))
                    }
                    _ => None,
                }
            }
            TerminalOp::Open { flags } => {
                if last.ftype != FileType::Regular || last.target.server != self.id {
                    return None;
                }
                match self.open_local_file(last.target.num, flags, ctx) {
                    Ok(o) => {
                        // The open half, priced like the coalesced
                        // LookupOpen's.
                        ctx.extra += 700;
                        Some(TerminalReply::Open(o))
                    }
                    Err(_) => None,
                }
            }
            TerminalOp::Create { flags, .. } => {
                // The name resolved after all: POSIX `open(O_CREAT)` of an
                // existing file opens it, so this arm is exactly the Open
                // terminal. (The created-missing-file case never reaches
                // here — it is handled inline at the walk's miss branch.)
                if last.ftype != FileType::Regular || last.target.server != self.id {
                    return None;
                }
                match self.open_local_file(last.target.num, flags, ctx) {
                    Ok(o) => {
                        ctx.extra += 700;
                        Some(TerminalReply::Open(o))
                    }
                    Err(_) => None,
                }
            }
            TerminalOp::List { plus } => {
                if last.ftype != FileType::Directory {
                    return None;
                }
                let dir = last.target;
                // A distributed directory has a meaningful shard on every
                // server; a centralized one lives entirely at its home —
                // per this server's routing table, since a migrated
                // directory's entries follow the override — so any other
                // server's listing would be dead weight the client
                // discards.
                if !(last.dist && self.distribution) && self.routing.dir_home(dir) != self.id {
                    return None;
                }
                // A listing must not race the rmdir mark/commit window or
                // a migration copy (a standalone ListShard would park);
                // degrade and let the client's fan-out park normally.
                if self.rmdir.is_marked(dir)
                    || self.migrating.contains_key(&dir)
                    || self.dentries.is_tombstoned(dir)
                {
                    return None;
                }
                // Page-bounded like a standalone ListShard: a giant shard
                // rides the chain as its first page and the client pages
                // through the rest at this server.
                let (entries, next) = self.dentries.list_page(dir, None, self.list_page_max);
                ctx.extra += 400 + 25 * entries.len() as u64;
                // The readdir_plus fusion: stat every listed entry whose
                // inode this server stores, so those entries need no
                // follow-up StatInode exchange.
                let stats = if plus {
                    let mut stats = Vec::with_capacity(entries.len());
                    for e in &entries {
                        stats.push(if e.server == self.id {
                            match self.op_stat(e.ino) {
                                Ok(Reply::Stat(s)) => {
                                    ctx.extra += 400;
                                    Some(s)
                                }
                                _ => None,
                            }
                        } else {
                            None
                        });
                    }
                    stats
                } else {
                    Vec::new()
                };
                Some(TerminalReply::List {
                    server: self.id,
                    entries,
                    stats,
                    next,
                })
            }
        }
    }

    /// Whether the creation-affinity policy (§3.6.4) would place a new
    /// inode for `client` on this server. On the client's socket the
    /// dentry-shard owner doubles as the inode server (the coalesced
    /// placement the fused create replicates); across sockets the client
    /// may prefer its designated local server, so the walk degrades to a
    /// plain ENOENT and the client runs its ordinary placed create. The
    /// check uses the registered client core, so a fused create never
    /// moves an inode the unfused path would have placed elsewhere.
    fn coalesced_create_here(&self, client: ClientId) -> bool {
        match self.clients.get(&client) {
            Some((_, core)) => {
                self.machine.topology.socket_of(*core) == self.machine.topology.socket_of(self.core)
            }
            None => false,
        }
    }

    /// The fused-create terminal's create half: makes `name` in `dir` —
    /// known absent, live, and owned here — as a regular file with an open
    /// descriptor, all in the current chain hop. Mirrors the coalesced
    /// [`Server::op_create`] body (inode, dentry with invalidations and
    /// tracking, descriptor) and is priced like it: the standalone
    /// coalesced Create's base (900) plus its ADD_MAP half (300), charged
    /// as chain extra since the chain envelope never pre-paid them.
    fn terminal_create(
        &mut self,
        client: ClientId,
        dir: InodeId,
        name: &str,
        flags: OpenFlags,
        mode: Mode,
        ctx: &mut Ctx,
    ) -> (PathEntry, InodeId, OpenResult) {
        let num = self.inodes.alloc(
            mode,
            InodeKind::File {
                blocks: Vec::new(),
                size: 0,
            },
        );
        let ino = InodeId {
            server: self.id,
            num,
        };
        let val = DentryVal {
            target: ino,
            ftype: FileType::Regular,
            dist: false,
        };
        // The walk just observed the name absent; the server is
        // single-threaded so this cannot race.
        self.dentries
            .insert(dir, name, val, false)
            .expect("entry checked absent");
        // Clients holding a cached ENOENT for this name must hear about
        // the creation (negative dentry invalidation).
        if self.neg_dircache {
            self.queue_invals(client, dir, name, ctx);
        }
        self.track_entry(dir, name, client, ctx);
        self.replica_fanout(dir, name, Some(val), ctx);
        ctx.extra += 900 + 300;
        let fd = self.fds.open(num, FdKind::File, flags);
        self.inodes.get_mut(num).expect("just created").open_fds += 1;
        let open = OpenResult {
            fd: FdId(fd),
            size: 0,
            blocks: Vec::new(),
            extent: self.extent_of(num),
        };
        let entry = PathEntry {
            target: ino,
            ftype: FileType::Regular,
            dist: false,
            replica: false,
        };
        (entry, ino, open)
    }

    #[allow(clippy::too_many_arguments)]
    fn op_add_map(
        &mut self,
        client: ClientId,
        dir: InodeId,
        name: &str,
        target: InodeId,
        ftype: FileType,
        dist: bool,
        replace: bool,
        ctx: &mut Ctx,
    ) -> WireReply {
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        let val = DentryVal {
            target,
            ftype,
            dist,
        };
        let replaced = self.dentries.insert(dir, name, val, replace)?;
        // Invalidate on fresh inserts too (when negative caching is on),
        // not just replacements: clients may hold *negative* entries for
        // the name (they probed it and cached the ENOENT) and must
        // re-resolve now that it exists.
        if replaced.is_some() || self.neg_dircache {
            self.queue_invals(client, dir, name, ctx);
        }
        self.track_entry(dir, name, client, ctx);
        self.replica_fanout(dir, name, Some(val), ctx);
        Ok(Reply::AddMapped {
            replaced: replaced.map(|v| (v.target, v.ftype)),
        })
    }

    fn op_rm_map(
        &mut self,
        client: ClientId,
        dir: InodeId,
        name: &str,
        must_be_file: bool,
        ctx: &mut Ctx,
    ) -> WireReply {
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        let cur = self.dentries.lookup(dir, name).ok_or(Errno::ENOENT)?;
        if must_be_file && cur.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let v = self.dentries.remove(dir, name)?;
        self.queue_invals(client, dir, name, ctx);
        self.replica_fanout(dir, name, None, ctx);
        Ok(Reply::RmMapped {
            target: v.target,
            ftype: v.ftype,
        })
    }

    fn op_list_shard(
        &mut self,
        dir: InodeId,
        after: Option<&str>,
        max: u32,
        ctx: &mut Ctx,
    ) -> WireReply {
        // A read replica serves the page before the ownership guard, with
        // the same server-side bound. The name cursor makes this safe
        // across pages even if the client's later pages land on a
        // *different* replica (or the home): the cursor is an entry name,
        // not a copy-local position.
        let bound = match max {
            0 => self.list_page_max,
            m => (m as usize).min(self.list_page_max),
        };
        if let Some((entries, next)) = self.replicas.list_page(dir, after, bound) {
            ctx.extra += 25 * entries.len() as u64;
            return Ok(Reply::Shard { entries, next });
        }
        // Only centralized directories migrate, so a foreign override
        // means this server's (empty) shard would silently truncate the
        // listing — redirect instead. Distributed fan-outs never see an
        // override and answer their shard as before.
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        // The server's page bound always applies; the client may only
        // tighten it. One giant shard can therefore never materialize in
        // a single reply regardless of what the client asks for.
        let (entries, next) = self.dentries.list_page(dir, after, bound);
        ctx.extra += 25 * entries.len() as u64;
        Ok(Reply::Shard { entries, next })
    }

    /// Queues invalidations for every client tracking `(dir, name)` other
    /// than the mutator.
    fn queue_invals(&mut self, mutator: ClientId, dir: InodeId, name: &str, ctx: &mut Ctx) {
        for c in self.dentries.take_trackers(dir, name, mutator) {
            ctx.invals.push((
                c,
                Invalidation {
                    dir,
                    name: name.to_string(),
                },
            ));
        }
    }

    /// Records `client` in `(dir, name)`'s tracking list. When the bounded
    /// tracking table evicts an older slot to make room, its clients are
    /// queued an invalidation — they drop the cached entry and re-resolve,
    /// which is what keeps the bound sound.
    fn track_entry(&mut self, dir: InodeId, name: &str, client: ClientId, ctx: &mut Ctx) {
        for ev in self.dentries.track(dir, name, client) {
            for c in ev.clients {
                ctx.invals.push((
                    c,
                    Invalidation {
                        dir: ev.dir,
                        name: ev.name.clone(),
                    },
                ));
            }
        }
    }

    // ----- rmdir protocol -------------------------------------------------

    fn op_rmdir_serialize(
        &mut self,
        dir: InodeId,
        src_core: usize,
        reply: &msg::Sender<WireReply>,
    ) -> Option<WireReply> {
        // The home server stores the directory inode; a vanished inode means
        // another rmdir already won.
        debug_assert_eq!(dir.server, self.id, "serialize goes to the home server");
        match self.inodes.get(dir.num) {
            Err(_) => return Some(Err(Errno::ENOENT)),
            Ok(ino) if ino.ftype() != FileType::Directory => return Some(Err(Errno::ENOTDIR)),
            Ok(_) => {}
        }
        let granted = self.rmdir.lock(dir, || LockWaiter {
            reply: reply.clone(),
            src_core,
        });
        if granted {
            Some(Ok(Reply::RmdirLocked))
        } else {
            None
        }
    }

    fn op_rmdir_mark(&mut self, dir: InodeId, ctx: &mut Ctx) -> WireReply {
        if self.dentries.is_tombstoned(dir) {
            return Err(Errno::ENOENT);
        }
        if self.dentries.count(dir) > 0 {
            return Ok(Reply::RmdirMark(MarkResult::NotEmpty));
        }
        // The mark opens the deletion window; any read replica of this
        // directory must die with it (eviction-before-staleness). The mark
        // fan-out reaches every server, so each copy holder drops its own
        // copy here; the registering owner additionally evicts the set,
        // which is idempotent with the local drops.
        if let Some((home, epoch)) = self.replicas.drop_dir(dir) {
            self.routing.learn(dir, home, epoch);
        }
        self.replica_evict_all(dir, ctx);
        let fresh = self.rmdir.mark(dir);
        debug_assert!(fresh, "serialization must prevent double marks");
        Ok(Reply::RmdirMark(MarkResult::Marked))
    }

    fn op_rmdir_central(&mut self, dir: InodeId, ctx: &mut Ctx) -> WireReply {
        // A migrated directory's entries live elsewhere: the single-message
        // removal no longer applies (the emptiness check and the inode are
        // on different servers). Redirect; the client reruns the removal
        // through the distributed three-phase protocol.
        if let Some(r) = self.not_owner(dir) {
            return r;
        }
        debug_assert_eq!(dir.server, self.id, "centralized rmdir at home server");
        let ino = self.inodes.get(dir.num)?;
        if ino.ftype() != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        if self.dentries.count(dir) > 0 {
            return Err(Errno::ENOTEMPTY);
        }
        // Evict read replicas before the tombstone lands: copy holders
        // answer the directory's reads ENOENT-or-redirect from here on,
        // never from a surviving copy.
        self.replica_evict_all(dir, ctx);
        self.dentries.tombstone(dir);
        self.inodes.remove(dir.num);
        Ok(Reply::Unit)
    }

    // ----- Inode / descriptor operations ----------------------------------

    #[allow(clippy::too_many_arguments)]
    fn op_create(
        &mut self,
        client: ClientId,
        ftype: FileType,
        mode: Mode,
        dist: bool,
        add_map: Option<(InodeId, String)>,
        open: Option<OpenFlags>,
        ctx: &mut Ctx,
    ) -> WireReply {
        if let Some((dir, name)) = &add_map {
            // The coalesced ADD_MAP half must run at the shard owner; a
            // stale creator is redirected before any inode is allocated.
            if let Some(r) = self.not_owner(*dir) {
                return r;
            }
            if self.dentries.is_tombstoned(*dir) {
                return Err(Errno::ENOENT);
            }
            if self.dentries.lookup(*dir, name).is_some() {
                return Err(Errno::EEXIST);
            }
        }
        let kind = match ftype {
            FileType::Regular => InodeKind::File {
                blocks: Vec::new(),
                size: 0,
            },
            FileType::Directory => InodeKind::Dir { dist },
            FileType::Pipe => return Err(Errno::EINVAL),
        };
        let num = self.inodes.alloc(mode, kind);
        let ino = InodeId {
            server: self.id,
            num,
        };
        if let Some((dir, name)) = &add_map {
            let val = DentryVal {
                target: ino,
                ftype,
                dist,
            };
            // Checked above; the server is single-threaded so this cannot
            // race.
            self.dentries
                .insert(*dir, name, val, false)
                .expect("entry checked absent");
            // Clients holding a cached ENOENT for this name must hear
            // about the creation (negative dentry invalidation).
            if self.neg_dircache {
                self.queue_invals(client, *dir, name, ctx);
            }
            self.track_entry(*dir, name, client, ctx);
            self.replica_fanout(*dir, name, Some(val), ctx);
            ctx.extra += 300; // coalesced ADD_MAP work
        }
        let open = match open {
            Some(flags) if ftype == FileType::Regular => {
                let fd = self.fds.open(num, FdKind::File, flags);
                self.inodes.get_mut(num).expect("just created").open_fds += 1;
                Some(OpenResult {
                    fd: FdId(fd),
                    size: 0,
                    blocks: Vec::new(),
                    extent: self.extent_of(num),
                })
            }
            _ => None,
        };
        Ok(Reply::Created { ino, open })
    }

    fn op_open(&mut self, num: u64, flags: OpenFlags, ctx: &mut Ctx) -> WireReply {
        Ok(Reply::Opened(self.open_local_file(num, flags, ctx)?))
    }

    /// Opens a descriptor on a locally stored regular file after POSIX
    /// permission checks (paper §3.2). Shared by the standalone
    /// [`Request::OpenInode`] and the coalesced [`Request::LookupOpen`].
    fn open_local_file(
        &mut self,
        num: u64,
        flags: OpenFlags,
        ctx: &mut Ctx,
    ) -> FsResult<OpenResult> {
        let ino = self.inodes.get(num)?;
        match ino.kind {
            InodeKind::File { .. } => {}
            InodeKind::Dir { .. } => return Err(Errno::EISDIR),
            InodeKind::Pipe => return Err(Errno::EINVAL),
        }
        // Standard POSIX permission checks at the server (paper §3.2).
        if flags.readable() && !ino.mode.owner_read() {
            return Err(Errno::EACCES);
        }
        if flags.writable() && !ino.mode.owner_write() {
            return Err(Errno::EACCES);
        }
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            self.truncate_inode(num, 0)?;
        }
        let fd = self.fds.open(num, FdKind::File, flags);
        let ino = self.inodes.get_mut(num).expect("checked");
        ino.open_fds += 1;
        let (blocks, size) = match &ino.kind {
            InodeKind::File { blocks, size } => (blocks.clone(), *size),
            _ => unreachable!("checked file"),
        };
        ctx.extra += 8 * blocks.len() as u64; // block-list transfer
        Ok(OpenResult {
            fd: FdId(fd),
            size,
            blocks,
            extent: self.extent_of(num),
        })
    }

    /// The striping policy's verdict for a local file: which servers
    /// service its stripes (see [`crate::placement::extent_for`]). `None`
    /// (always, at width 1) is the paper's all-blocks-home layout.
    fn extent_of(&self, num: u64) -> Option<crate::proto::ExtentMap> {
        crate::placement::extent_for(
            InodeId {
                server: self.id,
                num,
            },
            self.stripe_unit,
            self.stripe_width,
            self.peers.len(),
        )
    }

    fn op_close(&mut self, fd: FdId, size: Option<u64>, ctx: &mut Ctx) -> WireReply {
        let (kind, ino_num) = {
            let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
            (rec.kind, rec.ino)
        };
        // Pipe end reference counts mirror the descriptor's refs: every
        // dropped reference is one fewer reader/writer (EOF and EPIPE
        // depend on these reaching zero).
        if matches!(kind, FdKind::PipeRead | FdKind::PipeWrite) {
            self.close_pipe_end(ino_num, kind, ctx);
        }
        match self.fds.close(fd.0) {
            Some(rec) => {
                // Last reference gone.
                if kind == FdKind::File {
                    let ino = self.inodes.get_mut(rec.ino)?;
                    if let (Some(sz), InodeKind::File { size, .. }) = (size, &mut ino.kind) {
                        *size = sz;
                    }
                    ino.open_fds -= 1;
                    if ino.open_fds == 0 {
                        let defer: Vec<BlockId> = std::mem::take(&mut ino.defer_free);
                        let orphaned = ino.orphaned;
                        let num = rec.ino;
                        self.release_blocks(defer);
                        if orphaned {
                            self.destroy_inode(num);
                        }
                    }
                }
                Ok(Reply::Closed { refs: 0 })
            }
            None => {
                let refs = self.fds.get(fd.0).map_or(0, |f| f.refs);
                Ok(Reply::Closed { refs })
            }
        }
    }

    fn close_pipe_end(&mut self, num: u64, kind: FdKind, ctx: &mut Ctx) {
        if let Some(pipe) = self.pipes.get_mut(num) {
            match kind {
                FdKind::PipeRead => pipe.close_reader(&mut ctx.wake),
                FdKind::PipeWrite => pipe.close_writer(&mut ctx.wake),
                FdKind::File => unreachable!("pipe end expected"),
            }
            if pipe.defunct() {
                self.pipes.remove_if_defunct(num);
                self.inodes.remove(num);
            }
        }
    }

    fn op_incref(&mut self, fd: FdId, offset: u64) -> WireReply {
        let kind = self.fds.get(fd.0).ok_or(Errno::EBADF)?.kind;
        if !self.fds.incref(fd.0, offset) {
            return Err(Errno::EBADF);
        }
        // Sharing a pipe end also adds a reader/writer reference.
        if let Some(rec) = self.fds.get(fd.0) {
            if let Some(pipe) = self.pipes.get_mut(rec.ino) {
                match kind {
                    FdKind::PipeRead => pipe.readers += 1,
                    FdKind::PipeWrite => pipe.writers += 1,
                    FdKind::File => {}
                }
            }
        }
        Ok(Reply::Unit)
    }

    fn op_shared_io(
        &mut self,
        fd: FdId,
        len: u64,
        write: bool,
        append: bool,
        ctx: &mut Ctx,
    ) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        if rec.kind != FdKind::File {
            return Err(Errno::EBADF);
        }
        let num = rec.ino;
        let cur = rec.shared_offset.ok_or(Errno::EIO)?;
        if write {
            let ino = self.inodes.get(num)?;
            let start = if append { ino.size() } else { cur };
            self.ensure_capacity(num, start + len, ctx)?;
            let ino = self.inodes.get_mut(num)?;
            if let InodeKind::File { size, .. } = &mut ino.kind {
                *size = (*size).max(start + len);
            }
            self.finish_shared_io(fd, num, start, len, ctx)
        } else {
            let ino = self.inodes.get(num)?;
            let n = len.min(ino.size().saturating_sub(cur));
            self.finish_shared_io(fd, num, cur, n, ctx)
        }
    }

    fn finish_shared_io(
        &mut self,
        fd: FdId,
        num: u64,
        offset: u64,
        len: u64,
        ctx: &mut Ctx,
    ) -> WireReply {
        let ino = self.inodes.get(num)?;
        let (all_blocks, size) = match &ino.kind {
            InodeKind::File { blocks, size } => (blocks.clone(), *size),
            _ => return Err(Errno::EBADF),
        };
        let blocks = covering_blocks(&all_blocks, offset, len);
        ctx.extra += 10 * blocks.len() as u64;
        let rec = self.fds.get_mut(fd.0).expect("looked up above");
        rec.shared_offset = Some(offset + len);
        let demote = if rec.demote_armed {
            rec.demote_armed = false;
            let off = rec.shared_offset.take().expect("was shared");
            Some(DemoteInfo {
                offset: off,
                size,
                blocks: all_blocks,
            })
        } else {
            None
        };
        Ok(Reply::SharedIo {
            offset,
            len,
            blocks,
            size,
            demote,
        })
    }

    fn op_seek(&mut self, fd: FdId, offset: i64, whence: Whence) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        if rec.kind != FdKind::File {
            return Err(Errno::ESPIPE);
        }
        let num = rec.ino;
        let cur = rec.shared_offset.ok_or(Errno::EIO)?;
        let ino = self.inodes.get(num)?;
        let size = ino.size();
        let new = fsapi::flags::apply_seek(cur, size, offset, whence)?;
        let (all_blocks, size) = match &ino.kind {
            InodeKind::File { blocks, size } => (blocks.clone(), *size),
            _ => return Err(Errno::EBADF),
        };
        let rec = self.fds.get_mut(fd.0).expect("looked up above");
        rec.shared_offset = Some(new);
        let demote = if rec.demote_armed {
            rec.demote_armed = false;
            rec.shared_offset = None;
            Some(DemoteInfo {
                offset: new,
                size,
                blocks: all_blocks,
            })
        } else {
            None
        };
        Ok(Reply::Seeked {
            offset: new,
            demote,
        })
    }

    fn op_alloc(&mut self, fd: FdId, min_size: u64, ctx: &mut Ctx) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        if rec.kind != FdKind::File {
            return Err(Errno::EBADF);
        }
        let num = rec.ino;
        self.ensure_capacity(num, min_size, ctx)?;
        let ino = self.inodes.get(num)?;
        match &ino.kind {
            InodeKind::File { blocks, size } => Ok(Reply::Blocks {
                blocks: blocks.clone(),
                size: *size,
            }),
            _ => Err(Errno::EBADF),
        }
    }

    /// Grows `num`'s block list to cover `bytes` bytes, allocating from this
    /// server's buffer-cache partition.
    fn ensure_capacity(&mut self, num: u64, bytes: u64, ctx: &mut Ctx) -> FsResult<()> {
        let ino = self.inodes.get(num)?;
        let have = ino.nblocks() as usize;
        let need = (bytes as usize).div_ceil(BLOCK_SIZE);
        if need <= have {
            return Ok(());
        }
        let fresh = self.alloc.alloc(need - have)?;
        ctx.extra += 40 * fresh.len() as u64;
        let ino = self.inodes.get_mut(num)?;
        match &mut ino.kind {
            InodeKind::File { blocks, .. } => blocks.extend(fresh),
            _ => return Err(Errno::EBADF),
        }
        Ok(())
    }

    fn op_set_size(&mut self, fd: FdId, size: u64) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        let ino = self.inodes.get_mut(rec.ino)?;
        match &mut ino.kind {
            InodeKind::File { size: s, .. } => {
                *s = size;
                Ok(Reply::Unit)
            }
            _ => Err(Errno::EBADF),
        }
    }

    fn op_truncate(&mut self, fd: FdId, size: u64) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        if rec.kind != FdKind::File {
            return Err(Errno::EBADF);
        }
        self.truncate_inode(rec.ino, size)?;
        Ok(Reply::Unit)
    }

    /// Truncates a file inode; surplus blocks are defer-freed while
    /// descriptors remain open (paper §3.2). The tail of the last kept
    /// block is zeroed so a later size extension reads zeros, as POSIX
    /// requires.
    fn truncate_inode(&mut self, num: u64, new_size: u64) -> FsResult<()> {
        let ino = self.inodes.get_mut(num)?;
        let keep = (new_size as usize).div_ceil(BLOCK_SIZE);
        let mut tail_zero: Option<(BlockId, usize)> = None;
        let cut: Vec<BlockId> = match &mut ino.kind {
            InodeKind::File { blocks, size } => {
                if new_size < *size {
                    let tail_off = new_size as usize % BLOCK_SIZE;
                    if tail_off != 0 {
                        if let Some(b) = blocks.get(keep - 1) {
                            tail_zero = Some((*b, tail_off));
                        }
                    }
                }
                *size = new_size;
                if blocks.len() > keep {
                    blocks.split_off(keep)
                } else {
                    Vec::new()
                }
            }
            _ => return Err(Errno::EBADF),
        };
        if let Some((b, off)) = tail_zero {
            let zeros = [0u8; BLOCK_SIZE];
            self.machine.dram.write(b, off, &zeros[off..]);
        }
        let ino = self.inodes.get_mut(num)?;
        if ino.open_fds > 0 {
            ino.defer_free.extend(cut);
        } else {
            self.release_blocks(cut);
        }
        Ok(())
    }

    fn op_read_data(&mut self, fd: FdId, offset: u64, len: u64, ctx: &mut Ctx) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        if rec.kind != FdKind::File {
            return Err(Errno::EBADF);
        }
        let ino = self.inodes.get(rec.ino)?;
        let (blocks, size) = match &ino.kind {
            InodeKind::File { blocks, size } => (blocks, *size),
            _ => return Err(Errno::EBADF),
        };
        let n = len.min(size.saturating_sub(offset)) as usize;
        let mut data = vec![0u8; n];
        let mut filled = 0usize;
        while filled < n {
            let pos = offset as usize + filled;
            let (bi, bo) = (pos / BLOCK_SIZE, pos % BLOCK_SIZE);
            let chunk = (BLOCK_SIZE - bo).min(n - filled);
            // Holes past the allocated block list read as zeros.
            if let Some(b) = blocks.get(bi) {
                self.machine
                    .dram
                    .read(*b, bo, &mut data[filled..filled + chunk]);
            }
            filled += chunk;
            ctx.extra += self.machine.cost.dram_direct_blk;
        }
        Ok(Reply::Data {
            data: data.into(),
            _eof: false,
        })
    }

    fn op_write_data(
        &mut self,
        fd: FdId,
        offset: u64,
        data: Arc<[u8]>,
        append: bool,
        ctx: &mut Ctx,
    ) -> WireReply {
        let rec = self.fds.get(fd.0).ok_or(Errno::EBADF)?;
        if rec.kind != FdKind::File {
            return Err(Errno::EBADF);
        }
        let num = rec.ino;
        let start = if append {
            self.inodes.get(num)?.size()
        } else {
            offset
        };
        let end = start + data.len() as u64;
        self.ensure_capacity(num, end, ctx)?;
        let ino = self.inodes.get_mut(num)?;
        let blocks = match &mut ino.kind {
            InodeKind::File { blocks, size } => {
                *size = (*size).max(end);
                blocks.clone()
            }
            _ => return Err(Errno::EBADF),
        };
        let mut written = 0usize;
        while written < data.len() {
            let pos = start as usize + written;
            let (bi, bo) = (pos / BLOCK_SIZE, pos % BLOCK_SIZE);
            let chunk = (BLOCK_SIZE - bo).min(data.len() - written);
            self.machine
                .dram
                .write(blocks[bi], bo, &data[written..written + chunk]);
            written += chunk;
            ctx.extra += self.machine.cost.dram_direct_blk;
        }
        Ok(Reply::Written {
            n: data.len() as u64,
        })
    }

    /// Services a stripe read against an explicit block list (the striped
    /// data plane). Stateless by design: the request names the blocks, so
    /// *any* server can service it against the shared DRAM — ownership of
    /// the descriptor and inode stays at the home server, only the data
    /// movement is spread. `offset` is relative to the byte range the
    /// block list covers.
    fn op_read_stripe(
        &mut self,
        blocks: &[BlockId],
        offset: u64,
        len: u64,
        ctx: &mut Ctx,
    ) -> WireReply {
        let cover = (blocks.len() * BLOCK_SIZE) as u64;
        let n = len.min(cover.saturating_sub(offset)) as usize;
        let mut data = vec![0u8; n];
        let mut filled = 0usize;
        while filled < n {
            let pos = offset as usize + filled;
            let (bi, bo) = (pos / BLOCK_SIZE, pos % BLOCK_SIZE);
            let chunk = (BLOCK_SIZE - bo).min(n - filled);
            self.machine
                .dram
                .read(blocks[bi], bo, &mut data[filled..filled + chunk]);
            filled += chunk;
            ctx.extra += self.machine.cost.dram_direct_blk;
        }
        Ok(Reply::Data {
            data: data.into(),
            _eof: false,
        })
    }

    /// The write half of the striped data plane; see
    /// [`Server::op_read_stripe`] for the addressing model. Capacity is
    /// the client's problem (blocks come pre-allocated from the home
    /// server), so writing past the listed blocks is a protocol error.
    fn op_write_stripe(
        &mut self,
        blocks: &[BlockId],
        offset: u64,
        data: Arc<[u8]>,
        ctx: &mut Ctx,
    ) -> WireReply {
        let cover = (blocks.len() * BLOCK_SIZE) as u64;
        if offset + data.len() as u64 > cover {
            return Err(Errno::EINVAL);
        }
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset as usize + written;
            let (bi, bo) = (pos / BLOCK_SIZE, pos % BLOCK_SIZE);
            let chunk = (BLOCK_SIZE - bo).min(data.len() - written);
            self.machine
                .dram
                .write(blocks[bi], bo, &data[written..written + chunk]);
            written += chunk;
            ctx.extra += self.machine.cost.dram_direct_blk;
        }
        Ok(Reply::Written {
            n: data.len() as u64,
        })
    }

    fn op_link_incref(&mut self, num: u64) -> WireReply {
        self.inodes.get_mut(num)?.nlink += 1;
        Ok(Reply::Unit)
    }

    fn op_link_decref(&mut self, num: u64) -> WireReply {
        let ino = self.inodes.get_mut(num)?;
        debug_assert!(ino.nlink > 0);
        ino.nlink -= 1;
        if ino.nlink == 0 {
            if ino.open_fds > 0 {
                // Unlinked while open: keep data until last close
                // (paper §3.4).
                ino.orphaned = true;
            } else {
                self.destroy_inode(num);
            }
        }
        Ok(Reply::Unit)
    }

    fn op_stat(&mut self, num: u64) -> WireReply {
        let ino = self.inodes.get(num)?;
        Ok(Reply::Stat(Stat {
            ino: num,
            server: self.id,
            ftype: ino.ftype(),
            size: ino.size(),
            nlink: ino.nlink,
            mode: ino.mode.0,
            blocks: ino.nblocks(),
        }))
    }

    // ----- Pipes -----------------------------------------------------------

    fn op_pipe_create(&mut self) -> WireReply {
        let num = self.inodes.alloc(Mode(0o600), InodeKind::Pipe);
        self.pipes.insert(num, Pipe::new(self.pipe_capacity));
        let rfd = self.fds.open(num, FdKind::PipeRead, OpenFlags::RDONLY);
        let wfd = self.fds.open(num, FdKind::PipeWrite, OpenFlags::WRONLY);
        self.inodes.get_mut(num).expect("just created").open_fds += 2;
        Ok(Reply::Pipe {
            ino: InodeId {
                server: self.id,
                num,
            },
            rfd: FdId(rfd),
            wfd: FdId(wfd),
        })
    }

    fn op_pipe_read(
        &mut self,
        fd: FdId,
        max: u64,
        src_core: usize,
        reply: &msg::Sender<WireReply>,
        ctx: &mut Ctx,
    ) -> Option<WireReply> {
        let rec = match self.fds.get(fd.0) {
            Some(r) if r.kind == FdKind::PipeRead => r,
            Some(_) => return Some(Err(Errno::EBADF)),
            None => return Some(Err(Errno::EBADF)),
        };
        let num = rec.ino;
        let pipe = match self.pipes.get_mut(num) {
            Some(p) => p,
            None => return Some(Err(Errno::EBADF)),
        };
        match pipe.read(max, &mut ctx.wake) {
            Some(r) => Some(r),
            None => {
                pipe.pending_reads.push_back(Parked {
                    reply: reply.clone(),
                    src_core,
                    payload: ParkedPayload::Read(max),
                });
                None
            }
        }
    }

    fn op_pipe_write(
        &mut self,
        fd: FdId,
        data: Arc<[u8]>,
        src_core: usize,
        reply: &msg::Sender<WireReply>,
        ctx: &mut Ctx,
    ) -> Option<WireReply> {
        let rec = match self.fds.get(fd.0) {
            Some(r) if r.kind == FdKind::PipeWrite => r,
            Some(_) => return Some(Err(Errno::EBADF)),
            None => return Some(Err(Errno::EBADF)),
        };
        let num = rec.ino;
        ctx.extra += data.len() as u64 / 64;
        let pipe = match self.pipes.get_mut(num) {
            Some(p) => p,
            None => return Some(Err(Errno::EBADF)),
        };
        match pipe.write(data, &mut ctx.wake) {
            Ok(r) => Some(r),
            Err(data) => {
                pipe.pending_writes.push_back(Parked {
                    reply: reply.clone(),
                    src_core,
                    payload: ParkedPayload::Write(data),
                });
                None
            }
        }
    }

    // ----- Block bookkeeping ----------------------------------------------

    /// Returns blocks to the free list, zeroing them so recycled blocks
    /// never leak prior file contents.
    fn release_blocks(&mut self, blocks: Vec<BlockId>) {
        for b in &blocks {
            self.machine.dram.zero(*b);
        }
        self.alloc.free(blocks);
    }

    /// Destroys an inode and reclaims all its blocks.
    fn destroy_inode(&mut self, num: u64) {
        if let Some(ino) = self.inodes.remove(num) {
            let mut blocks = ino.defer_free;
            if let InodeKind::File { blocks: b, .. } = ino.kind {
                blocks.extend(b);
            }
            self.release_blocks(blocks);
        }
    }

    /// Test-only view of internal state.
    #[cfg(test)]
    pub(crate) fn debug_state(&self) -> (usize, usize, usize) {
        (self.inodes.len(), self.fds.len(), self.alloc.available())
    }
}

/// The sub-slice of a file's block list covering `[offset, offset + len)`.
fn covering_blocks(blocks: &[BlockId], offset: u64, len: u64) -> Vec<BlockId> {
    if len == 0 {
        return Vec::new();
    }
    let first = (offset as usize) / BLOCK_SIZE;
    let last = ((offset + len - 1) as usize) / BLOCK_SIZE;
    blocks
        .get(first..=last.min(blocks.len().saturating_sub(1)))
        .unwrap_or(&[])
        .to_vec()
}

/// Handles to access a freshly spawned inode for tests.
#[cfg(test)]
mod tests;
