//! The client library's descriptor table.

use crate::proto::ExtentMap;
use crate::types::{FdId, InodeId};
use fsapi::{Errno, FileType, FsResult, OpenFlags};
use nccmem::BlockId;
use std::collections::{HashMap, HashSet};

/// Where a descriptor's offset lives (Hare's hybrid tracking, paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdMode {
    /// The descriptor is private to this process; the client owns the
    /// offset and performs I/O without contacting the server.
    Local {
        /// Current file offset.
        offset: u64,
    },
    /// The descriptor is shared with other processes; the server owns the
    /// offset and every read/write goes through it.
    Shared,
}

/// One open descriptor as the client sees it.
#[derive(Debug, Clone)]
pub struct FdEntry {
    /// The file's inode (identifies the owning server).
    pub ino: InodeId,
    /// Server-side handle.
    pub fdid: FdId,
    /// Open flags.
    pub flags: OpenFlags,
    /// File, directory, or pipe.
    pub ftype: FileType,
    /// Local or shared offset state.
    pub mode: FdMode,
    /// Client's view of the size (authoritative while local; refreshed on
    /// demotion).
    pub size: u64,
    /// Cached block list (valid while local).
    pub blocks: Vec<BlockId>,
    /// The file's extent map from the open reply: which servers service
    /// its stripes, or `None` for the all-blocks-home paper layout. Valid
    /// while local; striped I/O falls back to the home server when the
    /// descriptor demotes to shared.
    pub extent: Option<ExtentMap>,
    /// Indices of blocks holding dirty private-cache data to write back on
    /// close/fsync.
    pub dirty: HashSet<usize>,
    /// The process wrote through this descriptor (close sends the size).
    pub wrote: bool,
    /// The largest file size this client knows the server to have seen
    /// (from the size at open, a `SetSize`/`Truncate` it sent, or a flush
    /// that subsumed this descriptor's view). While local,
    /// `size > published_size` means a size update is buffered
    /// write-behind; fsync flushes every buffered update — one `SetSize`
    /// per inode, largest view wins — in one batched exchange.
    pub published_size: u64,
}

impl FdEntry {
    /// True for pipe ends.
    pub fn is_pipe(&self) -> bool {
        self.ftype == FileType::Pipe
    }
}

/// A descriptor exported to a spawned child (paper §3.5: exec ships "the
/// calling process's open file descriptors" to the remote core).
#[derive(Debug, Clone)]
pub struct ExportedFd {
    /// Descriptor number in the parent (preserved in the child).
    pub num: u32,
    /// Inode (and thus server).
    pub ino: InodeId,
    /// Server-side handle.
    pub fdid: FdId,
    /// Flags.
    pub flags: OpenFlags,
    /// Type.
    pub ftype: FileType,
}

/// Maximum descriptors per process (as `RLIMIT_NOFILE`).
pub const FD_LIMIT: u32 = 4096;

/// The per-process descriptor table.
#[derive(Debug, Default)]
pub struct ClientFdTable {
    map: HashMap<u32, FdEntry>,
    next: u32,
}

impl ClientFdTable {
    /// Inserts an entry at the lowest free number.
    pub fn insert(&mut self, entry: FdEntry) -> FsResult<u32> {
        if self.map.len() as u32 >= FD_LIMIT {
            return Err(Errno::EMFILE);
        }
        while self.map.contains_key(&self.next) {
            self.next = (self.next + 1) % FD_LIMIT;
        }
        let num = self.next;
        self.next = (self.next + 1) % FD_LIMIT;
        self.map.insert(num, entry);
        Ok(num)
    }

    /// Installs an entry at a fixed number (spawn import).
    pub fn insert_at(&mut self, num: u32, entry: FdEntry) {
        self.map.insert(num, entry);
    }

    /// Looks up a descriptor.
    pub fn get(&self, num: u32) -> FsResult<&FdEntry> {
        self.map.get(&num).ok_or(Errno::EBADF)
    }

    /// Looks up a descriptor mutably.
    pub fn get_mut(&mut self, num: u32) -> FsResult<&mut FdEntry> {
        self.map.get_mut(&num).ok_or(Errno::EBADF)
    }

    /// Removes a descriptor.
    pub fn remove(&mut self, num: u32) -> FsResult<FdEntry> {
        self.map.remove(&num).ok_or(Errno::EBADF)
    }

    /// All open descriptor numbers (sorted, for deterministic iteration).
    pub fn numbers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.map.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Open descriptor count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> FdEntry {
        FdEntry {
            ino: InodeId { server: 0, num: 2 },
            fdid: FdId(0),
            flags: OpenFlags::RDONLY,
            ftype: FileType::Regular,
            mode: FdMode::Local { offset: 0 },
            size: 0,
            blocks: Vec::new(),
            extent: None,
            dirty: HashSet::new(),
            wrote: false,
            published_size: 0,
        }
    }

    #[test]
    fn numbers_are_low_and_reused() {
        let mut t = ClientFdTable::default();
        let a = t.insert(entry()).unwrap();
        let b = t.insert(entry()).unwrap();
        assert_eq!((a, b), (0, 1));
        t.remove(a).unwrap();
        // Numbering continues upward before wrapping (POSIX requires lowest
        // free; we approximate with wrap-around reuse, which no workload
        // observes).
        let c = t.insert(entry()).unwrap();
        assert_eq!(c, 2);
        assert_eq!(t.numbers(), vec![1, 2]);
    }

    #[test]
    fn get_remove_errors() {
        let mut t = ClientFdTable::default();
        assert_eq!(t.get(0).err(), Some(Errno::EBADF));
        assert_eq!(t.remove(0).err(), Some(Errno::EBADF));
        let a = t.insert(entry()).unwrap();
        assert!(t.get_mut(a).is_ok());
    }

    #[test]
    fn insert_at_fixed_number() {
        let mut t = ClientFdTable::default();
        t.insert_at(7, entry());
        assert!(t.get(7).is_ok());
        assert_eq!(t.len(), 1);
    }
}
