//! The client side of the batched RPC transport.
//!
//! A per-server send queue collects independent requests destined for the
//! same server and ships each group as one [`Request::Batch`] exchange: the
//! server executes the entries in order and pays one message overhead for
//! the whole group (see `Server::op_batch`). Requests to *different*
//! servers are shipped as overlapping exchanges, like the directory
//! broadcast (§3.6.2) — so a fan-out over M operations spread across N
//! servers costs N transport exchanges instead of M independent RPCs.
//!
//! With the `batching` technique disabled, [`ClientLib::call_grouped`]
//! degrades to exactly the pre-batching behaviour: one RPC per request,
//! overlapped when the broadcast technique allows it, sequential otherwise.

use super::ClientLib;
use crate::proto::{Request, WireReply};
use crate::rpc;
use crate::types::ServerId;
use fsapi::Errno;

/// The per-server send queue: requests accumulate in arrival order, grouped
/// by destination server, and [`BatchQueue::ship`] flushes every group as
/// one batched exchange (or as plain RPCs with batching off).
pub(crate) struct BatchQueue {
    /// Groups in first-use order: `(server, indices into the flat list)`.
    groups: Vec<(ServerId, Vec<usize>)>,
    /// Every queued request, in push order.
    reqs: Vec<Option<Request>>,
}

impl BatchQueue {
    /// An empty queue.
    pub(crate) fn new() -> BatchQueue {
        BatchQueue {
            groups: Vec::new(),
            reqs: Vec::new(),
        }
    }

    /// Queues `req` for `server`, preserving global push order within the
    /// server's group. Returns the request's reply index.
    pub(crate) fn push(&mut self, server: ServerId, req: Request) -> usize {
        let idx = self.reqs.len();
        self.reqs.push(Some(req));
        match self.groups.iter_mut().find(|(s, _)| *s == server) {
            Some((_, idxs)) => idxs.push(idx),
            None => self.groups.push((server, vec![idx])),
        }
        idx
    }

    /// Number of queued requests.
    pub(crate) fn len(&self) -> usize {
        self.reqs.len()
    }
}

impl ClientLib {
    /// Ships `reqs` (one `(destination server, request)` pair each) through
    /// the batched transport, returning replies in input order.
    ///
    /// * With the `batching` technique on, requests sharing a server travel
    ///   as one [`Request::Batch`]; distinct servers' exchanges overlap.
    ///   `fail_fast` instead ships strictly in input order — *consecutive*
    ///   same-server runs share an exchange, and nothing after the first
    ///   failure executes — so ordered sequences like rename's
    ///   ADD_MAP + RM_MAP never reorder across servers.
    /// * With it off: independent RPCs — overlapped when `broadcast` allows
    ///   and ordering does not matter, sequential otherwise.
    pub(crate) fn call_grouped(
        &self,
        reqs: Vec<(ServerId, Request)>,
        fail_fast: bool,
    ) -> Vec<WireReply> {
        if !self.params.techniques.batching {
            return self.call_ungrouped(reqs, fail_fast);
        }
        if fail_fast {
            return self.ship_ordered(reqs);
        }
        let mut q = BatchQueue::new();
        for (server, req) in reqs {
            q.push(server, req);
        }
        self.ship(q)
    }

    /// The ordered (fail-fast) ship: batches only *consecutive* runs of
    /// same-server requests, executing runs sequentially in input order and
    /// skipping everything after the first failure. This preserves global
    /// order even when same-server requests interleave with other servers'.
    fn ship_ordered(&self, reqs: Vec<(ServerId, Request)>) -> Vec<WireReply> {
        let total = reqs.len();
        let mut out = Vec::with_capacity(total);
        let mut it = reqs.into_iter().peekable();
        let mut abort = false;
        while let Some((server, req)) = it.next() {
            let mut run = vec![req];
            while let Some((s, _)) = it.peek() {
                if *s != server {
                    break;
                }
                run.push(it.next().expect("peeked").1);
            }
            if abort {
                out.extend(run.iter().map(|_| Err(Errno::EAGAIN)));
                continue;
            }
            let replies = rpc::call_batch(
                &self.machine,
                &self.entity,
                &self.servers[server as usize],
                run,
                true,
            );
            // A NotOwner redirect did not execute its entry: later runs
            // must not run ahead of the re-routed one (same rule as the
            // server-side fail-fast skip).
            abort = replies
                .iter()
                .any(|r| r.is_err() || matches!(r, Ok(crate::proto::Reply::NotOwner { .. })));
            out.extend(replies);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Flushes a [`BatchQueue`]: one exchange per server group, replies
    /// returned in push order.
    pub(crate) fn ship(&self, mut q: BatchQueue) -> Vec<WireReply> {
        let mut out: Vec<WireReply> = (0..q.len()).map(|_| Err(Errno::EIO)).collect();
        // Independent groups: overlap the exchanges like a broadcast.
        // Overlap stays gated on the broadcast technique so the two
        // ablations remain orthogonal — batching controls grouping,
        // broadcast controls fan-out parallelism.
        if self.params.techniques.broadcast {
            let pending: Vec<_> = q
                .groups
                .iter()
                .map(|(server, idxs)| {
                    let batch = idxs
                        .iter()
                        .map(|&i| q.reqs[i].take().expect("each request shipped once"))
                        .collect();
                    rpc::send_batch(
                        &self.machine,
                        &self.entity,
                        &self.servers[*server as usize],
                        batch,
                        false,
                    )
                })
                .collect();
            for ((_, idxs), p) in q.groups.iter().zip(pending) {
                let replies = rpc::wait_batch(&self.machine, &self.entity, p);
                for (&i, r) in idxs.iter().zip(replies) {
                    out[i] = r;
                }
            }
            return out;
        }
        for (server, idxs) in &q.groups {
            let batch = idxs
                .iter()
                .map(|&i| q.reqs[i].take().expect("each request shipped once"))
                .collect();
            let replies = rpc::call_batch(
                &self.machine,
                &self.entity,
                &self.servers[*server as usize],
                batch,
                false,
            );
            for (&i, r) in idxs.iter().zip(replies) {
                out[i] = r;
            }
        }
        out
    }

    /// The batching-off fallback: per-request RPCs with the legacy
    /// overlap/ordering rules.
    pub(crate) fn call_ungrouped(
        &self,
        reqs: Vec<(ServerId, Request)>,
        fail_fast: bool,
    ) -> Vec<WireReply> {
        if fail_fast {
            // Sequential with early exit, like the hand-written call
            // sequences this path replaces.
            let mut out = Vec::with_capacity(reqs.len());
            let mut abort = false;
            for (server, req) in reqs {
                if abort {
                    out.push(Err(Errno::EAGAIN));
                    continue;
                }
                let r = self.call(server, req);
                abort = r.is_err() || matches!(r, Ok(crate::proto::Reply::NotOwner { .. }));
                out.push(r);
            }
            return out;
        }
        if self.params.techniques.broadcast {
            let pending: Vec<_> = reqs
                .into_iter()
                .map(|(server, req)| {
                    rpc::send_call(
                        &self.machine,
                        &self.entity,
                        &self.servers[server as usize],
                        req,
                    )
                })
                .collect();
            return pending
                .into_iter()
                .map(|p| match p {
                    Ok(p) => rpc::wait_call(&self.machine, &self.entity, p),
                    Err(e) => Err(e),
                })
                .collect();
        }
        reqs.into_iter()
            .map(|(server, req)| self.call(server, req))
            .collect()
    }
}
