//! The Hare client library.
//!
//! One client library instance backs each simulated process (paper Figure
//! 2: applications call into a per-core library which maintains caches,
//! accesses the shared buffer cache directly, and talks to file servers by
//! message passing). The library implements the POSIX surface of
//! [`fsapi::ProcFs`].

mod batch;
pub mod dircache;
mod engine;
pub mod fd;
mod io;
mod migrate;
mod ops;
mod resolve;

use crate::config::Techniques;
use crate::machine::{Entity, Machine};
use crate::placement::RoutingTable;
use crate::proto::{Reply, Request, WireReply};
use crate::rpc::{self, ServerHandle};
use crate::types::{ClientId, InodeId, ServerId};
use dircache::DirCache;
use fd::ClientFdTable;
use fsapi::{Errno, FsResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-client configuration (derived from the instance's `HareConfig`).
#[derive(Debug, Clone)]
pub struct ClientParams {
    /// Unique client id.
    pub id: ClientId,
    /// Core this process runs on.
    pub core: usize,
    /// Logical time at which this process begins (spawn completion time).
    pub start_time: u64,
    /// Technique toggles (shared with the servers).
    pub techniques: Techniques,
    /// Distribution default for `MkdirOpts { distributed: None }`.
    pub default_distributed: bool,
    /// Effective distribution flag of the root directory.
    pub root_distributed: bool,
    /// Directory-cache capacity in slots (positive + negative).
    pub dircache_capacity: usize,
    /// Stripe requests kept in flight per sequential reader (already
    /// normalized by the instance: the `readahead` toggle off is window 1,
    /// one stripe at a time).
    pub readahead_window: usize,
    /// Effective per-directory shard width (already normalized by the
    /// instance to `1..=nservers`). Routing, the readdir/rmdir fan-outs,
    /// and the redirect retry budgets are all sized by it: O(owned
    /// shards), not O(servers on the machine).
    pub dir_shard_width: usize,
    /// Page bound this client requests per `ListShard` exchange (the
    /// server clamps to its own configured bound regardless).
    pub list_page_max: usize,
}

/// Internal mutable state, serialized behind one lock (a process is a
/// single thread of control; the lock exists because `ProcFs` takes
/// `&self`).
pub(crate) struct ClientState {
    pub(crate) fds: ClientFdTable,
    pub(crate) dircache: DirCache,
    /// Per-descriptor readahead pipelines for striped sequential reads
    /// (keyed by descriptor number). Lives here, not in [`fd::FdEntry`]:
    /// in-flight calls are not clonable and the pipeline is pure
    /// prefetched state, dropped on any non-sequential use.
    pub(crate) readahead: std::collections::HashMap<u32, io::Readahead>,
}

/// A process's Hare client library.
pub struct ClientLib {
    pub(crate) machine: Arc<Machine>,
    pub(crate) servers: Arc<Vec<ServerHandle>>,
    pub(crate) params: ClientParams,
    /// This process's logical timeline.
    pub(crate) entity: Entity,
    /// This client's designated nearby server for creation affinity
    /// (paper §3.6.4: "each client library has a designated local server").
    pub(crate) local_server: ServerId,
    pub(crate) state: Mutex<ClientState>,
    /// This client's copy of the epoch-versioned routing table (the
    /// dynamic placement subsystem, `crate::placement`). Starts at epoch 0
    /// — the paper's hash — and learns placement overrides from `NotOwner`
    /// redirects, so a stale route costs one extra exchange per migrated
    /// directory. Its own lock (not `state`): routing is consulted from
    /// paths that hold the state lock and paths that do not.
    pub(crate) routing: Mutex<RoutingTable>,
    /// Per-server read-send counters backing replica selection
    /// ([`ClientLib::read_server_of`]): one slot per server, incremented
    /// on each pick, so a single client round-robins its reads over a
    /// directory's read set and co-located clients (whose ids stagger
    /// their first picks) spread statistically. Purely local — no extra
    /// exchange is ever spent choosing a replica.
    read_load: Mutex<Vec<u64>>,
    /// Reusable reply channel for the serial blocking [`ClientLib::call`]
    /// path (a process is a single thread of control, so at most one such
    /// call is outstanding). Overlapped exchanges — readahead pipelines,
    /// batched fan-outs — keep per-call channels.
    reply_slot: rpc::ReplySlot,
    detached: AtomicBool,
}

impl ClientLib {
    /// Creates a client library for a process on `core`, registering it
    /// with every server so invalidation callbacks can reach it.
    pub fn new(
        machine: Arc<Machine>,
        servers: Arc<Vec<ServerHandle>>,
        params: ClientParams,
    ) -> FsResult<ClientLib> {
        let (inval_tx, inval_rx) = msg::channel(Arc::clone(&machine.msg_stats));
        machine.register_entity(params.core);
        let local_server = designated_local_server(&machine, &servers, params.core, params.id);
        let entity = Entity::new(params.core, params.start_time);
        let dircache_capacity = params.dircache_capacity;
        let nservers = servers.len();
        let reply_slot = rpc::ReplySlot::new(Arc::clone(&machine.msg_stats));
        let lib = ClientLib {
            machine,
            servers,
            params,
            entity,
            local_server,
            state: Mutex::new(ClientState {
                fds: ClientFdTable::default(),
                dircache: DirCache::new(inval_rx, dircache_capacity),
                readahead: std::collections::HashMap::new(),
            }),
            routing: Mutex::new(RoutingTable::new()),
            read_load: Mutex::new(vec![0; nservers]),
            reply_slot,
            detached: AtomicBool::new(false),
        };
        // Registration fan-out: one RPC per server, overlapped like a
        // directory broadcast when the technique allows. (Register carries
        // the invalidation channel, which a batch envelope cannot ship, so
        // it overlaps rather than batches.)
        let replies = rpc::multicall(
            &lib.machine,
            &lib.entity,
            &lib.servers,
            lib.params.techniques.broadcast,
            |_| Request::Register {
                client: lib.params.id,
                core: lib.params.core,
                inval: inval_tx.clone(),
            },
        );
        for r in replies {
            expect_reply!(r, Reply::Unit => ())?;
        }
        Ok(lib)
    }

    /// The core this process runs on.
    pub fn core(&self) -> usize {
        self.params.core
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.params.id
    }

    /// Number of file servers.
    pub fn nservers(&self) -> usize {
        self.servers.len()
    }

    /// Directory-cache `(hits, misses, invalidations)`.
    pub fn dircache_stats(&self) -> (u64, u64, u64) {
        self.state.lock().dircache.stats()
    }

    /// Number of directory-cache slots currently held (bound diagnostics).
    pub fn dircache_len(&self) -> usize {
        self.state.lock().dircache.len()
    }

    // ----- RPC helpers -----------------------------------------------------

    pub(crate) fn call(&self, server: ServerId, req: Request) -> WireReply {
        rpc::call_reusing(
            &self.machine,
            &self.entity,
            &self.servers[server as usize],
            req,
            &self.reply_slot,
        )
    }

    /// Charges client-side CPU work to this process.
    pub(crate) fn charge(&self, cycles: u64) {
        self.entity.work(&self.machine, cycles);
    }

    /// This process's current logical time.
    pub fn vnow(&self) -> u64 {
        self.entity.now()
    }

    /// Executes application CPU work on this process (used by `compute`).
    pub fn vwork(&self, cycles: u64) {
        self.entity.work(&self.machine, cycles);
    }

    /// Waits (without consuming CPU) until logical time `t`.
    pub fn vwait(&self, t: u64) {
        self.entity.wait_until(&self.machine, t);
    }

    /// The shared machine (for diagnostics and spawn plumbing).
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Charges the client-library syscall entry cost.
    pub(crate) fn syscall(&self) {
        self.charge(self.machine.cost.syscall_base);
    }

    // ----- Placement -------------------------------------------------------

    /// The dentry shard server for `name` in `dir`: this client's routing
    /// table, which defaults to [`crate::types::dentry_shard_in`] (the one
    /// routing function shared with the servers' chained-resolution walk)
    /// and overlays the placement overrides learned from `NotOwner`
    /// redirects.
    pub(crate) fn shard_of(&self, dir: InodeId, dist: bool, name: &str) -> ServerId {
        self.routing.lock().route(
            dir,
            dist,
            name,
            self.params.dir_shard_width,
            self.servers.len(),
        )
    }

    /// The servers a directory's entries can live on: the home-anchored
    /// shard set for distributed directories
    /// ([`crate::placement::dir_shard_servers`]), or the single
    /// routed home for centralized ones. Every whole-directory fan-out
    /// (readdir's `ListShard` sweep, rmdir's mark/commit rounds) iterates
    /// exactly this set — O(owned shards), so a 4-shard directory costs
    /// four sends on a 256-server machine, not 256.
    pub(crate) fn dir_shard_set(&self, dir: InodeId, dist: bool) -> Vec<ServerId> {
        if dist {
            crate::placement::dir_shard_servers(
                dir,
                self.params.dir_shard_width,
                self.servers.len(),
            )
        } else {
            vec![self.dir_home_of(dir)]
        }
    }

    /// The redirect/retry budget for an entry operation on a directory
    /// with `owners` possible shard owners: one attempt per owner plus
    /// [`REDIRECT_SLACK`] for a migration racing the operation. Every
    /// accepted `NotOwner` redirect carries a strictly newer epoch (a
    /// no-news redirect aborts immediately with `EIO`), so the budget is
    /// a liveness backstop against a corrupted redirect chain, not a
    /// correctness bound — in practice a stale route costs exactly one
    /// extra exchange.
    pub(crate) fn retry_budget(&self, owners: usize) -> usize {
        owners + REDIRECT_SLACK
    }

    /// How many servers can own entries of a directory, for
    /// [`ClientLib::retry_budget`]: a *distributed* directory's entries
    /// never migrate (only centralized shards do), so its owners are its
    /// shard set; a *centralized* shard can be re-homed to any server by
    /// the rebalancer.
    pub(crate) fn owner_count(&self, dist: bool) -> usize {
        if dist {
            self.params.dir_shard_width
        } else {
            self.servers.len()
        }
    }

    /// The server holding a centralized directory's entries, per this
    /// client's routing table (override or home).
    pub(crate) fn dir_home_of(&self, dir: InodeId) -> ServerId {
        self.routing.lock().dir_home(dir)
    }

    /// Folds a `NotOwner` redirect into the routing table. Returns whether
    /// the redirect was news (an equal-or-older epoch is ignored — and a
    /// no-news redirect means re-sending would loop, since the route that
    /// produced it is unchanged). Accepted news always precedes a retry at
    /// the named owner, so the *next* send is pre-tagged as a redirect
    /// retry in the op's span tree (routing decisions made later — e.g. a
    /// replica pick — overwrite the tag with their own cause).
    pub(crate) fn learn_owner(&self, dir: InodeId, owner: ServerId, epoch: u64) -> bool {
        let news = self.routing.lock().learn(dir, owner, epoch);
        if news {
            self.machine.otrace.tag_next(crate::otrace::Cause::Redirect);
        }
        news
    }

    /// Adopts a replica advertisement — `dir`'s read set as of placement
    /// `epoch` — into this client's routing table (epoch-monotonic, like
    /// every placement fact). Public because each simulated process owns
    /// its own library: replica knowledge learned by the process that
    /// drove the replication must be spread to its peers by the workload
    /// explicitly, standing in for the gossip or reply piggybacking a
    /// real deployment would use. Never required for correctness — a
    /// client that never hears an advertisement just keeps reading at
    /// the home.
    pub fn adopt_replicas(&self, dir: InodeId, servers: Vec<ServerId>, epoch: u64) -> bool {
        self.routing.lock().learn_replicas(dir, servers, epoch)
    }

    /// The replica advertisement this client would spread for `dir`:
    /// `(read-set servers minus the home, epoch)`, or `None` when it
    /// knows of no live replica set.
    pub fn replica_advert(&self, dir: InodeId) -> Option<(Vec<ServerId>, u64)> {
        let routing = self.routing.lock();
        routing
            .replicas_of(dir)
            .filter(|r| !r.servers.is_empty())
            .map(|r| (r.servers.clone(), r.epoch))
    }

    /// The server to send the next **read** of centralized `dir` to: the
    /// home when no replicas are known (or the technique is off), else
    /// the least-loaded member of the read set by this client's own send
    /// counters ([`ClientLib::read_load`]), ties broken starting at a
    /// client-id-staggered offset so co-located clients fan out instead
    /// of stampeding one replica.
    pub(crate) fn read_server_of(&self, dir: InodeId) -> ServerId {
        let set = self.routing.lock().read_set(dir);
        if set.len() == 1 || !self.params.techniques.replication {
            return set[0];
        }
        let mut loads = self.read_load.lock();
        let start = self.params.id as usize % set.len();
        let mut best = set[start];
        for k in 1..set.len() {
            let s = set[(start + k) % set.len()];
            if loads[s as usize] < loads[best as usize] {
                best = s;
            }
        }
        loads[best as usize] += 1;
        best
    }

    /// The read-routed sibling of [`ClientLib::call_entry`] for
    /// operations that only observe the directory (lookups, stats,
    /// readdir probes): routes each attempt via
    /// [`ClientLib::read_server_of`] and reports, alongside the reply,
    /// whether the answering server was the **home** — replica-served
    /// results must not enter the dircache (replicas keep no tracking
    /// lists, so nothing would ever invalidate the cached copy).
    ///
    /// A `NotOwner` from a *replica* means that copy is gone (dropped on
    /// migration, rmdir, or retirement): the dead route is forgotten and
    /// the redirect folded in best-effort — no-news is tolerated there,
    /// since the retry already routes around the dropped copy. A
    /// `NotOwner` from the home keeps [`ClientLib::call_entry`]'s strict
    /// rule: no news means re-sending would loop, so the call aborts.
    pub(crate) fn call_entry_read(
        &self,
        dir: InodeId,
        dist: bool,
        name: &str,
        mk: impl Fn(&ClientLib) -> Request,
    ) -> (WireReply, bool) {
        if dist {
            // Distributed directories hash-spread their reads already and
            // are never replicated.
            return (self.call_entry(dir, dist, name, mk), true);
        }
        for _ in 0..self.retry_budget(self.owner_count(dist)) {
            let home = self.dir_home_of(dir);
            let server = self.read_server_of(dir);
            if server != home {
                // A replica-routed read, in the span tree's terms (takes
                // precedence over a pending redirect-retry tag).
                self.machine
                    .otrace
                    .tag_next(crate::otrace::Cause::ReplicaRead);
            }
            match self.call(server, mk(self)) {
                Ok(Reply::NotOwner {
                    dir: d,
                    epoch,
                    owner,
                }) => {
                    if server != home {
                        self.routing.lock().forget_replica(d, server);
                        let _ = self.learn_owner(d, owner, epoch);
                    } else if !self.learn_owner(d, owner, epoch) {
                        return (Err(Errno::EIO), true);
                    }
                }
                other => return (other, server == home),
            }
        }
        (Err(Errno::EIO), true)
    }

    /// Issues an entry RPC routed by `(dir, dist, name)`, following
    /// `NotOwner` redirects: each redirect is folded into the routing
    /// table and the request (rebuilt by `mk`) retried at the named owner.
    /// A stale route costs one extra exchange per migrated directory; the
    /// retry bound only guards against a corrupted redirect chain.
    pub(crate) fn call_entry(
        &self,
        dir: InodeId,
        dist: bool,
        name: &str,
        mk: impl Fn(&ClientLib) -> Request,
    ) -> WireReply {
        for _ in 0..self.retry_budget(self.owner_count(dist)) {
            let server = self.shard_of(dir, dist, name);
            match self.call(server, mk(self)) {
                Ok(Reply::NotOwner {
                    dir: d,
                    epoch,
                    owner,
                }) => {
                    if !self.learn_owner(d, owner, epoch) {
                        // No news: the route is unchanged, retrying loops.
                        return Err(Errno::EIO);
                    }
                }
                other => return other,
            }
        }
        Err(Errno::EIO)
    }

    /// Where to place a newly created inode (creation affinity §3.6.4):
    /// the dentry server if it is nearby (same socket), else this client's
    /// designated local server. With affinity disabled, always the dentry
    /// server (maximal coalescing).
    pub(crate) fn inode_server_for_create(&self, dentry_server: ServerId) -> ServerId {
        if !self.params.techniques.affinity {
            return dentry_server;
        }
        let dcore = self.servers[dentry_server as usize].core;
        let same_socket = self.machine.topology.socket_of(dcore)
            == self.machine.topology.socket_of(self.params.core);
        if same_socket {
            dentry_server
        } else {
            self.local_server
        }
    }

    /// Resolved distribution flag for a new directory.
    pub(crate) fn effective_dist(&self, requested: Option<bool>) -> bool {
        requested.unwrap_or(self.params.default_distributed) && self.params.techniques.distribution
    }

    // ----- Teardown ---------------------------------------------------------

    /// Closes every descriptor and unregisters from all servers. Called at
    /// process exit; subsequent calls are no-ops.
    pub fn shutdown(&self) {
        if self.detached.swap(true, Ordering::SeqCst) {
            return;
        }
        let nums = self.state.lock().fds.numbers();
        for n in nums {
            let _ = self.close_impl(n);
        }
        // Unregister fan-out through the batch layer: one exchange per
        // server (overlapped), instead of N sequential round trips.
        let _ = self.call_grouped(
            (0..self.servers.len() as ServerId)
                .map(|s| {
                    (
                        s,
                        Request::Unregister {
                            client: self.params.id,
                        },
                    )
                })
                .collect(),
            false,
        );
        self.machine.unregister_entity(self.params.core);
    }
}

impl Drop for ClientLib {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Extra retry attempts granted beyond one-per-possible-owner (see
/// [`ClientLib::retry_budget`]): covers the initial send plus one
/// migration landing between the route and the retry.
pub(crate) const REDIRECT_SLACK: usize = 2;

/// Picks the client's designated nearby server: the servers on the client's
/// socket, indexed by client id so co-located clients spread over them
/// ("each client library has a designated local server it uses in this
/// situation, to avoid all clients storing files on the same local server",
/// §3.6.4). Falls back to the lowest-latency server if the socket has none.
fn designated_local_server(
    machine: &Arc<Machine>,
    servers: &Arc<Vec<ServerHandle>>,
    core: usize,
    id: ClientId,
) -> ServerId {
    let my_socket = machine.topology.socket_of(core);
    let on_socket: Vec<ServerId> = servers
        .iter()
        .filter(|s| machine.topology.socket_of(s.core) == my_socket)
        .map(|s| s.id)
        .collect();
    if !on_socket.is_empty() {
        return on_socket[(id as usize) % on_socket.len()];
    }
    servers
        .iter()
        .min_by_key(|s| (machine.latency(core, s.core), s.id))
        .map(|s| s.id)
        .expect("at least one server")
}

/// Extracts the expected reply variant or flags a protocol error.
macro_rules! expect_reply {
    ($wire:expr, $pat:pat => $out:expr) => {
        match $wire {
            Ok($pat) => Ok($out),
            Ok(other) => {
                debug_assert!(false, "protocol mismatch: {:?}", other);
                Err(Errno::EIO)
            }
            Err(e) => Err(e),
        }
    };
}
pub(crate) use expect_reply;

impl ClientLib {
    /// Runs one POSIX operation under a causal-tracing span
    /// ([`crate::otrace`]): the root of the op's span tree, or a nested
    /// child when an operation is invoked from inside another. A no-op
    /// closure sandwich when tracing is off.
    fn traced<T>(&self, label: &'static str, f: impl FnOnce() -> FsResult<T>) -> FsResult<T> {
        if !self.machine.otrace.enabled() {
            return f();
        }
        self.machine
            .otrace
            .begin_op(label, self.params.core, self.vnow());
        let out = f();
        self.machine.otrace.end_op(self.vnow());
        out
    }
}

impl fsapi::ProcFs for ClientLib {
    fn open(&self, path: &str, flags: fsapi::OpenFlags, mode: fsapi::Mode) -> FsResult<fsapi::Fd> {
        self.traced("open", || self.open_impl(path, flags, mode).map(fsapi::Fd))
    }

    fn close(&self, fd: fsapi::Fd) -> FsResult<()> {
        self.syscall();
        self.traced("close", || self.close_impl(fd.0))
    }

    fn read(&self, fd: fsapi::Fd, buf: &mut [u8]) -> FsResult<usize> {
        self.traced("read", || self.read_impl(fd.0, buf))
    }

    fn write(&self, fd: fsapi::Fd, buf: &[u8]) -> FsResult<usize> {
        self.traced("write", || self.write_impl(fd.0, buf))
    }

    fn lseek(&self, fd: fsapi::Fd, offset: i64, whence: fsapi::Whence) -> FsResult<u64> {
        self.traced("lseek", || self.lseek_impl(fd.0, offset, whence))
    }

    fn fsync(&self, fd: fsapi::Fd) -> FsResult<()> {
        self.traced("fsync", || self.fsync_impl(fd.0))
    }

    fn ftruncate(&self, fd: fsapi::Fd, len: u64) -> FsResult<()> {
        self.traced("ftruncate", || self.ftruncate_impl(fd.0, len))
    }

    fn dup(&self, fd: fsapi::Fd) -> FsResult<fsapi::Fd> {
        self.traced("dup", || self.dup_impl(fd.0).map(fsapi::Fd))
    }

    fn pipe(&self) -> FsResult<(fsapi::Fd, fsapi::Fd)> {
        self.traced("pipe", || {
            self.pipe_impl().map(|(r, w)| (fsapi::Fd(r), fsapi::Fd(w)))
        })
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.traced("unlink", || self.unlink_impl(path))
    }

    fn mkdir_opts(&self, path: &str, mode: fsapi::Mode, opts: fsapi::MkdirOpts) -> FsResult<()> {
        self.traced("mkdir", || self.mkdir_impl(path, mode, opts))
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.traced("rmdir", || self.rmdir_impl(path))
    }

    fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        self.traced("rename", || self.rename_impl(old, new))
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<fsapi::DirEntry>> {
        self.traced("readdir", || self.readdir_impl(path))
    }

    fn stat(&self, path: &str) -> FsResult<fsapi::Stat> {
        self.traced("stat", || self.stat_impl(path))
    }

    fn fstat(&self, fd: fsapi::Fd) -> FsResult<fsapi::Stat> {
        self.traced("fstat", || self.fstat_impl(fd.0))
    }
}

impl fsapi::VClock for ClientLib {
    fn vnow(&self) -> u64 {
        ClientLib::vnow(self)
    }

    fn vwait(&self, t: u64) {
        ClientLib::vwait(self, t)
    }
}

/// Helper shared by ops/io: run an RPC that returns `Reply::Unit`.
impl ClientLib {
    pub(crate) fn call_unit(&self, server: ServerId, req: Request) -> FsResult<()> {
        expect_reply!(self.call(server, req), Reply::Unit => ())
    }
}
