//! The client library's directory-entry lookup cache.
//!
//! "Hare caches the results of directory lookups, because lookups involve
//! one RPC per pathname component, and lookups are frequent" (paper §3.6.1).
//! Servers push invalidations into the client's queue with atomic delivery;
//! the cache **drains that queue before every consult**, so any invalidation
//! sent before the current lookup began is guaranteed to be applied — the
//! "check the invalidation queue first" discipline that lets servers
//! proceed without acknowledgments.
//!
//! Three properties beyond the paper's cache:
//!
//! * **Negative entries**: an ENOENT lookup result is cached as
//!   [`Cached::Neg`]. Servers track misses exactly like hits, so the
//!   ADD_MAP that later creates the name invalidates the negative entry
//!   with the same queue-drain soundness argument. `O_CREAT` probes and
//!   repeated failing lookups then cost zero RPCs.
//! * **Allocation-free hits**: entries are keyed `dir → name`, with names
//!   stored as `Arc<str>` (shared with the eviction queue, one
//!   allocation per slot), so a hit probes two maps with borrowed `&str`
//!   keys instead of building a fresh `(InodeId, String)` tuple per lookup.
//! * **Bounded size**: the cache holds at most `capacity` slots (positive
//!   and negative combined); beyond that the oldest-inserted slot is
//!   evicted. Without the bound an adversarial probe stream — millions of
//!   distinct absent names — would grow the negative side without limit.
//!   Eviction is always sound: a dropped slot just means the next lookup
//!   re-asks the server.

use crate::proto::Invalidation;
use crate::seqfifo::SeqFifo;
use crate::types::InodeId;
use fsapi::FileType;
use std::collections::HashMap;
use std::sync::Arc;

/// A cached directory entry: everything a lookup RPC returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedDentry {
    /// The inode the name maps to.
    pub target: InodeId,
    /// Target type.
    pub ftype: FileType,
    /// Distribution flag for directory targets.
    pub dist: bool,
}

/// One cache slot: a known mapping or a known absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cached {
    /// The name resolves to this entry.
    Pos(CachedDentry),
    /// The name is known absent (a cached ENOENT).
    Neg,
}

/// The lookup cache plus its invalidation queue.
pub struct DirCache {
    entries: HashMap<InodeId, HashMap<Arc<str>, Slot>>,
    inval_rx: msg::Receiver<Invalidation>,
    /// Bounded eviction order (the seq-tagged FIFO shared with the server
    /// tracking table — see [`crate::seqfifo`] for the stale-key /
    /// recreation invariant).
    fifo: SeqFifo<(InodeId, Arc<str>)>,
    /// Live slot count (`entries` nested sizes, maintained incrementally).
    count: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// One cache slot plus the birth sequence tying it to its eviction-queue
/// entry.
#[derive(Debug, Clone, Copy)]
struct Slot {
    val: Cached,
    seq: u64,
}

impl DirCache {
    /// Creates an empty cache draining `inval_rx`, holding at most
    /// `capacity` slots.
    pub fn new(inval_rx: msg::Receiver<Invalidation>, capacity: usize) -> Self {
        DirCache {
            entries: HashMap::new(),
            inval_rx,
            fifo: SeqFifo::new(capacity),
            count: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Applies every queued invalidation; returns how many were processed
    /// (the caller charges their processing cost).
    pub fn process_invals(&mut self) -> usize {
        let mut n = 0;
        while let Ok(env) = self.inval_rx.try_recv() {
            self.remove_slot(env.payload.dir, &env.payload.name);
            n += 1;
        }
        self.invalidations += n as u64;
        n
    }

    /// Drops one slot, pruning the per-directory map when it empties.
    fn remove_slot(&mut self, dir: InodeId, name: &str) {
        if let Some(names) = self.entries.get_mut(&dir) {
            if names.remove(name).is_some() {
                self.count -= 1;
            }
            if names.is_empty() {
                self.entries.remove(&dir);
            }
        }
    }

    /// Stores `val` under `(dir, name)`, evicting the oldest slot when the
    /// cache is full. Overwriting an existing slot keeps its age. The
    /// stale-key/recreation invariant lives in [`SeqFifo`].
    fn put(&mut self, dir: InodeId, name: &str, val: Cached) {
        let slot = self.entries.entry(dir).or_default();
        match slot.get_mut(name) {
            Some(s) => {
                s.val = val;
                return;
            }
            None => {
                // One allocation shared by the map key and the queue key.
                let key: Arc<str> = Arc::from(name);
                let seq = self.fifo.admit((dir, Arc::clone(&key)));
                slot.insert(key, Slot { val, seq });
                self.count += 1;
            }
        }
        while self.count > self.fifo.capacity() {
            let entries = &self.entries;
            let Some((edir, ename)) = self
                .fifo
                .pop_evictable(|(d, n)| entries.get(d).and_then(|m| m.get(&**n)).map(|s| s.seq))
            else {
                break;
            };
            self.remove_slot(edir, &ename);
        }
        let entries = &self.entries;
        self.fifo
            .maintain(|(d, n)| entries.get(d).and_then(|m| m.get(&**n)).map(|s| s.seq));
    }

    /// Looks up `(dir, name)`, processing pending invalidations first.
    /// Returns the slot (positive or negative) and the number of
    /// invalidations drained. The probe borrows `name` — no allocation.
    pub fn lookup(&mut self, dir: InodeId, name: &str) -> (Option<Cached>, usize) {
        let drained = self.process_invals();
        let hit = self
            .entries
            .get(&dir)
            .and_then(|names| names.get(name))
            .map(|s| s.val);
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        (hit, drained)
    }

    /// Records a positive lookup result.
    pub fn insert(&mut self, dir: InodeId, name: &str, val: CachedDentry) {
        self.put(dir, name, Cached::Pos(val));
    }

    /// Records a negative lookup result (the server answered ENOENT and
    /// tracked this client for the eventual creation's invalidation).
    pub fn insert_negative(&mut self, dir: InodeId, name: &str) {
        self.put(dir, name, Cached::Neg);
    }

    /// Drops an entry the local client knows is stale (it mutated the name
    /// itself; servers do not echo invalidations to the mutator).
    pub fn remove(&mut self, dir: InodeId, name: &str) {
        self.remove_slot(dir, name);
    }

    /// `(hits, misses, invalidations)` counters. Negative hits count as
    /// hits: they elide an RPC exactly like positive ones.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Number of cached entries (positive and negative).
    pub fn len(&self) -> usize {
        debug_assert_eq!(
            self.count,
            self.entries
                .values()
                .map(|names| names.len())
                .sum::<usize>()
        );
        self.count
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.fifo.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (msg::Sender<Invalidation>, DirCache) {
        cache_with_capacity(1024)
    }

    fn cache_with_capacity(cap: usize) -> (msg::Sender<Invalidation>, DirCache) {
        let (tx, rx) = msg::channel(msg::MsgStats::shared());
        (tx, DirCache::new(rx, cap))
    }

    fn entry(num: u64) -> CachedDentry {
        CachedDentry {
            target: InodeId { server: 0, num },
            ftype: FileType::Regular,
            dist: false,
        }
    }

    fn pos(c: Option<Cached>) -> Option<CachedDentry> {
        match c {
            Some(Cached::Pos(v)) => Some(v),
            _ => None,
        }
    }

    #[test]
    fn hit_after_insert() {
        let (_tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        let (hit, _) = c.lookup(InodeId::ROOT, "a");
        assert_eq!(pos(hit).unwrap().target.num, 5);
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn queued_invalidation_applied_before_lookup() {
        let (tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        // A server invalidates the entry; the message sits in the queue.
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "a".into(),
            },
            0,
            0,
        )
        .unwrap();
        // The very next lookup must observe the invalidation (atomic
        // delivery makes this sound, paper §3.6.1).
        let (hit, drained) = c.lookup(InodeId::ROOT, "a");
        assert!(hit.is_none());
        assert_eq!(drained, 1);
    }

    #[test]
    fn negative_entry_hit_and_removal() {
        let (_tx, mut c) = cache();
        c.insert_negative(InodeId::ROOT, "ghost");
        let (hit, _) = c.lookup(InodeId::ROOT, "ghost");
        assert_eq!(hit, Some(Cached::Neg));
        assert_eq!(c.stats().0, 1, "negative hits count as hits");
        // The local client creating the name replaces the negative slot.
        c.insert(InodeId::ROOT, "ghost", entry(9));
        let (hit, _) = c.lookup(InodeId::ROOT, "ghost");
        assert_eq!(pos(hit).unwrap().target.num, 9);
    }

    #[test]
    fn negative_entry_invalidated_by_racing_create() {
        // Mirror of queued_invalidation_applied_before_lookup for negative
        // entries: a create on another client races with our cached miss.
        let (tx, mut c) = cache();
        c.insert_negative(InodeId::ROOT, "newfile");
        // The creating client's ADD_MAP invalidates trackers of the miss;
        // the message is in our queue before the creator proceeds.
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "newfile".into(),
            },
            0,
            0,
        )
        .unwrap();
        // The very next lookup must miss (and re-resolve at the server),
        // never report the stale ENOENT.
        let (hit, drained) = c.lookup(InodeId::ROOT, "newfile");
        assert!(hit.is_none(), "stale negative entry must be dropped");
        assert_eq!(drained, 1);
    }

    #[test]
    fn invalidation_of_uncached_name_is_harmless() {
        let (tx, mut c) = cache();
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "ghost".into(),
            },
            0,
            0,
        )
        .unwrap();
        assert_eq!(c.process_invals(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn local_remove() {
        let (_tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        c.remove(InodeId::ROOT, "a");
        assert!(c.lookup(InodeId::ROOT, "a").0.is_none());
        assert!(c.is_empty(), "empty per-directory maps are pruned");
    }

    #[test]
    fn len_spans_directories_and_polarities() {
        let (_tx, mut c) = cache();
        let sub = InodeId { server: 1, num: 7 };
        c.insert(InodeId::ROOT, "a", entry(1));
        c.insert_negative(InodeId::ROOT, "b");
        c.insert(sub, "a", entry(2));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_bounds_adversarial_negative_stream() {
        // A probe stream of distinct absent names must not grow the cache
        // past its capacity.
        let (_tx, mut c) = cache_with_capacity(8);
        for i in 0..10_000 {
            c.insert_negative(InodeId::ROOT, &format!("ghost{i}"));
            assert!(c.len() <= 8, "cache exceeded capacity at insert {i}");
        }
        assert_eq!(c.len(), 8);
        // Eviction is oldest-first: the latest probes survive.
        let (hit, _) = c.lookup(InodeId::ROOT, "ghost9999");
        assert_eq!(hit, Some(Cached::Neg));
        let (hit, _) = c.lookup(InodeId::ROOT, "ghost0");
        assert!(hit.is_none(), "oldest entry must have been evicted");
    }

    #[test]
    fn recreated_slot_is_not_evicted_by_its_stale_queue_key() {
        // The O_CREAT probe-then-create pattern: a slot is invalidated and
        // later recreated under the same name. The stale queue key left by
        // the first incarnation must NOT evict the fresh slot — eviction
        // has to take the true oldest entry instead.
        let (tx, mut c) = cache_with_capacity(2);
        c.insert(InodeId::ROOT, "a", entry(1));
        c.insert(InodeId::ROOT, "b", entry(2));
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "a".into(),
            },
            0,
            0,
        )
        .unwrap();
        c.process_invals();
        c.insert(InodeId::ROOT, "a", entry(3)); // recreation: youngest slot
        c.insert(InodeId::ROOT, "c", entry(4)); // overflow: must evict "b"
        assert!(
            c.lookup(InodeId::ROOT, "a").0.is_some(),
            "recreated slot evicted by its stale queue key"
        );
        assert!(c.lookup(InodeId::ROOT, "b").0.is_none(), "true oldest kept");
        assert!(c.lookup(InodeId::ROOT, "c").0.is_some());
    }

    #[test]
    fn eviction_order_survives_invalidation_churn() {
        // Interleave inserts with invalidations so the order queue carries
        // stale keys; the live count must stay bounded and consistent.
        let (tx, mut c) = cache_with_capacity(4);
        for i in 0..200 {
            c.insert(InodeId::ROOT, &format!("f{i}"), entry(i));
            if i % 3 == 0 {
                tx.send(
                    Invalidation {
                        dir: InodeId::ROOT,
                        name: format!("f{i}"),
                    },
                    0,
                    0,
                )
                .unwrap();
                c.process_invals();
            }
            assert!(c.len() <= 4);
        }
        // Re-inserting an existing name must not double-count.
        let survivors: Vec<String> = (0..200)
            .map(|i| format!("f{i}"))
            .filter(|n| c.lookup(InodeId::ROOT, n).0.is_some())
            .collect();
        for n in &survivors {
            c.insert(InodeId::ROOT, n, entry(1));
        }
        assert_eq!(c.len(), survivors.len());
    }
}
