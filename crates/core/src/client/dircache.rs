//! The client library's directory-entry lookup cache.
//!
//! "Hare caches the results of directory lookups, because lookups involve
//! one RPC per pathname component, and lookups are frequent" (paper §3.6.1).
//! Servers push invalidations into the client's queue with atomic delivery;
//! the cache **drains that queue before every consult**, so any invalidation
//! sent before the current lookup began is guaranteed to be applied — the
//! "check the invalidation queue first" discipline that lets servers
//! proceed without acknowledgments.
//!
//! Two properties beyond the paper's cache:
//!
//! * **Negative entries**: an ENOENT lookup result is cached as
//!   [`Cached::Neg`]. Servers track misses exactly like hits, so the
//!   ADD_MAP that later creates the name invalidates the negative entry
//!   with the same queue-drain soundness argument. `O_CREAT` probes and
//!   repeated failing lookups then cost zero RPCs.
//! * **Allocation-free hits**: entries are keyed `dir → name`, with names
//!   stored as `Box<str>`, so a hit probes two maps with borrowed `&str`
//!   keys instead of building a fresh `(InodeId, String)` tuple per lookup.

use crate::proto::Invalidation;
use crate::types::InodeId;
use fsapi::FileType;
use std::collections::HashMap;

/// A cached directory entry: everything a lookup RPC returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedDentry {
    /// The inode the name maps to.
    pub target: InodeId,
    /// Target type.
    pub ftype: FileType,
    /// Distribution flag for directory targets.
    pub dist: bool,
}

/// One cache slot: a known mapping or a known absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cached {
    /// The name resolves to this entry.
    Pos(CachedDentry),
    /// The name is known absent (a cached ENOENT).
    Neg,
}

/// The lookup cache plus its invalidation queue.
pub struct DirCache {
    entries: HashMap<InodeId, HashMap<Box<str>, Cached>>,
    inval_rx: msg::Receiver<Invalidation>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl DirCache {
    /// Creates an empty cache draining `inval_rx`.
    pub fn new(inval_rx: msg::Receiver<Invalidation>) -> Self {
        DirCache {
            entries: HashMap::new(),
            inval_rx,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Applies every queued invalidation; returns how many were processed
    /// (the caller charges their processing cost).
    pub fn process_invals(&mut self) -> usize {
        let mut n = 0;
        while let Ok(env) = self.inval_rx.try_recv() {
            self.remove_slot(env.payload.dir, &env.payload.name);
            n += 1;
        }
        self.invalidations += n as u64;
        n
    }

    /// Drops one slot, pruning the per-directory map when it empties.
    fn remove_slot(&mut self, dir: InodeId, name: &str) {
        if let Some(names) = self.entries.get_mut(&dir) {
            names.remove(name);
            if names.is_empty() {
                self.entries.remove(&dir);
            }
        }
    }

    /// Looks up `(dir, name)`, processing pending invalidations first.
    /// Returns the slot (positive or negative) and the number of
    /// invalidations drained. The probe borrows `name` — no allocation.
    pub fn lookup(&mut self, dir: InodeId, name: &str) -> (Option<Cached>, usize) {
        let drained = self.process_invals();
        let hit = self
            .entries
            .get(&dir)
            .and_then(|names| names.get(name))
            .copied();
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        (hit, drained)
    }

    /// Records a positive lookup result.
    pub fn insert(&mut self, dir: InodeId, name: &str, val: CachedDentry) {
        self.entries
            .entry(dir)
            .or_default()
            .insert(Box::from(name), Cached::Pos(val));
    }

    /// Records a negative lookup result (the server answered ENOENT and
    /// tracked this client for the eventual creation's invalidation).
    pub fn insert_negative(&mut self, dir: InodeId, name: &str) {
        self.entries
            .entry(dir)
            .or_default()
            .insert(Box::from(name), Cached::Neg);
    }

    /// Drops an entry the local client knows is stale (it mutated the name
    /// itself; servers do not echo invalidations to the mutator).
    pub fn remove(&mut self, dir: InodeId, name: &str) {
        self.remove_slot(dir, name);
    }

    /// `(hits, misses, invalidations)` counters. Negative hits count as
    /// hits: they elide an RPC exactly like positive ones.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Number of cached entries (positive and negative).
    pub fn len(&self) -> usize {
        self.entries.values().map(|names| names.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (msg::Sender<Invalidation>, DirCache) {
        let (tx, rx) = msg::channel(msg::MsgStats::shared());
        (tx, DirCache::new(rx))
    }

    fn entry(num: u64) -> CachedDentry {
        CachedDentry {
            target: InodeId { server: 0, num },
            ftype: FileType::Regular,
            dist: false,
        }
    }

    fn pos(c: Option<Cached>) -> Option<CachedDentry> {
        match c {
            Some(Cached::Pos(v)) => Some(v),
            _ => None,
        }
    }

    #[test]
    fn hit_after_insert() {
        let (_tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        let (hit, _) = c.lookup(InodeId::ROOT, "a");
        assert_eq!(pos(hit).unwrap().target.num, 5);
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn queued_invalidation_applied_before_lookup() {
        let (tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        // A server invalidates the entry; the message sits in the queue.
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "a".into(),
            },
            0,
            0,
        )
        .unwrap();
        // The very next lookup must observe the invalidation (atomic
        // delivery makes this sound, paper §3.6.1).
        let (hit, drained) = c.lookup(InodeId::ROOT, "a");
        assert!(hit.is_none());
        assert_eq!(drained, 1);
    }

    #[test]
    fn negative_entry_hit_and_removal() {
        let (_tx, mut c) = cache();
        c.insert_negative(InodeId::ROOT, "ghost");
        let (hit, _) = c.lookup(InodeId::ROOT, "ghost");
        assert_eq!(hit, Some(Cached::Neg));
        assert_eq!(c.stats().0, 1, "negative hits count as hits");
        // The local client creating the name replaces the negative slot.
        c.insert(InodeId::ROOT, "ghost", entry(9));
        let (hit, _) = c.lookup(InodeId::ROOT, "ghost");
        assert_eq!(pos(hit).unwrap().target.num, 9);
    }

    #[test]
    fn negative_entry_invalidated_by_racing_create() {
        // Mirror of queued_invalidation_applied_before_lookup for negative
        // entries: a create on another client races with our cached miss.
        let (tx, mut c) = cache();
        c.insert_negative(InodeId::ROOT, "newfile");
        // The creating client's ADD_MAP invalidates trackers of the miss;
        // the message is in our queue before the creator proceeds.
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "newfile".into(),
            },
            0,
            0,
        )
        .unwrap();
        // The very next lookup must miss (and re-resolve at the server),
        // never report the stale ENOENT.
        let (hit, drained) = c.lookup(InodeId::ROOT, "newfile");
        assert!(hit.is_none(), "stale negative entry must be dropped");
        assert_eq!(drained, 1);
    }

    #[test]
    fn invalidation_of_uncached_name_is_harmless() {
        let (tx, mut c) = cache();
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "ghost".into(),
            },
            0,
            0,
        )
        .unwrap();
        assert_eq!(c.process_invals(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn local_remove() {
        let (_tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        c.remove(InodeId::ROOT, "a");
        assert!(c.lookup(InodeId::ROOT, "a").0.is_none());
        assert!(c.is_empty(), "empty per-directory maps are pruned");
    }

    #[test]
    fn len_spans_directories_and_polarities() {
        let (_tx, mut c) = cache();
        let sub = InodeId { server: 1, num: 7 };
        c.insert(InodeId::ROOT, "a", entry(1));
        c.insert_negative(InodeId::ROOT, "b");
        c.insert(sub, "a", entry(2));
        assert_eq!(c.len(), 3);
    }
}
