//! The client library's directory-entry lookup cache.
//!
//! "Hare caches the results of directory lookups, because lookups involve
//! one RPC per pathname component, and lookups are frequent" (paper §3.6.1).
//! Servers push invalidations into the client's queue with atomic delivery;
//! the cache **drains that queue before every consult**, so any invalidation
//! sent before the current lookup began is guaranteed to be applied — the
//! "check the invalidation queue first" discipline that lets servers
//! proceed without acknowledgments.

use crate::proto::Invalidation;
use crate::types::InodeId;
use fsapi::FileType;
use std::collections::HashMap;

/// A cached directory entry: everything a lookup RPC returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedDentry {
    /// The inode the name maps to.
    pub target: InodeId,
    /// Target type.
    pub ftype: FileType,
    /// Distribution flag for directory targets.
    pub dist: bool,
}

/// The lookup cache plus its invalidation queue.
pub struct DirCache {
    entries: HashMap<(InodeId, String), CachedDentry>,
    inval_rx: msg::Receiver<Invalidation>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl DirCache {
    /// Creates an empty cache draining `inval_rx`.
    pub fn new(inval_rx: msg::Receiver<Invalidation>) -> Self {
        DirCache {
            entries: HashMap::new(),
            inval_rx,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Applies every queued invalidation; returns how many were processed
    /// (the caller charges their processing cost).
    pub fn process_invals(&mut self) -> usize {
        let mut n = 0;
        while let Ok(env) = self.inval_rx.try_recv() {
            self.entries.remove(&(env.payload.dir, env.payload.name));
            n += 1;
        }
        self.invalidations += n as u64;
        n
    }

    /// Looks up `(dir, name)`, processing pending invalidations first.
    /// Returns the entry and the number of invalidations drained.
    pub fn lookup(&mut self, dir: InodeId, name: &str) -> (Option<CachedDentry>, usize) {
        let drained = self.process_invals();
        let hit = self.entries.get(&(dir, name.to_string())).copied();
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        (hit, drained)
    }

    /// Records a lookup result.
    pub fn insert(&mut self, dir: InodeId, name: &str, val: CachedDentry) {
        self.entries.insert((dir, name.to_string()), val);
    }

    /// Drops an entry the local client knows is stale (it mutated the name
    /// itself; servers do not echo invalidations to the mutator).
    pub fn remove(&mut self, dir: InodeId, name: &str) {
        self.entries.remove(&(dir, name.to_string()));
    }

    /// `(hits, misses, invalidations)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (msg::Sender<Invalidation>, DirCache) {
        let (tx, rx) = msg::channel(msg::MsgStats::shared());
        (tx, DirCache::new(rx))
    }

    fn entry(num: u64) -> CachedDentry {
        CachedDentry {
            target: InodeId { server: 0, num },
            ftype: FileType::Regular,
            dist: false,
        }
    }

    #[test]
    fn hit_after_insert() {
        let (_tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        let (hit, _) = c.lookup(InodeId::ROOT, "a");
        assert_eq!(hit.unwrap().target.num, 5);
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn queued_invalidation_applied_before_lookup() {
        let (tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        // A server invalidates the entry; the message sits in the queue.
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "a".into(),
            },
            0,
            0,
        )
        .unwrap();
        // The very next lookup must observe the invalidation (atomic
        // delivery makes this sound, paper §3.6.1).
        let (hit, drained) = c.lookup(InodeId::ROOT, "a");
        assert!(hit.is_none());
        assert_eq!(drained, 1);
    }

    #[test]
    fn invalidation_of_uncached_name_is_harmless() {
        let (tx, mut c) = cache();
        tx.send(
            Invalidation {
                dir: InodeId::ROOT,
                name: "ghost".into(),
            },
            0,
            0,
        )
        .unwrap();
        assert_eq!(c.process_invals(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn local_remove() {
        let (_tx, mut c) = cache();
        c.insert(InodeId::ROOT, "a", entry(5));
        c.remove(InodeId::ROOT, "a");
        assert!(c.lookup(InodeId::ROOT, "a").0.is_none());
    }
}
