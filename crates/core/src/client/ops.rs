//! Namespace operations: open/create, unlink, mkdir, rmdir, rename,
//! readdir, stat.

use super::dircache::{Cached, CachedDentry};
use super::engine::{MultiStepOp, Next, Step};
use super::fd::{FdEntry, FdMode};
use super::resolve::{DirRef, FusedPathOp};
use super::{expect_reply, ClientLib, ClientState};
use crate::proto::{MarkResult, OpenResult, Reply, Request, TerminalOp, TerminalReply, WireReply};
use crate::types::{InodeId, ServerId};
use fsapi::{DirEntry, Errno, FileType, FsResult, MkdirOpts, Mode, OpenFlags, Stat};
use std::collections::HashSet;

impl ClientLib {
    // ----- open ------------------------------------------------------------

    pub(crate) fn open_impl(&self, path: &str, flags: OpenFlags, mode: Mode) -> FsResult<u32> {
        self.syscall();
        let mut st = self.state.lock();
        let excl = flags.contains(OpenFlags::CREAT) && flags.contains(OpenFlags::EXCL);

        // The fused fast path: one LookupPath chain resolving parents
        // *and* final component, with the coalesced open executed by the
        // final server — a cold deep open whose shards align is one
        // end-to-end exchange. O_CREAT|O_EXCL keeps the probe-elision path
        // below (its create answers the existence question; a fused open
        // would open a descriptor just to report EEXIST).
        let t = &self.params.techniques;
        if !excl && t.chained_resolution && t.fused_terminal && t.coalesced_open {
            let (mut comps, name) = fsapi::path::split_parent(path)?;
            comps.push(name);
            // O_CREAT rides the chain as a Create terminal: a missing
            // final component is created by the final server (which owns
            // its dentry shard — the coalesced placement) instead of
            // bouncing ENOENT back, so the cold create-open is one
            // exchange too. An existing name behaves exactly like Open.
            let terminal = if flags.contains(OpenFlags::CREAT) {
                TerminalOp::Create { flags, mode }
            } else {
                TerminalOp::Open { flags }
            };
            let out = self.run_op(&mut st, FusedPathOp::new(self.root_ref(), &comps, terminal))?;
            let existing = match out.dentry {
                Some(d) => match out.term {
                    Some(TerminalReply::Open(o)) => self.install_fd(&mut st, d.target, o, flags),
                    Some(TerminalReply::Created { ino, open }) => {
                        debug_assert_eq!(ino, d.target);
                        self.install_fd(&mut st, ino, open, flags)
                    }
                    // Remote inode (or non-file, or a failing local open):
                    // complete with the ordinary follow-up, which also
                    // reproduces the authoritative error (EISDIR, EACCES).
                    _ => self.open_existing(&mut st, d, flags),
                },
                None => Err(Errno::ENOENT),
            };
            return self.finish_open(&mut st, out.parent, name, flags, mode, excl, existing);
        }

        let (dir, name) = self.resolve_parent(&mut st, path)?;

        // The coalesced fast path resolves the final component and opens
        // the target in one RPC when possible.
        let existing = if self.params.techniques.coalesced_open {
            if excl {
                // O_CREAT|O_EXCL expects the name absent: when the create
                // would be coalesced (inode placed at the dentry shard),
                // skip the lookup probe RPC and let the create's atomic
                // existence check answer instead — the maildir delivery
                // pattern, where every spool name is fresh. A cross-server
                // create failing EEXIST would churn an orphan inode
                // (Create + AddMap + CloseFd + LinkDecref), so in that
                // placement keep the probe-first path. The directory cache
                // short-circuits names known present either way.
                match self.consult_dircache(&mut st, dir.ino, name) {
                    Some(Cached::Pos(_)) => return Err(Errno::EEXIST),
                    // Known absent: go straight to the create.
                    Some(Cached::Neg) => Err(Errno::ENOENT),
                    None => {
                        let shard = self.shard_of(dir.ino, dir.dist, name);
                        if self.inode_server_for_create(shard) == shard {
                            Err(Errno::ENOENT)
                        } else {
                            match self.lookup_child_uncached(&mut st, dir, name) {
                                Ok(_) => return Err(Errno::EEXIST),
                                Err(e) => Err(e),
                            }
                        }
                    }
                }
            } else {
                self.lookup_open_fast(&mut st, dir, name, flags)
            }
        } else {
            match self.lookup_child(&mut st, dir, name) {
                Ok(d) => {
                    if excl {
                        return Err(Errno::EEXIST);
                    }
                    self.open_existing(&mut st, d, flags)
                }
                Err(e) => Err(e),
            }
        };
        self.finish_open(&mut st, dir, name, flags, mode, excl, existing)
    }

    /// The create tail of `open`: turns an ENOENT on the existing-file
    /// path into a creation when `O_CREAT` asks for one, handling the
    /// create races. Shared by the fused-chain and per-component paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_open(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
        flags: OpenFlags,
        mode: Mode,
        excl: bool,
        existing: FsResult<u32>,
    ) -> FsResult<u32> {
        match existing {
            Err(Errno::ENOENT) if flags.contains(OpenFlags::CREAT) => {
                match self.create_file(st, dir, name, flags, mode) {
                    Err(Errno::EEXIST) if !excl => {
                        // Lost a create race: open the winner's file.
                        let d = self.lookup_child(st, dir, name)?;
                        self.open_existing(st, d, flags)
                    }
                    Err(Errno::EEXIST) => {
                        // Probe-elided O_EXCL hit an existing name (a
                        // lock-file retry loop, not fresh maildir spool).
                        // Cache the winner's entry so every further retry
                        // is answered locally until the holder's unlink
                        // invalidates it.
                        if self.params.techniques.dircache {
                            let _ = self.lookup_child(st, dir, name);
                        }
                        Err(Errno::EEXIST)
                    }
                    other => other,
                }
            }
            other => other,
        }
    }

    /// Opens an existing file via the coalesced `LookupOpen` RPC (extends
    /// §3.6.3 coalescing to open-existing): one round trip to the dentry
    /// shard resolves the name and — when the inode lives there too, the
    /// common case under creation affinity §3.6.4 — opens the descriptor.
    /// Falls back to a separate `OpenInode` for remote inodes.
    fn lookup_open_fast(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
        flags: OpenFlags,
    ) -> FsResult<u32> {
        match self.consult_dircache(st, dir.ino, name) {
            // Cached dentry: go straight to the inode server.
            Some(Cached::Pos(d)) => return self.open_existing(st, d, flags),
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        // Read-routed: a replica of the directory may answer. Only a
        // home-served reply may enter the dircache (replicas keep no
        // tracking lists, so a cached replica answer would never be
        // invalidated).
        let (wire, from_home) =
            self.call_entry_read(dir.ino, dir.dist, name, |lib| Request::LookupOpen {
                client: lib.params.id,
                dir: dir.ino,
                name: name.to_string(),
                flags,
            });
        let got = expect_reply!(
            wire,
            Reply::LookupOpened { target, ftype, dist, open } =>
                (CachedDentry { target, ftype, dist }, open)
        );
        match got {
            Ok((d, open)) => {
                if from_home && self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, d);
                }
                match open {
                    Some(o) => self.install_fd(st, d.target, o, flags),
                    // Remote inode (or non-file): complete with the
                    // two-RPC path; `open_existing` raises EISDIR for
                    // directories.
                    None => self.open_existing(st, d, flags),
                }
            }
            Err(Errno::ENOENT) => {
                if from_home {
                    self.cache_negative(st, dir.ino, name);
                }
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    fn open_existing(
        &self,
        st: &mut ClientState,
        dentry: CachedDentry,
        flags: OpenFlags,
    ) -> FsResult<u32> {
        if dentry.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let open = expect_reply!(
            self.call(
                dentry.target.server,
                Request::OpenInode {
                    client: self.params.id,
                    num: dentry.target.num,
                    flags,
                },
            ),
            Reply::Opened(o) => o
        )?;
        self.install_fd(st, dentry.target, open, flags)
    }

    /// Creates and opens a new file. One coalesced message when the dentry
    /// shard and the inode server coincide (paper §3.6.3); otherwise a
    /// create+open at the inode server followed by ADD_MAP at the shard.
    fn create_file(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
        flags: OpenFlags,
        mode: Mode,
    ) -> FsResult<u32> {
        fsapi::path::validate_name(name)?;
        // The placement decision (coalesce at the dentry shard vs. place
        // the inode near the creator) depends on the routed shard, so a
        // NotOwner redirect restarts the decision under the updated table
        // — new files under a migrated directory coalesce at its new
        // owner. Every accepted redirect raises the directory's epoch, so
        // the retry loop terminates within the parent's owner count.
        for _ in 0..self.retry_budget(self.owner_count(dir.dist)) {
            let dentry_server = self.shard_of(dir.ino, dir.dist, name);
            let inode_server = self.inode_server_for_create(dentry_server);

            if inode_server == dentry_server {
                let got = match self.call(
                    inode_server,
                    Request::Create {
                        client: self.params.id,
                        ftype: FileType::Regular,
                        mode,
                        dist: false,
                        add_map: Some((dir.ino, name.to_string())),
                        open: Some(flags),
                    },
                ) {
                    Ok(Reply::NotOwner {
                        dir: d,
                        epoch,
                        owner,
                    }) => {
                        if !self.learn_owner(d, owner, epoch) {
                            return Err(Errno::EIO);
                        }
                        continue;
                    }
                    r => expect_reply!(r, Reply::Created { ino, open } => (ino, open)),
                };
                let (ino, open) = got?;
                let open = open.ok_or(Errno::EIO)?;
                if self.params.techniques.dircache {
                    st.dircache.insert(
                        dir.ino,
                        name,
                        CachedDentry {
                            target: ino,
                            ftype: FileType::Regular,
                            dist: false,
                        },
                    );
                }
                return self.install_fd(st, ino, open, flags);
            }

            // Affinity placement: inode near the creator, entry at its
            // shard (the ADD_MAP follows redirects via call_entry).
            let (ino, open) = expect_reply!(
                self.call(
                    inode_server,
                    Request::Create {
                        client: self.params.id,
                        ftype: FileType::Regular,
                        mode,
                        dist: false,
                        add_map: None,
                        open: Some(flags),
                    },
                ),
                Reply::Created { ino, open } => (ino, open)
            )?;
            let open = open.ok_or(Errno::EIO)?;
            let added = expect_reply!(
                self.call_entry(dir.ino, dir.dist, name, |lib| Request::AddMap {
                    client: lib.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                    target: ino,
                    ftype: FileType::Regular,
                    dist: false,
                    replace: false,
                }),
                Reply::AddMapped { replaced } => replaced
            );
            return match added {
                Ok(_) => {
                    if self.params.techniques.dircache {
                        st.dircache.insert(
                            dir.ino,
                            name,
                            CachedDentry {
                                target: ino,
                                ftype: FileType::Regular,
                                dist: false,
                            },
                        );
                    }
                    self.install_fd(st, ino, open, flags)
                }
                Err(e) => {
                    // Undo the orphaned inode (lost race or vanished
                    // directory).
                    let _ = self.call(
                        ino.server,
                        Request::CloseFd {
                            fd: open.fd,
                            size: None,
                        },
                    );
                    let _ = self.call(ino.server, Request::LinkDecref { num: ino.num });
                    Err(e)
                }
            };
        }
        Err(Errno::EIO)
    }

    /// Installs a client descriptor for a server-side open, applying the
    /// open half of close-to-open consistency: invalidate this core's
    /// private-cache copies of the file's blocks so reads observe the last
    /// writer's write-back (paper §3.2).
    fn install_fd(
        &self,
        st: &mut ClientState,
        ino: InodeId,
        open: OpenResult,
        flags: OpenFlags,
    ) -> FsResult<u32> {
        let dropped = self.machine.with_cache(self.params.core, |cache, _| {
            cache.invalidate_all(open.blocks.iter().copied())
        });
        self.charge(self.machine.cost.invalidate_blk * open.blocks.len().max(dropped) as u64);
        let entry = FdEntry {
            ino,
            fdid: open.fd,
            flags,
            ftype: FileType::Regular,
            mode: FdMode::Local { offset: 0 },
            size: open.size,
            blocks: open.blocks,
            extent: open.extent,
            dirty: HashSet::new(),
            wrote: false,
            published_size: open.size,
        };
        st.fds.insert(entry)
    }

    // ----- unlink ----------------------------------------------------------

    pub(crate) fn unlink_impl(&self, path: &str) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let (dir, name) = self.resolve_parent(&mut st, path)?;
        let (target, _ftype) = expect_reply!(
            self.call_entry(dir.ino, dir.dist, name, |lib| Request::RmMap {
                client: lib.params.id,
                dir: dir.ino,
                name: name.to_string(),
                must_be_file: true,
            }),
            Reply::RmMapped { target, ftype } => (target, ftype)
        )?;
        st.dircache.remove(dir.ino, name);
        self.call_unit(target.server, Request::LinkDecref { num: target.num })
    }

    // ----- mkdir -----------------------------------------------------------

    pub(crate) fn mkdir_impl(&self, path: &str, mode: Mode, opts: MkdirOpts) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let (dir, name) = self.resolve_parent(&mut st, path)?;
        fsapi::path::validate_name(name)?;
        let dist = self.effective_dist(opts.distributed);
        // Like create_file: a NotOwner redirect on the coalesced form
        // restarts the placement decision under the updated table.
        for _ in 0..self.retry_budget(self.owner_count(dir.dist)) {
            let dentry_server = self.shard_of(dir.ino, dir.dist, name);
            let home_server = self.inode_server_for_create(dentry_server);

            if home_server == dentry_server {
                let got = match self.call(
                    home_server,
                    Request::Create {
                        client: self.params.id,
                        ftype: FileType::Directory,
                        mode,
                        dist,
                        add_map: Some((dir.ino, name.to_string())),
                        open: None,
                    },
                ) {
                    Ok(Reply::NotOwner {
                        dir: d,
                        epoch,
                        owner,
                    }) => {
                        if !self.learn_owner(d, owner, epoch) {
                            return Err(Errno::EIO);
                        }
                        continue;
                    }
                    r => expect_reply!(r, Reply::Created { ino, .. } => ino),
                };
                let ino = got?;
                if self.params.techniques.dircache {
                    st.dircache.insert(
                        dir.ino,
                        name,
                        CachedDentry {
                            target: ino,
                            ftype: FileType::Directory,
                            dist,
                        },
                    );
                }
                return Ok(());
            }

            let ino = expect_reply!(
                self.call(
                    home_server,
                    Request::Create {
                        client: self.params.id,
                        ftype: FileType::Directory,
                        mode,
                        dist,
                        add_map: None,
                        open: None,
                    },
                ),
                Reply::Created { ino, .. } => ino
            )?;
            let added = expect_reply!(
                self.call_entry(dir.ino, dir.dist, name, |lib| Request::AddMap {
                    client: lib.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                    target: ino,
                    ftype: FileType::Directory,
                    dist,
                    replace: false,
                }),
                Reply::AddMapped { replaced } => replaced
            );
            return match added {
                Ok(_) => {
                    if self.params.techniques.dircache {
                        st.dircache.insert(
                            dir.ino,
                            name,
                            CachedDentry {
                                target: ino,
                                ftype: FileType::Directory,
                                dist,
                            },
                        );
                    }
                    Ok(())
                }
                Err(e) => {
                    let _ = self.call(ino.server, Request::LinkDecref { num: ino.num });
                    Err(e)
                }
            };
        }
        Err(Errno::EIO)
    }

    // ----- rmdir -----------------------------------------------------------

    pub(crate) fn rmdir_impl(&self, path: &str) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let (parent, name) = self.resolve_parent(&mut st, path)?;
        let d = self.lookup_child(&mut st, parent, name)?;
        if d.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        if d.target == InodeId::ROOT {
            return Err(Errno::EBUSY);
        }
        let dir = d.target;
        let dist = d.dist && self.params.techniques.distribution;

        // The three-phase fan-out set. A distributed directory's entries
        // are confined to its shard set by routing, so marking the set is
        // marking every server that could hold an entry (the home is
        // always a member, so the commit's inode destruction lands). A
        // migrated centralized directory's entries live wholly at its
        // current owner — but the owner this client has recorded may be
        // one migration behind, so that rare path keeps the machine-wide
        // sweep.
        let mark_set: Vec<ServerId> = if dist {
            self.dir_shard_set(dir, true)
        } else {
            (0..self.nservers() as ServerId).collect()
        };

        // A migrated centralized directory's entries and inode live on
        // different servers, so the single-message removal no longer
        // applies: the three-phase protocol checks every server (the
        // override owner reports its entries, the home server destroys the
        // inode on commit). A client that does not yet know about the
        // migration learns it from the central attempt's NotOwner.
        let migrated = self.routing.lock().override_of(dir).is_some();
        if !dist && !migrated {
            // Centralized: a single atomic message to the home server.
            match self.call(dir.server, Request::RmdirCentral { dir }) {
                Ok(Reply::NotOwner {
                    dir: rd,
                    epoch,
                    owner,
                }) => {
                    self.learn_owner(rd, owner, epoch);
                    self.run_op(&mut st, RmdirDistOp::new(dir, mark_set))??;
                }
                r => expect_reply!(r, Reply::Unit => ())?,
            }
        } else {
            self.run_op(&mut st, RmdirDistOp::new(dir, mark_set))??;
        }

        // Remove the entry from the parent and drop the cached dentry.
        let _ = expect_reply!(
            self.call_entry(parent.ino, parent.dist, name, |lib| Request::RmMap {
                client: lib.params.id,
                dir: parent.ino,
                name: name.to_string(),
                must_be_file: false,
            }),
            Reply::RmMapped { target, ftype } => (target, ftype)
        )?;
        st.dircache.remove(parent.ino, name);
        Ok(())
    }

    // (The three-phase distributed removal protocol lives in
    // [`RmdirDistOp`] below, driven by the operation engine.)

    // ----- rename ----------------------------------------------------------

    pub(crate) fn rename_impl(&self, old: &str, new: &str) -> FsResult<()> {
        self.syscall();
        let old_n = fsapi::path::normalize(old)?;
        let new_n = fsapi::path::normalize(new)?;
        if old_n == new_n {
            return Ok(());
        }
        // POSIX: renaming a directory into its own subtree is invalid
        // (would disconnect the subtree from the namespace).
        if new_n.starts_with(old_n.as_str()) && new_n.as_bytes().get(old_n.len()) == Some(&b'/') {
            return Err(Errno::EINVAL);
        }
        let mut st = self.state.lock();
        // Lockstep prefetch: both parent chains resolve concurrently
        // through the batched transport.
        let ((old_dir, old_name), (new_dir, new_name)) =
            self.resolve_parent_pair(&mut st, &old_n, &new_n)?;
        fsapi::path::validate_name(new_name)?;
        let d = self.lookup_child(&mut st, old_dir, old_name)?;

        // Paper §3.3: "rename first contacts the server storing the new
        // name, to create (or replace) a hard link with the new name, and
        // then contacts the server storing the old name to unlink it."
        // The engine's ordered step keeps exactly that order — and when
        // both names hash to the same shard server, the pair travels as
        // one batched exchange instead of two RPCs. The displaced target's
        // link-decref (if any) is the op's optional third step. Shards are
        // routed at emit time so a NotOwner redirect (a parent's shard
        // migrated) re-issues just the bounced half at the new owner.
        self.run_op(
            &mut st,
            RenameCommitOp {
                new_dir,
                new_name,
                old_dir,
                old_name,
                moved: d,
                sent: RenameSent::Nothing,
                add_done: false,
                rm_done: false,
                replaced: None,
                failed: None,
                redirects: self
                    .retry_budget(self.owner_count(old_dir.dist) + self.owner_count(new_dir.dist))
                    as u32,
            },
        )??;

        st.dircache.remove(old_dir.ino, old_name);
        if self.params.techniques.dircache {
            st.dircache.insert(new_dir.ino, new_name, d);
        }
        Ok(())
    }

    // ----- readdir ---------------------------------------------------------

    pub(crate) fn readdir_impl(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        Ok(self
            .readdir_inner(path, false)?
            .into_iter()
            .map(|(e, _)| e)
            .collect())
    }

    /// The shared listing walk behind `readdir` and `readdir_plus`: each
    /// entry comes back with the stat the fused `List` terminal prefetched
    /// for it, if any (`plus` asks the final chain server to stat every
    /// listed entry whose inode it stores).
    fn readdir_inner(&self, path: &str, plus: bool) -> FsResult<Vec<(DirEntry, Option<Stat>)>> {
        self.syscall();
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;

        // Chain the resolution into the listing: the final server of the
        // LookupPath chain returns *its* shard of the target directory in
        // the resolution reply, so the fan-out below skips it — and a
        // centralized directory listed by its own home server costs no
        // fan-out round at all.
        let t = &self.params.techniques;
        let mut pre: Option<PrefetchedPage> = None;
        let dir = if !comps.is_empty() && t.chained_resolution && t.fused_terminal {
            let out = self.run_op(
                &mut st,
                FusedPathOp::new(self.root_ref(), &comps, TerminalOp::List { plus }),
            )?;
            let d = out.dentry.ok_or(Errno::ENOENT)?;
            if d.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            if let Some(TerminalReply::List {
                server,
                entries,
                stats,
                next,
            }) = out.term
            {
                pre = Some((server, entries, stats, next));
            }
            DirRef {
                ino: d.target,
                dist: d.dist && t.distribution,
            }
        } else {
            self.resolve_dir(&mut st, &comps)?
        };

        let with_stats = |entries: Vec<DirEntry>, stats: Vec<Option<Stat>>| {
            let mut stats = stats.into_iter();
            entries
                .into_iter()
                .map(|e| {
                    let s = stats.next().flatten();
                    (e, s)
                })
                .collect::<Vec<_>>()
        };

        // Seed the paged walk. Distributed: one first-page cursor per
        // *owned shard* — the directory's home-anchored shard set, not
        // every server on the machine — with the shard that rode the
        // resolution chain entering at its continuation cursor (or skipped
        // entirely when its first page was the whole shard). Centralized:
        // everything lives at the directory's home per the routing table;
        // if that is the server that answered the chain, only the
        // continuation (if any) remains.
        let (mut out, pending): (Vec<ListedEntry>, Vec<PageCursor>) = if dir.dist {
            let pre_server = pre.as_ref().map(|&(s, ..)| s);
            let mut pending: Vec<PageCursor> = self
                .dir_shard_set(dir.ino, true)
                .into_iter()
                .filter(|s| pre_server != Some(*s))
                .map(|s| (s, None))
                .collect();
            let out = match pre {
                Some((server, entries, stats, next)) => {
                    if let Some(cursor) = next {
                        pending.push((server, Some(cursor)));
                    }
                    with_stats(entries, stats)
                }
                None => Vec::new(),
            };
            (out, pending)
        } else {
            let home = self.dir_home_of(dir.ino);
            match pre {
                Some((server, entries, stats, next)) if server == home => (
                    with_stats(entries, stats),
                    next.map(|c| (server, Some(c))).into_iter().collect(),
                ),
                // First page read-routed: a replica serves the listing
                // too (the name cursor is copy-independent, so later
                // pages may land anywhere in the read set).
                _ => {
                    let s = self.read_server_of(dir.ino);
                    if s != home {
                        self.machine
                            .otrace
                            .tag_next(crate::otrace::Cause::ReplicaRead);
                    }
                    (Vec::new(), vec![(s, None)])
                }
            }
        };
        let listed = self.run_op(
            &mut st,
            ListPagesOp {
                dir: dir.ino,
                pending,
                sent: Vec::new(),
                entries: Vec::new(),
                redirects: self.retry_budget(self.owner_count(dir.dist)),
            },
        )?;
        drop(st);
        out.extend(listed.into_iter().map(|e| (e, None)));
        self.charge(20 * out.len() as u64);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    // ----- stat ------------------------------------------------------------

    pub(crate) fn stat_impl(&self, path: &str) -> FsResult<Stat> {
        self.syscall();
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;
        let Some((&name, parents)) = comps.split_last() else {
            drop(st);
            return self.stat_inode(InodeId::ROOT);
        };

        // The fused fast path: one LookupPath chain resolving parents
        // *and* final component, with the coalesced stat executed by the
        // final server — a cold deep stat whose shards align is one
        // end-to-end exchange.
        let t = &self.params.techniques;
        if t.chained_resolution && t.fused_terminal && t.coalesced_stat {
            let out = self.run_op(
                &mut st,
                FusedPathOp::new(self.root_ref(), &comps, TerminalOp::Stat),
            )?;
            let d = out.dentry.ok_or(Errno::ENOENT)?;
            drop(st);
            return match out.term {
                Some(TerminalReply::Stat(s)) => Ok(s),
                // Remote inode: complete with the ordinary follow-up.
                _ => self.stat_inode(d.target),
            };
        }

        let dir = self.resolve_dir(&mut st, parents)?;

        // Cached dentry: go straight to the inode server.
        match self.consult_dircache(&mut st, dir.ino, name) {
            Some(Cached::Pos(d)) => {
                drop(st);
                return self.stat_inode(d.target);
            }
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        if !self.params.techniques.coalesced_stat {
            let d = self.lookup_child_uncached(&mut st, dir, name)?;
            drop(st);
            return self.stat_inode(d.target);
        }

        // Coalesced lookup+stat (the `stat` sibling of `lookup_open_fast`):
        // one round trip to the dentry shard resolves the name and — when
        // the inode lives there too — returns the metadata, for depth+1
        // RPCs instead of depth+2.
        // Read-routed: a replica of the directory may answer. Only
        // home-served replies (positive or negative) may enter the
        // dircache — see `lookup_open_fast`.
        let (wire, from_home) =
            self.call_entry_read(dir.ino, dir.dist, name, |lib| Request::LookupStat {
                client: lib.params.id,
                dir: dir.ino,
                name: name.to_string(),
            });
        let got = expect_reply!(
            wire,
            Reply::LookupStated { target, ftype, dist, stat } =>
                (CachedDentry { target, ftype, dist }, stat)
        );
        match got {
            Ok((d, stat)) => {
                if from_home && self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, d);
                }
                drop(st);
                match stat {
                    Some(s) => Ok(s),
                    // Remote inode: complete with the two-RPC path.
                    None => self.stat_inode(d.target),
                }
            }
            Err(Errno::ENOENT) => {
                if from_home {
                    self.cache_negative(&mut st, dir.ino, name);
                }
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    /// The plain `StatInode` round trip.
    fn stat_inode(&self, ino: InodeId) -> FsResult<Stat> {
        expect_reply!(
            self.call(ino.server, Request::StatInode { num: ino.num }),
            Reply::Stat(s) => s
        )
    }

    // ----- readdir + stat (the `ls -l` pattern) ----------------------------

    /// Lists a directory and stats every entry, using the batched transport
    /// to group the per-entry `StatInode`s by inode server: M entries
    /// spread over N servers cost N stat exchanges instead of M RPCs.
    /// Entries whose stats rode the fused `List` terminal (their inodes
    /// live on the final chain server) are excluded from the fan-out
    /// entirely — on a deep path to a directory whose files were created
    /// by their shard's server, the whole `ls -l` is the chain plus the
    /// remaining shards.
    ///
    /// Entries whose stat fails are skipped rather than failing the whole
    /// listing — an entry can legitimately vanish between the `ListShard`
    /// fan-out and the stat (a concurrent unlink), exactly like `ls -l`
    /// dropping a file that disappears mid-listing.
    pub fn readdir_plus(&self, path: &str) -> FsResult<Vec<(DirEntry, Stat)>> {
        self.traced("readdir_plus", || {
            let entries = self.readdir_inner(path, true)?;
            let reqs: Vec<(ServerId, Request)> = entries
                .iter()
                .filter(|(_, s)| s.is_none())
                .map(|(e, _)| (e.server, Request::StatInode { num: e.ino }))
                .collect();
            let mut replies = self.call_grouped(reqs, false).into_iter();
            Ok(entries
                .into_iter()
                .filter_map(|(e, pre)| match pre {
                    Some(s) => Some((e, s)),
                    None => match replies.next() {
                        Some(Ok(Reply::Stat(s))) => Some((e, s)),
                        _ => None,
                    },
                })
                .collect())
        })
    }
}

/// One shard's place in a paged listing: the server to ask and the name
/// cursor to resume after (`None` asks for the first page).
type PageCursor = (ServerId, Option<String>);

/// The first page a fused `List` terminal prefetched during resolution:
/// the answering server, its entries and per-entry stats, and the
/// continuation cursor if its shard didn't fit in one page.
type PrefetchedPage = (ServerId, Vec<DirEntry>, Vec<Option<Stat>>, Option<String>);

/// A listed entry with the stat prefetched for it, if any.
type ListedEntry = (DirEntry, Option<Stat>);

/// A paged directory listing, as an engine-driven state machine: every
/// outstanding shard advances one page per round through the batched
/// transport, so a listing over S shards whose deepest shard needs P
/// pages costs max(P) grouped exchanges, not S×P round trips. The cursor
/// is a *name* (the last one the previous page returned), so it stays
/// valid across concurrent inserts and removes — and across a wholesale
/// shard migration: a `NotOwner` between pages (a centralized shard moved
/// mid-listing) re-issues the same cursor at the learned owner.
struct ListPagesOp {
    dir: InodeId,
    /// Cursors awaiting their next page; `None` asks for the first.
    pending: Vec<PageCursor>,
    /// The in-flight round, in request order (reply `i` answers `sent[i]`).
    sent: Vec<PageCursor>,
    entries: Vec<DirEntry>,
    /// Redirect budget, counted like every other redirect loop.
    redirects: usize,
}

impl MultiStepOp for ListPagesOp {
    type Out = Vec<DirEntry>;

    fn step(
        &mut self,
        lib: &ClientLib,
        _st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<Vec<DirEntry>>> {
        if let Some(rs) = replies {
            let sent = std::mem::take(&mut self.sent);
            for ((server, after), r) in sent.into_iter().zip(rs) {
                if let Ok(Reply::NotOwner { dir, epoch, owner }) = &r {
                    // A redirect from a non-home server means a replica
                    // dropped its copy mid-listing: forget the dead route
                    // and resume this cursor at the home (no-news there is
                    // tolerated — the retry already routes around the
                    // copy). A home redirect is a migration, folded in as
                    // before.
                    if server != lib.dir_home_of(*dir) {
                        lib.routing.lock().forget_replica(*dir, server);
                    }
                    lib.learn_owner(*dir, *owner, *epoch);
                    if self.redirects == 0 {
                        return Err(Errno::EIO);
                    }
                    self.redirects -= 1;
                    self.pending.push((lib.dir_home_of(self.dir), after));
                    continue;
                }
                let (entries, next) =
                    expect_reply!(r, Reply::Shard { entries, next } => (entries, next))?;
                self.entries.extend(entries);
                if let Some(cursor) = next {
                    self.pending.push((server, Some(cursor)));
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(Next::Done(std::mem::take(&mut self.entries)));
        }
        self.sent = std::mem::take(&mut self.pending);
        let reqs = self
            .sent
            .iter()
            .map(|(s, after)| {
                (
                    *s,
                    Request::ListShard {
                        dir: self.dir,
                        after: after.clone(),
                        max: 0,
                    },
                )
            })
            .collect();
        Ok(Next::Run(Step::Grouped(reqs)))
    }
}

/// The mutation phase of rename, as an engine-driven state machine: the
/// ordered (fail-fast) ADD_MAP + RM_MAP pair — one batched exchange when
/// both names share a shard server — followed, when the ADD_MAP displaced
/// an existing target, by that target's link-decref. Shards are routed at
/// emit time through the client's routing table; a half answered
/// `NotOwner` (its parent's shard migrated) is re-issued alone at the
/// learned owner, so a migration mid-rename costs one extra exchange and
/// never fails the operation.
struct RenameCommitOp<'a> {
    new_dir: DirRef,
    new_name: &'a str,
    old_dir: DirRef,
    old_name: &'a str,
    /// The dentry being renamed.
    moved: CachedDentry,
    sent: RenameSent,
    add_done: bool,
    rm_done: bool,
    replaced: Option<(InodeId, FileType)>,
    /// First protocol failure; carried to the end so cleanup still runs.
    failed: Option<Errno>,
    /// Redirect budget: both halves may bounce on the *same* migration
    /// (one redirect is then no news to the table but still requires a
    /// re-send), so unlike single-request paths the loop is bounded by a
    /// count, not by epoch progress.
    redirects: u32,
}

/// What the previous step shipped.
enum RenameSent {
    Nothing,
    Pair,
    AddOnly,
    RmOnly,
    Decref,
}

impl RenameCommitOp<'_> {
    fn add_request(&self, lib: &ClientLib) -> (ServerId, Request) {
        (
            lib.shard_of(self.new_dir.ino, self.new_dir.dist, self.new_name),
            Request::AddMap {
                client: lib.params.id,
                dir: self.new_dir.ino,
                name: self.new_name.to_string(),
                target: self.moved.target,
                ftype: self.moved.ftype,
                dist: self.moved.dist,
                replace: true,
            },
        )
    }

    fn rm_request(&self, lib: &ClientLib) -> (ServerId, Request) {
        (
            lib.shard_of(self.old_dir.ino, self.old_dir.dist, self.old_name),
            Request::RmMap {
                client: lib.params.id,
                dir: self.old_dir.ino,
                name: self.old_name.to_string(),
                must_be_file: false,
            },
        )
    }

    /// Notes one redirect against the budget; an exhausted budget turns
    /// into the protocol failure a corrupted redirect chain deserves.
    fn note_redirect(&mut self, lib: &ClientLib, dir: InodeId, owner: ServerId, epoch: u64) {
        lib.learn_owner(dir, owner, epoch);
        if self.redirects == 0 {
            self.failed = Some(Errno::EIO);
            return;
        }
        self.redirects -= 1;
    }

    /// Absorbs the ADD_MAP half's reply; `step` rederives what to re-send
    /// from the `add_done`/`rm_done`/`failed` flags this updates.
    fn absorb_add(&mut self, lib: &ClientLib, reply: WireReply) {
        if let Ok(Reply::NotOwner { dir, epoch, owner }) = &reply {
            self.note_redirect(lib, *dir, *owner, *epoch);
            return;
        }
        match expect_reply!(reply, Reply::AddMapped { replaced } => replaced) {
            Ok(r) => {
                self.add_done = true;
                self.replaced = r;
            }
            Err(e) => self.failed = self.failed.or(Some(e)),
        }
    }

    /// Absorbs the RM_MAP half's reply. An `EAGAIN` while the ADD_MAP has
    /// neither succeeded nor failed is the fail-fast skip behind the
    /// ADD_MAP's *redirect* (every transport skips ordered entries after a
    /// NotOwner, preserving add-before-rm): the RM_MAP never executed and
    /// stays pending, to be re-sent together with the re-routed ADD_MAP.
    /// An `EAGAIN` after a failed ADD_MAP is the ordinary skip — the
    /// ADD_MAP's error is the operation's.
    fn absorb_rm(&mut self, lib: &ClientLib, reply: WireReply) {
        if let Ok(Reply::NotOwner { dir, epoch, owner }) = &reply {
            self.note_redirect(lib, *dir, *owner, *epoch);
            return;
        }
        if self.failed.is_some() {
            // Skipped (or moot) behind the ADD_MAP failure.
            return;
        }
        if !self.add_done && matches!(reply, Err(Errno::EAGAIN)) {
            // Skipped behind the ADD_MAP's redirect: still pending.
            return;
        }
        match expect_reply!(reply, Reply::RmMapped { target, ftype } => (target, ftype)) {
            Ok(_) => self.rm_done = true,
            Err(e) => self.failed = Some(e),
        }
    }
}

impl MultiStepOp for RenameCommitOp<'_> {
    type Out = FsResult<()>;

    fn step(
        &mut self,
        lib: &ClientLib,
        _st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<FsResult<()>>> {
        if let Some(rs) = replies {
            let mut it = rs.into_iter();
            match self.sent {
                RenameSent::Nothing => return Err(Errno::EIO),
                RenameSent::Pair => {
                    let add = it.next().ok_or(Errno::EIO)?;
                    let rm = it.next().ok_or(Errno::EIO)?;
                    self.absorb_add(lib, add);
                    self.absorb_rm(lib, rm);
                }
                RenameSent::AddOnly => {
                    let add = it.next().ok_or(Errno::EIO)?;
                    self.absorb_add(lib, add);
                }
                RenameSent::RmOnly => {
                    let rm = it.next().ok_or(Errno::EIO)?;
                    self.absorb_rm(lib, rm);
                }
                RenameSent::Decref => {
                    // The decref's reply is advisory (the displaced
                    // inode's server reclaims it regardless).
                    return Ok(Next::Done(match self.failed {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }));
                }
            }
        }
        if self.failed.is_none() {
            match (self.add_done, self.rm_done) {
                (false, false) => {
                    self.sent = RenameSent::Pair;
                    let (add, rm) = (self.add_request(lib), self.rm_request(lib));
                    return Ok(Next::Run(Step::Ordered(vec![add, rm])));
                }
                (false, true) => {
                    self.sent = RenameSent::AddOnly;
                    let (s, r) = self.add_request(lib);
                    return Ok(Next::Run(Step::Call(s, r)));
                }
                (true, false) => {
                    self.sent = RenameSent::RmOnly;
                    let (s, r) = self.rm_request(lib);
                    return Ok(Next::Run(Step::Call(s, r)));
                }
                (true, true) => {}
            }
            if let Some((displaced, _ftype)) = self.replaced.take() {
                self.sent = RenameSent::Decref;
                return Ok(Next::Run(Step::Call(
                    displaced.server,
                    Request::LinkDecref { num: displaced.num },
                )));
            }
        }
        Ok(Next::Done(match self.failed {
            Some(e) => Err(e),
            None => Ok(()),
        }))
    }
}

/// The three-phase removal protocol for distributed directories (paper
/// §3.3), as an engine-driven state machine. The mark and commit/abort
/// fan-outs travel through the batch layer (one exchange per server,
/// overlapped), and the serialization lock is always released — protocol
/// failures are carried in the operation's output instead of aborting the
/// state machine mid-protocol.
struct RmdirDistOp {
    dir: InodeId,
    /// Every server that may hold entries of the directory — the shard
    /// set for a distributed directory, the whole machine for a migrated
    /// centralized one. Always includes the home (`dir.server`), where
    /// the commit destroys the inode.
    servers: Vec<ServerId>,
    phase: RmdirPhase,
    marked: Vec<ServerId>,
    outcome: FsResult<()>,
}

enum RmdirPhase {
    /// Nothing sent yet; next step serializes at the home server.
    Serialize,
    /// Serialization requested; next step is the mark fan-out.
    Mark,
    /// Marks requested; next step commits or aborts.
    Resolve,
    /// Commit/abort requested; next step releases the lock.
    Release,
    /// Release requested; the operation is done.
    Finish,
}

impl RmdirDistOp {
    fn new(dir: InodeId, servers: Vec<ServerId>) -> Self {
        debug_assert!(servers.contains(&dir.server));
        RmdirDistOp {
            dir,
            servers,
            phase: RmdirPhase::Serialize,
            marked: Vec::new(),
            outcome: Ok(()),
        }
    }
}

impl MultiStepOp for RmdirDistOp {
    type Out = FsResult<()>;

    fn step(
        &mut self,
        _lib: &ClientLib,
        _st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<FsResult<()>>> {
        let dir = self.dir;
        let all = |req_of: fn(InodeId) -> Request| {
            Step::Grouped(self.servers.iter().map(|&s| (s, req_of(dir))).collect())
        };
        match self.phase {
            RmdirPhase::Serialize => {
                self.phase = RmdirPhase::Mark;
                Ok(Next::Run(Step::Call(
                    dir.server,
                    Request::RmdirSerialize { dir },
                )))
            }
            RmdirPhase::Mark => {
                // Phase 1 reply: the lock. A failure here aborts outright —
                // nothing was locked, so there is nothing to release.
                let mut rs = replies.ok_or(Errno::EIO)?;
                expect_reply!(rs.pop().ok_or(Errno::EIO)?, Reply::RmdirLocked => ())?;
                self.phase = RmdirPhase::Resolve;
                Ok(Next::Run(all(|dir| Request::RmdirMark { dir })))
            }
            RmdirPhase::Resolve => {
                // Phase 2 replies: marks. COMMIT everywhere if every shard
                // marked; otherwise ABORT exactly the marked shards.
                let marks = replies.ok_or(Errno::EIO)?;
                let mut all_marked = true;
                let mut failed = false;
                for (i, m) in marks.iter().enumerate() {
                    match m {
                        Ok(Reply::RmdirMark(MarkResult::Marked)) => {
                            self.marked.push(self.servers[i])
                        }
                        Ok(Reply::RmdirMark(MarkResult::NotEmpty)) => all_marked = false,
                        Ok(_) | Err(_) => {
                            all_marked = false;
                            failed = true;
                        }
                    }
                }
                self.phase = RmdirPhase::Release;
                if all_marked {
                    self.outcome = Ok(());
                    Ok(Next::Run(all(|dir| Request::RmdirCommit { dir })))
                } else {
                    self.outcome = Err(if failed { Errno::EIO } else { Errno::ENOTEMPTY });
                    Ok(Next::Run(Step::Grouped(
                        std::mem::take(&mut self.marked)
                            .into_iter()
                            .map(|s| (s, Request::RmdirAbort { dir }))
                            .collect(),
                    )))
                }
            }
            RmdirPhase::Release => {
                // Commit/abort replies are advisory; release regardless.
                self.phase = RmdirPhase::Finish;
                Ok(Next::Run(Step::Call(
                    dir.server,
                    Request::RmdirRelease { dir },
                )))
            }
            RmdirPhase::Finish => Ok(Next::Done(std::mem::replace(&mut self.outcome, Ok(())))),
        }
    }
}
