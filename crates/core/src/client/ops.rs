//! Namespace operations: open/create, unlink, mkdir, rmdir, rename,
//! readdir, stat.

use super::dircache::{Cached, CachedDentry};
use super::engine::{MultiStepOp, Next, Step};
use super::fd::{FdEntry, FdMode};
use super::resolve::{DirRef, FusedPathOp};
use super::{expect_reply, ClientLib, ClientState};
use crate::proto::{MarkResult, OpenResult, Reply, Request, TerminalOp, TerminalReply, WireReply};
use crate::types::{InodeId, ServerId};
use fsapi::{DirEntry, Errno, FileType, FsResult, MkdirOpts, Mode, OpenFlags, Stat};
use std::collections::HashSet;

impl ClientLib {
    // ----- open ------------------------------------------------------------

    pub(crate) fn open_impl(&self, path: &str, flags: OpenFlags, mode: Mode) -> FsResult<u32> {
        self.syscall();
        let mut st = self.state.lock();
        let excl = flags.contains(OpenFlags::CREAT) && flags.contains(OpenFlags::EXCL);

        // The fused fast path: one LookupPath chain resolving parents
        // *and* final component, with the coalesced open executed by the
        // final server — a cold deep open whose shards align is one
        // end-to-end exchange. O_CREAT|O_EXCL keeps the probe-elision path
        // below (its create answers the existence question; a fused open
        // would open a descriptor just to report EEXIST).
        let t = &self.params.techniques;
        if !excl && t.chained_resolution && t.fused_terminal && t.coalesced_open {
            let (mut comps, name) = fsapi::path::split_parent(path)?;
            comps.push(name);
            let out = self.run_op(
                &mut st,
                FusedPathOp::new(self.root_ref(), &comps, TerminalOp::Open { flags }),
            )?;
            let existing = match out.dentry {
                Some(d) => match out.term {
                    Some(TerminalReply::Open(o)) => self.install_fd(&mut st, d.target, o, flags),
                    // Remote inode (or non-file, or a failing local open):
                    // complete with the ordinary follow-up, which also
                    // reproduces the authoritative error (EISDIR, EACCES).
                    _ => self.open_existing(&mut st, d, flags),
                },
                None => Err(Errno::ENOENT),
            };
            return self.finish_open(&mut st, out.parent, name, flags, mode, excl, existing);
        }

        let (dir, name) = self.resolve_parent(&mut st, path)?;

        // The coalesced fast path resolves the final component and opens
        // the target in one RPC when possible.
        let existing = if self.params.techniques.coalesced_open {
            if excl {
                // O_CREAT|O_EXCL expects the name absent: when the create
                // would be coalesced (inode placed at the dentry shard),
                // skip the lookup probe RPC and let the create's atomic
                // existence check answer instead — the maildir delivery
                // pattern, where every spool name is fresh. A cross-server
                // create failing EEXIST would churn an orphan inode
                // (Create + AddMap + CloseFd + LinkDecref), so in that
                // placement keep the probe-first path. The directory cache
                // short-circuits names known present either way.
                match self.consult_dircache(&mut st, dir.ino, name) {
                    Some(Cached::Pos(_)) => return Err(Errno::EEXIST),
                    // Known absent: go straight to the create.
                    Some(Cached::Neg) => Err(Errno::ENOENT),
                    None => {
                        let shard = self.shard_of(dir.ino, dir.dist, name);
                        if self.inode_server_for_create(shard) == shard {
                            Err(Errno::ENOENT)
                        } else {
                            match self.lookup_child_uncached(&mut st, dir, name) {
                                Ok(_) => return Err(Errno::EEXIST),
                                Err(e) => Err(e),
                            }
                        }
                    }
                }
            } else {
                self.lookup_open_fast(&mut st, dir, name, flags)
            }
        } else {
            match self.lookup_child(&mut st, dir, name) {
                Ok(d) => {
                    if excl {
                        return Err(Errno::EEXIST);
                    }
                    self.open_existing(&mut st, d, flags)
                }
                Err(e) => Err(e),
            }
        };
        self.finish_open(&mut st, dir, name, flags, mode, excl, existing)
    }

    /// The create tail of `open`: turns an ENOENT on the existing-file
    /// path into a creation when `O_CREAT` asks for one, handling the
    /// create races. Shared by the fused-chain and per-component paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_open(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
        flags: OpenFlags,
        mode: Mode,
        excl: bool,
        existing: FsResult<u32>,
    ) -> FsResult<u32> {
        match existing {
            Err(Errno::ENOENT) if flags.contains(OpenFlags::CREAT) => {
                match self.create_file(st, dir, name, flags, mode) {
                    Err(Errno::EEXIST) if !excl => {
                        // Lost a create race: open the winner's file.
                        let d = self.lookup_child(st, dir, name)?;
                        self.open_existing(st, d, flags)
                    }
                    Err(Errno::EEXIST) => {
                        // Probe-elided O_EXCL hit an existing name (a
                        // lock-file retry loop, not fresh maildir spool).
                        // Cache the winner's entry so every further retry
                        // is answered locally until the holder's unlink
                        // invalidates it.
                        if self.params.techniques.dircache {
                            let _ = self.lookup_child(st, dir, name);
                        }
                        Err(Errno::EEXIST)
                    }
                    other => other,
                }
            }
            other => other,
        }
    }

    /// Opens an existing file via the coalesced `LookupOpen` RPC (extends
    /// §3.6.3 coalescing to open-existing): one round trip to the dentry
    /// shard resolves the name and — when the inode lives there too, the
    /// common case under creation affinity §3.6.4 — opens the descriptor.
    /// Falls back to a separate `OpenInode` for remote inodes.
    fn lookup_open_fast(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
        flags: OpenFlags,
    ) -> FsResult<u32> {
        match self.consult_dircache(st, dir.ino, name) {
            // Cached dentry: go straight to the inode server.
            Some(Cached::Pos(d)) => return self.open_existing(st, d, flags),
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        let shard = self.shard_of(dir.ino, dir.dist, name);
        let got = expect_reply!(
            self.call(
                shard,
                Request::LookupOpen {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                    flags,
                },
            ),
            Reply::LookupOpened { target, ftype, dist, open } =>
                (CachedDentry { target, ftype, dist }, open)
        );
        match got {
            Ok((d, open)) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, d);
                }
                match open {
                    Some(o) => self.install_fd(st, d.target, o, flags),
                    // Remote inode (or non-file): complete with the
                    // two-RPC path; `open_existing` raises EISDIR for
                    // directories.
                    None => self.open_existing(st, d, flags),
                }
            }
            Err(Errno::ENOENT) => {
                self.cache_negative(st, dir.ino, name);
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    fn open_existing(
        &self,
        st: &mut ClientState,
        dentry: CachedDentry,
        flags: OpenFlags,
    ) -> FsResult<u32> {
        if dentry.ftype == FileType::Directory {
            return Err(Errno::EISDIR);
        }
        let open = expect_reply!(
            self.call(
                dentry.target.server,
                Request::OpenInode {
                    client: self.params.id,
                    num: dentry.target.num,
                    flags,
                },
            ),
            Reply::Opened(o) => o
        )?;
        self.install_fd(st, dentry.target, open, flags)
    }

    /// Creates and opens a new file. One coalesced message when the dentry
    /// shard and the inode server coincide (paper §3.6.3); otherwise a
    /// create+open at the inode server followed by ADD_MAP at the shard.
    fn create_file(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
        flags: OpenFlags,
        mode: Mode,
    ) -> FsResult<u32> {
        fsapi::path::validate_name(name)?;
        let dentry_server = self.shard_of(dir.ino, dir.dist, name);
        let inode_server = self.inode_server_for_create(dentry_server);

        if inode_server == dentry_server {
            let (ino, open) = expect_reply!(
                self.call(
                    inode_server,
                    Request::Create {
                        client: self.params.id,
                        ftype: FileType::Regular,
                        mode,
                        dist: false,
                        add_map: Some((dir.ino, name.to_string())),
                        open: Some(flags),
                    },
                ),
                Reply::Created { ino, open } => (ino, open)
            )?;
            let open = open.ok_or(Errno::EIO)?;
            if self.params.techniques.dircache {
                st.dircache.insert(
                    dir.ino,
                    name,
                    CachedDentry {
                        target: ino,
                        ftype: FileType::Regular,
                        dist: false,
                    },
                );
            }
            return self.install_fd(st, ino, open, flags);
        }

        // Affinity placement: inode near the creator, entry at its shard.
        let (ino, open) = expect_reply!(
            self.call(
                inode_server,
                Request::Create {
                    client: self.params.id,
                    ftype: FileType::Regular,
                    mode,
                    dist: false,
                    add_map: None,
                    open: Some(flags),
                },
            ),
            Reply::Created { ino, open } => (ino, open)
        )?;
        let open = open.ok_or(Errno::EIO)?;
        let added = expect_reply!(
            self.call(
                dentry_server,
                Request::AddMap {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                    target: ino,
                    ftype: FileType::Regular,
                    dist: false,
                    replace: false,
                },
            ),
            Reply::AddMapped { replaced } => replaced
        );
        match added {
            Ok(_) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(
                        dir.ino,
                        name,
                        CachedDentry {
                            target: ino,
                            ftype: FileType::Regular,
                            dist: false,
                        },
                    );
                }
                self.install_fd(st, ino, open, flags)
            }
            Err(e) => {
                // Undo the orphaned inode (lost race or vanished directory).
                let _ = self.call(
                    ino.server,
                    Request::CloseFd {
                        fd: open.fd,
                        size: None,
                    },
                );
                let _ = self.call(ino.server, Request::LinkDecref { num: ino.num });
                Err(e)
            }
        }
    }

    /// Installs a client descriptor for a server-side open, applying the
    /// open half of close-to-open consistency: invalidate this core's
    /// private-cache copies of the file's blocks so reads observe the last
    /// writer's write-back (paper §3.2).
    fn install_fd(
        &self,
        st: &mut ClientState,
        ino: InodeId,
        open: OpenResult,
        flags: OpenFlags,
    ) -> FsResult<u32> {
        let dropped = self.machine.with_cache(self.params.core, |cache, _| {
            cache.invalidate_all(open.blocks.iter().copied())
        });
        self.charge(self.machine.cost.invalidate_blk * open.blocks.len().max(dropped) as u64);
        let entry = FdEntry {
            ino,
            fdid: open.fd,
            flags,
            ftype: FileType::Regular,
            mode: FdMode::Local { offset: 0 },
            size: open.size,
            blocks: open.blocks,
            dirty: HashSet::new(),
            wrote: false,
            published_size: open.size,
        };
        st.fds.insert(entry)
    }

    // ----- unlink ----------------------------------------------------------

    pub(crate) fn unlink_impl(&self, path: &str) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let (dir, name) = self.resolve_parent(&mut st, path)?;
        let server = self.shard_of(dir.ino, dir.dist, name);
        let (target, _ftype) = expect_reply!(
            self.call(
                server,
                Request::RmMap {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                    must_be_file: true,
                },
            ),
            Reply::RmMapped { target, ftype } => (target, ftype)
        )?;
        st.dircache.remove(dir.ino, name);
        self.call_unit(target.server, Request::LinkDecref { num: target.num })
    }

    // ----- mkdir -----------------------------------------------------------

    pub(crate) fn mkdir_impl(&self, path: &str, mode: Mode, opts: MkdirOpts) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let (dir, name) = self.resolve_parent(&mut st, path)?;
        fsapi::path::validate_name(name)?;
        let dist = self.effective_dist(opts.distributed);
        let dentry_server = self.shard_of(dir.ino, dir.dist, name);
        let home_server = self.inode_server_for_create(dentry_server);

        if home_server == dentry_server {
            let ino = expect_reply!(
                self.call(
                    home_server,
                    Request::Create {
                        client: self.params.id,
                        ftype: FileType::Directory,
                        mode,
                        dist,
                        add_map: Some((dir.ino, name.to_string())),
                        open: None,
                    },
                ),
                Reply::Created { ino, .. } => ino
            )?;
            if self.params.techniques.dircache {
                st.dircache.insert(
                    dir.ino,
                    name,
                    CachedDentry {
                        target: ino,
                        ftype: FileType::Directory,
                        dist,
                    },
                );
            }
            return Ok(());
        }

        let ino = expect_reply!(
            self.call(
                home_server,
                Request::Create {
                    client: self.params.id,
                    ftype: FileType::Directory,
                    mode,
                    dist,
                    add_map: None,
                    open: None,
                },
            ),
            Reply::Created { ino, .. } => ino
        )?;
        let added = expect_reply!(
            self.call(
                dentry_server,
                Request::AddMap {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                    target: ino,
                    ftype: FileType::Directory,
                    dist,
                    replace: false,
                },
            ),
            Reply::AddMapped { replaced } => replaced
        );
        match added {
            Ok(_) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(
                        dir.ino,
                        name,
                        CachedDentry {
                            target: ino,
                            ftype: FileType::Directory,
                            dist,
                        },
                    );
                }
                Ok(())
            }
            Err(e) => {
                let _ = self.call(ino.server, Request::LinkDecref { num: ino.num });
                Err(e)
            }
        }
    }

    // ----- rmdir -----------------------------------------------------------

    pub(crate) fn rmdir_impl(&self, path: &str) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let (parent, name) = self.resolve_parent(&mut st, path)?;
        let d = self.lookup_child(&mut st, parent, name)?;
        if d.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        if d.target == InodeId::ROOT {
            return Err(Errno::EBUSY);
        }
        let dir = d.target;
        let dist = d.dist && self.params.techniques.distribution;

        if !dist {
            // Centralized: a single atomic message to the home server.
            self.call_unit(dir.server, Request::RmdirCentral { dir })?;
        } else {
            self.run_op(&mut st, RmdirDistOp::new(dir, self.nservers()))??;
        }

        // Remove the entry from the parent and drop the cached dentry.
        let shard = self.shard_of(parent.ino, parent.dist, name);
        let _ = expect_reply!(
            self.call(
                shard,
                Request::RmMap {
                    client: self.params.id,
                    dir: parent.ino,
                    name: name.to_string(),
                    must_be_file: false,
                },
            ),
            Reply::RmMapped { target, ftype } => (target, ftype)
        )?;
        st.dircache.remove(parent.ino, name);
        Ok(())
    }

    // (The three-phase distributed removal protocol lives in
    // [`RmdirDistOp`] below, driven by the operation engine.)

    // ----- rename ----------------------------------------------------------

    pub(crate) fn rename_impl(&self, old: &str, new: &str) -> FsResult<()> {
        self.syscall();
        let old_n = fsapi::path::normalize(old)?;
        let new_n = fsapi::path::normalize(new)?;
        if old_n == new_n {
            return Ok(());
        }
        // POSIX: renaming a directory into its own subtree is invalid
        // (would disconnect the subtree from the namespace).
        if new_n.starts_with(&format!("{old_n}/")) {
            return Err(Errno::EINVAL);
        }
        let mut st = self.state.lock();
        // Lockstep prefetch: both parent chains resolve concurrently
        // through the batched transport.
        let ((old_dir, old_name), (new_dir, new_name)) =
            self.resolve_parent_pair(&mut st, &old_n, &new_n)?;
        fsapi::path::validate_name(new_name)?;
        let d = self.lookup_child(&mut st, old_dir, old_name)?;

        // Paper §3.3: "rename first contacts the server storing the new
        // name, to create (or replace) a hard link with the new name, and
        // then contacts the server storing the old name to unlink it."
        // The engine's ordered step keeps exactly that order — and when
        // both names hash to the same shard server, the pair travels as
        // one batched exchange instead of two RPCs. The displaced target's
        // link-decref (if any) is the op's optional third step.
        let new_shard = self.shard_of(new_dir.ino, new_dir.dist, new_name);
        let old_shard = self.shard_of(old_dir.ino, old_dir.dist, old_name);
        self.run_op(
            &mut st,
            RenameCommitOp {
                add: Some((
                    new_shard,
                    Request::AddMap {
                        client: self.params.id,
                        dir: new_dir.ino,
                        name: new_name.to_string(),
                        target: d.target,
                        ftype: d.ftype,
                        dist: d.dist,
                        replace: true,
                    },
                )),
                rm: Some((
                    old_shard,
                    Request::RmMap {
                        client: self.params.id,
                        dir: old_dir.ino,
                        name: old_name.to_string(),
                        must_be_file: false,
                    },
                )),
                decref_sent: false,
            },
        )??;

        st.dircache.remove(old_dir.ino, old_name);
        if self.params.techniques.dircache {
            st.dircache.insert(new_dir.ino, new_name, d);
        }
        Ok(())
    }

    // ----- readdir ---------------------------------------------------------

    pub(crate) fn readdir_impl(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.syscall();
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;

        // Chain the resolution into the listing: the final server of the
        // LookupPath chain returns *its* shard of the target directory in
        // the resolution reply, so the fan-out below skips it — and a
        // centralized directory listed by its own home server costs no
        // fan-out round at all.
        let t = &self.params.techniques;
        let mut pre: Option<(ServerId, Vec<DirEntry>)> = None;
        let dir = if !comps.is_empty() && t.chained_resolution && t.fused_terminal {
            let out = self.run_op(
                &mut st,
                FusedPathOp::new(self.root_ref(), &comps, TerminalOp::List),
            )?;
            let d = out.dentry.ok_or(Errno::ENOENT)?;
            if d.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            if let Some(TerminalReply::List { server, entries }) = out.term {
                pre = Some((server, entries));
            }
            DirRef {
                ino: d.target,
                dist: d.dist && t.distribution,
            }
        } else {
            self.resolve_dir(&mut st, &comps)?
        };
        drop(st);

        if dir.dist {
            // Distributed: fan out to all servers through the batched
            // transport — one exchange per server with batching on, N
            // independent RPCs (broadcast-overlapped or sequential) with
            // it off. The shard that rode the resolution chain is skipped.
            let reqs: Vec<(ServerId, Request)> = (0..self.servers.len())
                .map(|s| s as ServerId)
                .filter(|s| pre.as_ref().is_none_or(|(ps, _)| s != ps))
                .map(|s| (s, Request::ListShard { dir: dir.ino }))
                .collect();
            let shards = self.call_grouped(reqs, false);
            let mut out = pre.map(|(_, entries)| entries).unwrap_or_default();
            for s in shards {
                let entries = expect_reply!(s, Reply::Shard { entries } => entries)?;
                out.extend(entries);
            }
            self.charge(20 * out.len() as u64);
            out.sort();
            Ok(out)
        } else {
            // Centralized: everything lives at the home server. If that is
            // the server that answered the chain, the listing is already
            // here; otherwise one ListShard round trip.
            let mut out = match pre {
                Some((server, entries)) if server == dir.ino.server => entries,
                _ => expect_reply!(
                    self.call(dir.ino.server, Request::ListShard { dir: dir.ino }),
                    Reply::Shard { entries } => entries
                )?,
            };
            self.charge(20 * out.len() as u64);
            out.sort();
            Ok(out)
        }
    }

    // ----- stat ------------------------------------------------------------

    pub(crate) fn stat_impl(&self, path: &str) -> FsResult<Stat> {
        self.syscall();
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;
        let Some((&name, parents)) = comps.split_last() else {
            drop(st);
            return self.stat_inode(InodeId::ROOT);
        };

        // The fused fast path: one LookupPath chain resolving parents
        // *and* final component, with the coalesced stat executed by the
        // final server — a cold deep stat whose shards align is one
        // end-to-end exchange.
        let t = &self.params.techniques;
        if t.chained_resolution && t.fused_terminal && t.coalesced_stat {
            let out = self.run_op(
                &mut st,
                FusedPathOp::new(self.root_ref(), &comps, TerminalOp::Stat),
            )?;
            let d = out.dentry.ok_or(Errno::ENOENT)?;
            drop(st);
            return match out.term {
                Some(TerminalReply::Stat(s)) => Ok(s),
                // Remote inode: complete with the ordinary follow-up.
                _ => self.stat_inode(d.target),
            };
        }

        let dir = self.resolve_dir(&mut st, parents)?;

        // Cached dentry: go straight to the inode server.
        match self.consult_dircache(&mut st, dir.ino, name) {
            Some(Cached::Pos(d)) => {
                drop(st);
                return self.stat_inode(d.target);
            }
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        if !self.params.techniques.coalesced_stat {
            let d = self.lookup_child_uncached(&mut st, dir, name)?;
            drop(st);
            return self.stat_inode(d.target);
        }

        // Coalesced lookup+stat (the `stat` sibling of `lookup_open_fast`):
        // one round trip to the dentry shard resolves the name and — when
        // the inode lives there too — returns the metadata, for depth+1
        // RPCs instead of depth+2.
        let shard = self.shard_of(dir.ino, dir.dist, name);
        let got = expect_reply!(
            self.call(
                shard,
                Request::LookupStat {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                },
            ),
            Reply::LookupStated { target, ftype, dist, stat } =>
                (CachedDentry { target, ftype, dist }, stat)
        );
        match got {
            Ok((d, stat)) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, d);
                }
                drop(st);
                match stat {
                    Some(s) => Ok(s),
                    // Remote inode: complete with the two-RPC path.
                    None => self.stat_inode(d.target),
                }
            }
            Err(Errno::ENOENT) => {
                self.cache_negative(&mut st, dir.ino, name);
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    /// The plain `StatInode` round trip.
    fn stat_inode(&self, ino: InodeId) -> FsResult<Stat> {
        expect_reply!(
            self.call(ino.server, Request::StatInode { num: ino.num }),
            Reply::Stat(s) => s
        )
    }

    // ----- readdir + stat (the `ls -l` pattern) ----------------------------

    /// Lists a directory and stats every entry, using the batched transport
    /// to group the per-entry `StatInode`s by inode server: M entries
    /// spread over N servers cost N stat exchanges instead of M RPCs.
    ///
    /// Entries whose stat fails are skipped rather than failing the whole
    /// listing — an entry can legitimately vanish between the `ListShard`
    /// fan-out and the stat (a concurrent unlink), exactly like `ls -l`
    /// dropping a file that disappears mid-listing.
    pub fn readdir_plus(&self, path: &str) -> FsResult<Vec<(DirEntry, Stat)>> {
        let entries = self.readdir_impl(path)?;
        let reqs: Vec<(ServerId, Request)> = entries
            .iter()
            .map(|e| (e.server, Request::StatInode { num: e.ino }))
            .collect();
        let replies = self.call_grouped(reqs, false);
        Ok(entries
            .into_iter()
            .zip(replies)
            .filter_map(|(e, r)| match r {
                Ok(Reply::Stat(s)) => Some((e, s)),
                _ => None,
            })
            .collect())
    }
}

/// The mutation phase of rename, as an engine-driven state machine: the
/// ordered (fail-fast) ADD_MAP + RM_MAP pair — one batched exchange when
/// both names share a shard server — followed, when the ADD_MAP displaced
/// an existing target, by that target's link-decref.
struct RenameCommitOp {
    add: Option<(ServerId, Request)>,
    rm: Option<(ServerId, Request)>,
    decref_sent: bool,
}

impl MultiStepOp for RenameCommitOp {
    type Out = FsResult<()>;

    fn step(
        &mut self,
        _lib: &ClientLib,
        _st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<FsResult<()>>> {
        if let (Some(add), Some(rm)) = (self.add.take(), self.rm.take()) {
            return Ok(Next::Run(Step::Ordered(vec![add, rm])));
        }
        if self.decref_sent {
            // The decref's reply is advisory (the displaced inode's server
            // reclaims it regardless of what we do next).
            return Ok(Next::Done(Ok(())));
        }
        let mut rs = replies.ok_or(Errno::EIO)?.into_iter();
        let (add_reply, rm_reply) = (rs.next().ok_or(Errno::EIO)?, rs.next().ok_or(Errno::EIO)?);
        let replaced = match expect_reply!(add_reply, Reply::AddMapped { replaced } => replaced) {
            Ok(r) => r,
            Err(e) => return Ok(Next::Done(Err(e))),
        };
        if let Err(e) =
            expect_reply!(rm_reply, Reply::RmMapped { target, ftype } => (target, ftype))
        {
            return Ok(Next::Done(Err(e)));
        }
        match replaced {
            Some((displaced, _ftype)) => {
                self.decref_sent = true;
                Ok(Next::Run(Step::Call(
                    displaced.server,
                    Request::LinkDecref { num: displaced.num },
                )))
            }
            None => Ok(Next::Done(Ok(()))),
        }
    }
}

/// The three-phase removal protocol for distributed directories (paper
/// §3.3), as an engine-driven state machine. The mark and commit/abort
/// fan-outs travel through the batch layer (one exchange per server,
/// overlapped), and the serialization lock is always released — protocol
/// failures are carried in the operation's output instead of aborting the
/// state machine mid-protocol.
struct RmdirDistOp {
    dir: InodeId,
    nservers: usize,
    phase: RmdirPhase,
    marked: Vec<ServerId>,
    outcome: FsResult<()>,
}

enum RmdirPhase {
    /// Nothing sent yet; next step serializes at the home server.
    Serialize,
    /// Serialization requested; next step is the mark fan-out.
    Mark,
    /// Marks requested; next step commits or aborts.
    Resolve,
    /// Commit/abort requested; next step releases the lock.
    Release,
    /// Release requested; the operation is done.
    Finish,
}

impl RmdirDistOp {
    fn new(dir: InodeId, nservers: usize) -> Self {
        RmdirDistOp {
            dir,
            nservers,
            phase: RmdirPhase::Serialize,
            marked: Vec::new(),
            outcome: Ok(()),
        }
    }
}

impl MultiStepOp for RmdirDistOp {
    type Out = FsResult<()>;

    fn step(
        &mut self,
        _lib: &ClientLib,
        _st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<FsResult<()>>> {
        let dir = self.dir;
        let all = |req_of: fn(InodeId) -> Request| {
            Step::Grouped(
                (0..self.nservers as ServerId)
                    .map(|s| (s, req_of(dir)))
                    .collect(),
            )
        };
        match self.phase {
            RmdirPhase::Serialize => {
                self.phase = RmdirPhase::Mark;
                Ok(Next::Run(Step::Call(
                    dir.server,
                    Request::RmdirSerialize { dir },
                )))
            }
            RmdirPhase::Mark => {
                // Phase 1 reply: the lock. A failure here aborts outright —
                // nothing was locked, so there is nothing to release.
                let mut rs = replies.ok_or(Errno::EIO)?;
                expect_reply!(rs.pop().ok_or(Errno::EIO)?, Reply::RmdirLocked => ())?;
                self.phase = RmdirPhase::Resolve;
                Ok(Next::Run(all(|dir| Request::RmdirMark { dir })))
            }
            RmdirPhase::Resolve => {
                // Phase 2 replies: marks. COMMIT everywhere if every shard
                // marked; otherwise ABORT exactly the marked shards.
                let marks = replies.ok_or(Errno::EIO)?;
                let mut all_marked = true;
                let mut failed = false;
                for (i, m) in marks.iter().enumerate() {
                    match m {
                        Ok(Reply::RmdirMark(MarkResult::Marked)) => self.marked.push(i as ServerId),
                        Ok(Reply::RmdirMark(MarkResult::NotEmpty)) => all_marked = false,
                        Ok(_) | Err(_) => {
                            all_marked = false;
                            failed = true;
                        }
                    }
                }
                self.phase = RmdirPhase::Release;
                if all_marked {
                    self.outcome = Ok(());
                    Ok(Next::Run(all(|dir| Request::RmdirCommit { dir })))
                } else {
                    self.outcome = Err(if failed { Errno::EIO } else { Errno::ENOTEMPTY });
                    Ok(Next::Run(Step::Grouped(
                        std::mem::take(&mut self.marked)
                            .into_iter()
                            .map(|s| (s, Request::RmdirAbort { dir }))
                            .collect(),
                    )))
                }
            }
            RmdirPhase::Release => {
                // Commit/abort replies are advisory; release regardless.
                self.phase = RmdirPhase::Finish;
                Ok(Next::Run(Step::Call(
                    dir.server,
                    Request::RmdirRelease { dir },
                )))
            }
            RmdirPhase::Finish => Ok(Next::Done(std::mem::replace(&mut self.outcome, Ok(())))),
        }
    }
}
