//! Descriptor I/O: read/write/seek/fsync/truncate/dup/pipes, plus the
//! descriptor export/import used by spawn.

use super::fd::{ExportedFd, FdEntry, FdMode};
use super::{expect_reply, ClientLib};
use crate::proto::{DemoteInfo, ExtentMap, Reply, Request};
use crate::rpc::{self, PendingCall};
use fsapi::{Errno, FileType, FsResult, OpenFlags, Stat, Whence};
use nccmem::BLOCK_SIZE;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The windowed readahead pipeline of one striped sequential reader.
///
/// While reads arrive in file order, up to `readahead_window` stripe
/// fetches stay outstanding at the stripe servers, so the next stripes'
/// service overlaps the current stripe's wait: a cold sequential scan pays
/// roughly one stripe of latency total instead of one per stripe. The
/// pipeline is pure prefetched state — any non-sequential use of the
/// descriptor (seek, write, truncate, dup/share, close) simply drops it.
///
/// Fetched payloads are held as the reply's `Arc<[u8]>` until they land in
/// a caller's buffer: the bytes are copied exactly once end-to-end.
pub(crate) struct Readahead {
    /// File offset the next sequential read must start at for the
    /// pipeline to stay valid.
    next_offset: u64,
    /// Index of the next stripe to request.
    next_stripe: u64,
    /// Outstanding fetches, oldest first (collected in send order).
    inflight: VecDeque<(u64, PendingCall)>,
    /// Fetched stripes awaiting consumption: stripe index → payload.
    ready: HashMap<u64, Arc<[u8]>>,
}

impl Readahead {
    /// A fresh pipeline positioned at `offset`.
    fn starting_at(offset: u64, stripe_unit: u64) -> Readahead {
        Readahead {
            next_offset: offset,
            next_stripe: offset / stripe_unit,
            inflight: VecDeque::new(),
            ready: HashMap::new(),
        }
    }
}

impl ClientLib {
    // ----- close -----------------------------------------------------------

    pub(crate) fn close_impl(&self, num: u32) -> FsResult<()> {
        let mut st = self.state.lock();
        let entry = st.fds.remove(num)?;
        st.readahead.remove(&num);
        drop(st);
        self.flush_entry(&entry);
        // Publish the close-to-open size only when this descriptor's view
        // *grows* what the server already knows: a stale smaller view
        // (another descriptor of the same file published a larger size
        // write-behind) must never regress it.
        let size = if entry.wrote
            && !entry.is_pipe()
            && self.params.techniques.direct_access
            && entry.size > entry.published_size
        {
            Some(entry.size)
        } else {
            None
        };
        let _ = expect_reply!(
            self.call(
                entry.ino.server,
                Request::CloseFd {
                    fd: entry.fdid,
                    size,
                },
            ),
            Reply::Closed { refs } => refs
        )?;
        Ok(())
    }

    /// The write-back half of close-to-open consistency: push this core's
    /// dirty private-cache blocks of the file to shared DRAM (paper §3.2).
    fn flush_entry(&self, entry: &FdEntry) {
        if entry.dirty.is_empty() {
            return;
        }
        let blocks: Vec<nccmem::BlockId> = entry
            .dirty
            .iter()
            .filter_map(|i| entry.blocks.get(*i).copied())
            .collect();
        let n = self.machine.with_cache(self.params.core, |cache, dram| {
            cache.writeback_all(dram, blocks)
        });
        self.charge(self.machine.cost.writeback_blk * n as u64);
    }

    // ----- read ------------------------------------------------------------

    pub(crate) fn read_impl(&self, num: u32, buf: &mut [u8]) -> FsResult<usize> {
        self.syscall();
        let mut st = self.state.lock();
        let entry = st.fds.get_mut(num)?;
        if !entry.flags.readable() {
            return Err(Errno::EBADF);
        }
        match (entry.ftype, entry.mode) {
            (FileType::Pipe, _) => {
                let (ino, fdid) = (entry.ino, entry.fdid);
                drop(st);
                let (data, _eof) = expect_reply!(
                    self.call(
                        ino.server,
                        Request::PipeRead {
                            fd: fdid,
                            max: buf.len() as u64,
                        },
                    ),
                    Reply::Data { data, _eof } => (data, _eof)
                )?;
                self.charge(data.len() as u64 / 32);
                buf[..data.len()].copy_from_slice(&data);
                Ok(data.len())
            }
            (_, FdMode::Local { offset }) => {
                if self.params.techniques.direct_access {
                    if entry.extent.is_some() {
                        // Striped data plane: the extent map's servers move
                        // the bytes in parallel, pipelined by the
                        // readahead window.
                        let em = entry.extent.clone().expect("checked");
                        return self.read_striped(num, st, em, offset, buf);
                    }
                    let n = self.read_local(entry, offset, buf);
                    entry.mode = FdMode::Local {
                        offset: offset + n as u64,
                    };
                    Ok(n)
                } else {
                    // Ablation: all data moves through the file server.
                    // Drop the state lock before the RPC, like every other
                    // server-mediated branch.
                    let (ino, fdid) = (entry.ino, entry.fdid);
                    drop(st);
                    let (data, _eof) = expect_reply!(
                        self.call(
                            ino.server,
                            Request::ReadData {
                                fd: fdid,
                                offset,
                                len: buf.len() as u64,
                            },
                        ),
                        Reply::Data { data, _eof } => (data, _eof)
                    )?;
                    let mut st = self.state.lock();
                    let entry = st.fds.get_mut(num)?;
                    // The descriptor may have been shared (dup/export)
                    // while the lock was dropped: only advance a still-
                    // local offset.
                    if let FdMode::Local { .. } = entry.mode {
                        entry.mode = FdMode::Local {
                            offset: offset + data.len() as u64,
                        };
                    }
                    drop(st);
                    self.charge(data.len() as u64 / 32);
                    buf[..data.len()].copy_from_slice(&data);
                    Ok(data.len())
                }
            }
            (_, FdMode::Shared) => {
                let (ino, fdid) = (entry.ino, entry.fdid);
                drop(st);
                let r = expect_reply!(
                    self.call(
                        ino.server,
                        Request::SharedIo {
                            fd: fdid,
                            len: buf.len() as u64,
                            write: false,
                            append: false,
                        },
                    ),
                    Reply::SharedIo { offset, len, blocks, size, demote } =>
                        (offset, len, blocks, size, demote)
                )?;
                let (offset, len, blocks, _size, demote) = r;
                self.copy_from_dram(offset, len as usize, &blocks, buf);
                if let Some(d) = demote {
                    self.apply_demote(num, d);
                }
                Ok(len as usize)
            }
        }
    }

    /// Sequential read through the striped data plane: one stateless
    /// [`Request::ReadStripe`] per stripe, addressed to the stripe's
    /// server per the extent map, with up to `readahead_window` fetches in
    /// flight ahead of the copy-out. Bypasses this core's private cache —
    /// the stripe servers read shared DRAM and ship the bytes, which is
    /// what lets W servers stream one file in parallel.
    ///
    /// Exchange-count contract (pinned by tests): a cold full-file read
    /// costs exactly `ceil(size / stripe_unit)` exchanges — each stripe is
    /// requested once and prefetch never runs past EOF.
    fn read_striped(
        &self,
        num: u32,
        mut st: parking_lot::MutexGuard<'_, super::ClientState>,
        em: ExtentMap,
        offset: u64,
        buf: &mut [u8],
    ) -> FsResult<usize> {
        let entry = st.fds.get(num)?;
        let size = entry.size;
        if offset >= size {
            return Ok(0);
        }
        let n = (buf.len() as u64).min(size - offset) as usize;
        if n == 0 {
            return Ok(0);
        }
        let su = em.stripe_unit;
        let blocks = entry.blocks.clone();
        // Take the pipeline out of the table for the duration of the
        // exchanges (the io.rs convention: data paths do not hold the
        // state lock across RPCs). A pipeline positioned elsewhere is
        // stale prefetch — drop it and start at `offset`.
        let mut ra = st
            .readahead
            .remove(&num)
            .filter(|r| r.next_offset == offset)
            .unwrap_or_else(|| Readahead::starting_at(offset, su));
        drop(st);
        let window = self.params.readahead_window;
        let nstripes = size.div_ceil(su);
        let first = offset / su;
        let last = (offset + n as u64 - 1) / su;
        let mut filled = 0usize;
        for s in first..=last {
            // Top up the window before blocking on stripe `s`: the later
            // stripes' fetches overlap this one's service and wait.
            while ra.inflight.len() < window && ra.next_stripe < nstripes {
                let t = ra.next_stripe;
                ra.next_stripe += 1;
                if ra.ready.contains_key(&t) {
                    continue;
                }
                if t > last {
                    // A fetch beyond the caller's range is readahead proper
                    // — count it for the time-series observability layer
                    // and tag its send in the op's span tree.
                    self.machine
                        .events
                        .readaheads
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.machine
                        .otrace
                        .tag_next(crate::otrace::Cause::Readahead);
                }
                let p = self.send_stripe_fetch(&em, &blocks, size, t)?;
                ra.inflight.push_back((t, p));
            }
            // Collect replies (send order) until stripe `s` is in hand.
            while !ra.ready.contains_key(&s) {
                let (idx, p) = ra.inflight.pop_front().expect("stripe was requested");
                let data = expect_reply!(
                    rpc::wait_call(&self.machine, &self.entity, p),
                    Reply::Data { data, _eof } => data
                )?;
                ra.ready.insert(idx, data);
            }
            let data = ra.ready.get(&s).expect("just collected");
            let s_start = s * su;
            let from = (offset + filled as u64 - s_start) as usize;
            // Bytes this stripe still owes the file (the last stripe is
            // short; holes return less data and read as zeros).
            let logical = (su.min(size - s_start) as usize) - from;
            let take = (n - filled).min(logical);
            let from_data = take.min(data.len().saturating_sub(from));
            buf[filled..filled + from_data].copy_from_slice(&data[from..from + from_data]);
            buf[filled + from_data..filled + take].fill(0);
            filled += take;
            // Consumed through the stripe's logical end: its payload is
            // spent.
            if (offset + filled as u64) >= s_start + su.min(size - s_start) {
                ra.ready.remove(&s);
            }
        }
        debug_assert_eq!(filled, n);
        // The single end-to-end copy, charged like every other client-side
        // payload move.
        self.charge(n as u64 / 32);
        let mut st = self.state.lock();
        ra.next_offset = offset + n as u64;
        st.readahead.insert(num, ra);
        if let Ok(entry) = st.fds.get_mut(num) {
            // The descriptor may have been shared (dup/export) while the
            // lock was dropped: only advance a still-local offset.
            if let FdMode::Local { .. } = entry.mode {
                entry.mode = FdMode::Local {
                    offset: offset + n as u64,
                };
            }
        }
        Ok(n)
    }

    /// Sends one stripe's [`Request::ReadStripe`] to its extent-map server
    /// without waiting: the block sub-list is sliced client-side from the
    /// open-time block list, so the request is self-contained and any
    /// server can service it.
    fn send_stripe_fetch(
        &self,
        em: &ExtentMap,
        blocks: &[nccmem::BlockId],
        size: u64,
        stripe: u64,
    ) -> FsResult<PendingCall> {
        let su = em.stripe_unit;
        let start = stripe * su;
        let len = su.min(size - start);
        let bps = (su as usize) / BLOCK_SIZE;
        let b0 = (stripe as usize) * bps;
        let b1 = (b0 + bps).min(blocks.len());
        let slice = blocks.get(b0..b1).unwrap_or(&[]).to_vec();
        let server = em.server_of(stripe);
        rpc::send_call(
            &self.machine,
            &self.entity,
            &self.servers[server as usize],
            Request::ReadStripe {
                blocks: slice,
                offset: 0,
                len,
            },
        )
    }

    /// Direct buffer-cache read through this core's private cache
    /// (the paper's headline data path, §3.2/§5.4-Figure 12).
    fn read_local(&self, entry: &FdEntry, offset: u64, buf: &mut [u8]) -> usize {
        if offset >= entry.size {
            return 0;
        }
        let n = (buf.len() as u64).min(entry.size - offset) as usize;
        let mut filled = 0usize;
        let mut cost = 0u64;
        self.machine.with_cache(self.params.core, |cache, dram| {
            while filled < n {
                let pos = offset as usize + filled;
                let (bi, bo) = (pos / BLOCK_SIZE, pos % BLOCK_SIZE);
                let chunk = (BLOCK_SIZE - bo).min(n - filled);
                if let Some(b) = entry.blocks.get(bi) {
                    let access = cache.read(dram, *b, bo, &mut buf[filled..filled + chunk]);
                    cost += if access.is_miss() {
                        self.machine.cost.cache_miss_blk
                    } else {
                        self.machine.cost.cache_hit_blk
                    };
                } else {
                    // Hole (allocated lazily): zeros.
                    buf[filled..filled + chunk].fill(0);
                    cost += self.machine.cost.cache_hit_blk;
                }
                filled += chunk;
            }
        });
        self.charge(cost);
        n
    }

    // ----- write -----------------------------------------------------------

    pub(crate) fn write_impl(&self, num: u32, buf: &[u8]) -> FsResult<usize> {
        self.syscall();
        let mut st = self.state.lock();
        let entry = st.fds.get_mut(num)?;
        if !entry.flags.writable() {
            return Err(Errno::EBADF);
        }
        let append = entry.flags.contains(OpenFlags::APPEND);
        match (entry.ftype, entry.mode) {
            (FileType::Pipe, _) => {
                let (ino, fdid) = (entry.ino, entry.fdid);
                drop(st);
                self.charge(buf.len() as u64 / 32);
                let n = expect_reply!(
                    self.call(
                        ino.server,
                        Request::PipeWrite {
                            fd: fdid,
                            // One copy into a shared buffer; the msg layer
                            // and any parking at the server then clone the
                            // Arc, not the bytes.
                            data: std::sync::Arc::from(buf),
                        },
                    ),
                    Reply::Written { n } => n
                )?;
                Ok(n as usize)
            }
            (_, FdMode::Local { offset }) => {
                let start = if append { entry.size } else { offset };
                if self.params.techniques.direct_access {
                    if entry.extent.is_some() {
                        // Striped data plane: write through the stripe
                        // servers (shared DRAM stays authoritative, so
                        // striped reads never miss this data). Any
                        // readahead is stale once the file mutates.
                        let em = entry.extent.clone().expect("checked");
                        st.readahead.remove(&num);
                        self.write_striped(num, &mut st, em, start, buf)?;
                    } else {
                        self.write_local(num, &mut st, start, buf)?;
                    }
                    let entry = st.fds.get_mut(num)?;
                    entry.mode = FdMode::Local {
                        offset: start + buf.len() as u64,
                    };
                } else {
                    // Ablation: write through the server, releasing the
                    // state lock for the duration of the RPC.
                    let (ino, fdid) = (entry.ino, entry.fdid);
                    drop(st);
                    let n = expect_reply!(
                        self.call(
                            ino.server,
                            Request::WriteData {
                                fd: fdid,
                                offset: start,
                                data: std::sync::Arc::from(buf),
                                append: false,
                            },
                        ),
                        Reply::Written { n } => n
                    )?;
                    debug_assert_eq!(n as usize, buf.len());
                    self.charge(buf.len() as u64 / 32);
                    let mut st = self.state.lock();
                    let entry = st.fds.get_mut(num)?;
                    entry.size = entry.size.max(start + buf.len() as u64);
                    entry.wrote = true;
                    // As in read: don't clobber a descriptor that went
                    // shared while the lock was dropped.
                    if let FdMode::Local { .. } = entry.mode {
                        entry.mode = FdMode::Local {
                            offset: start + buf.len() as u64,
                        };
                    }
                }
                Ok(buf.len())
            }
            (_, FdMode::Shared) => {
                let (ino, fdid) = (entry.ino, entry.fdid);
                drop(st);
                let r = expect_reply!(
                    self.call(
                        ino.server,
                        Request::SharedIo {
                            fd: fdid,
                            len: buf.len() as u64,
                            write: true,
                            append,
                        },
                    ),
                    Reply::SharedIo { offset, len, blocks, size, demote } =>
                        (offset, len, blocks, size, demote)
                )?;
                let (offset, len, blocks, _size, demote) = r;
                self.copy_to_dram(offset, &buf[..len as usize], &blocks);
                if let Some(d) = demote {
                    self.apply_demote(num, d);
                    let mut st = self.state.lock();
                    if let Ok(e) = st.fds.get_mut(num) {
                        e.wrote = true;
                    }
                }
                Ok(len as usize)
            }
        }
    }

    /// Direct buffer-cache write through the private cache; blocks are
    /// allocated from the file server on demand and the data stays dirty in
    /// the private cache until close/fsync writes it back.
    fn write_local(
        &self,
        num: u32,
        st: &mut parking_lot::MutexGuard<'_, super::ClientState>,
        start: u64,
        buf: &[u8],
    ) -> FsResult<()> {
        let end = start + buf.len() as u64;
        let entry = st.fds.get_mut(num)?;
        let need_blocks = (end as usize).div_ceil(BLOCK_SIZE);
        if need_blocks > entry.blocks.len() {
            let (ino, fdid) = (entry.ino, entry.fdid);
            let (blocks, _size) = expect_reply!(
                self.call(
                    ino.server,
                    Request::AllocBlocks {
                        fd: fdid,
                        min_size: end,
                    },
                ),
                Reply::Blocks { blocks, size } => (blocks, size)
            )?;
            let entry = st.fds.get_mut(num)?;
            entry.blocks = blocks;
        }
        let entry = st.fds.get_mut(num)?;
        let mut written = 0usize;
        let mut cost = 0u64;
        let mut dirtied: Vec<usize> = Vec::new();
        self.machine.with_cache(self.params.core, |cache, dram| {
            while written < buf.len() {
                let pos = start as usize + written;
                let (bi, bo) = (pos / BLOCK_SIZE, pos % BLOCK_SIZE);
                let chunk = (BLOCK_SIZE - bo).min(buf.len() - written);
                let access =
                    cache.write(dram, entry.blocks[bi], bo, &buf[written..written + chunk]);
                cost += if access.is_miss() {
                    self.machine.cost.cache_miss_blk
                } else {
                    self.machine.cost.cache_hit_blk
                };
                dirtied.push(bi);
                written += chunk;
            }
        });
        self.charge(cost);
        entry.dirty.extend(dirtied);
        entry.size = entry.size.max(end);
        entry.wrote = true;
        Ok(())
    }

    /// Write through the striped data plane: blocks are still allocated
    /// from the *home* server (striping spreads data service, not storage
    /// ownership), then one stateless [`Request::WriteStripe`] per touched
    /// stripe fans out through the batch transport — per-server grouping,
    /// overlapped exchanges. The bytes land in shared DRAM immediately, so
    /// nothing is dirty client-side; the size is published write-behind at
    /// close/fsync exactly like the direct-access path.
    fn write_striped(
        &self,
        num: u32,
        st: &mut parking_lot::MutexGuard<'_, super::ClientState>,
        em: ExtentMap,
        start: u64,
        buf: &[u8],
    ) -> FsResult<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let end = start + buf.len() as u64;
        let entry = st.fds.get_mut(num)?;
        let need_blocks = (end as usize).div_ceil(BLOCK_SIZE);
        if need_blocks > entry.blocks.len() {
            let (ino, fdid) = (entry.ino, entry.fdid);
            let (blocks, _size) = expect_reply!(
                self.call(
                    ino.server,
                    Request::AllocBlocks {
                        fd: fdid,
                        min_size: end,
                    },
                ),
                Reply::Blocks { blocks, size } => (blocks, size)
            )?;
            let entry = st.fds.get_mut(num)?;
            entry.blocks = blocks;
        }
        let entry = st.fds.get_mut(num)?;
        let su = em.stripe_unit;
        let bps = (su as usize) / BLOCK_SIZE;
        let mut reqs = Vec::new();
        let mut cur = start;
        while cur < end {
            let s = cur / su;
            let s_start = s * su;
            let chunk_end = end.min(s_start + su);
            let b0 = (s as usize) * bps;
            let b1 = (b0 + bps).min(entry.blocks.len());
            let slice = entry.blocks.get(b0..b1).unwrap_or(&[]).to_vec();
            let data: Arc<[u8]> =
                Arc::from(&buf[(cur - start) as usize..(chunk_end - start) as usize]);
            reqs.push((
                em.server_of(s),
                Request::WriteStripe {
                    blocks: slice,
                    offset: cur - s_start,
                    data,
                },
            ));
            cur = chunk_end;
        }
        // The one client-side copy (into the request payloads above).
        self.charge(buf.len() as u64 / 32);
        let replies = self.call_grouped(reqs, false);
        for r in replies {
            expect_reply!(r, Reply::Written { .. } => ())?;
        }
        let entry = st.fds.get_mut(num)?;
        entry.size = entry.size.max(end);
        entry.wrote = true;
        Ok(())
    }

    // ----- lseek / fsync / truncate -----------------------------------------

    pub(crate) fn lseek_impl(&self, num: u32, offset: i64, whence: Whence) -> FsResult<u64> {
        self.syscall();
        let mut st = self.state.lock();
        let entry = st.fds.get_mut(num)?;
        if entry.is_pipe() {
            return Err(Errno::ESPIPE);
        }
        match entry.mode {
            FdMode::Local { offset: cur } => {
                let new = fsapi::flags::apply_seek(cur, entry.size, offset, whence)?;
                entry.mode = FdMode::Local { offset: new };
                // A repositioned descriptor invalidates any sequential
                // readahead (prefetched stripes are for the old position).
                st.readahead.remove(&num);
                Ok(new)
            }
            FdMode::Shared => {
                let (ino, fdid) = (entry.ino, entry.fdid);
                drop(st);
                let (new, demote) = expect_reply!(
                    self.call(
                        ino.server,
                        Request::SeekShared {
                            fd: fdid,
                            offset,
                            whence,
                        },
                    ),
                    Reply::Seeked { offset, demote } => (offset, demote)
                )?;
                if let Some(d) = demote {
                    self.apply_demote(num, d);
                }
                Ok(new)
            }
        }
    }

    pub(crate) fn fsync_impl(&self, num: u32) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let entry = st.fds.get_mut(num)?;
        if entry.is_pipe() {
            return Err(Errno::EINVAL);
        }
        match entry.mode {
            FdMode::Local { .. } => {
                if !entry.wrote {
                    return Ok(());
                }
                // Write back the target's dirty blocks.
                let snapshot = entry.clone();
                entry.dirty.clear();
                self.flush_entry(&snapshot);
                if !self.params.techniques.direct_access {
                    return Ok(());
                }
                // Write-behind size publication: size updates buffer
                // client-side as writes extend files (`size` runs ahead of
                // `published_size`), and fsync flushes *every* buffered
                // update — the target's and other written descriptors' —
                // as one grouped exchange through the batch layer. Each
                // published descriptor's dirty blocks are written back
                // first, so publication never runs ahead of data. A later
                // fsync of those descriptors then costs zero RPCs.
                //
                // Updates aggregate per *inode*, publishing the largest
                // buffered size: writes only ever grow a file, so when two
                // descriptors of one file hold different views, the larger
                // one subsumes the smaller — and a stale smaller view must
                // never overwrite a larger just-published size (the server
                // applies SetSize unconditionally).
                let mut updates: Vec<SizeUpdate> = Vec::new();
                for n in st.fds.numbers() {
                    let e = st.fds.get(n)?;
                    if e.is_pipe()
                        || !matches!(e.mode, FdMode::Local { .. })
                        || !e.wrote
                        || e.size <= e.published_size
                    {
                        continue;
                    }
                    let snap = e.clone();
                    self.flush_entry(&snap);
                    let e = st.fds.get_mut(n)?;
                    e.dirty.clear();
                    match updates.iter_mut().find(|u| u.ino == snap.ino) {
                        Some(u) => {
                            if snap.size > u.size {
                                u.size = snap.size;
                                u.fd = snap.fdid;
                            }
                            u.fds.push(n);
                        }
                        None => updates.push(SizeUpdate {
                            ino: snap.ino,
                            fd: snap.fdid,
                            size: snap.size,
                            fds: vec![n],
                        }),
                    }
                }
                if updates.is_empty() {
                    // The target's size is already published (an earlier
                    // fsync flushed it write-behind).
                    return Ok(());
                }
                let target_ino = st.fds.get(num)?.ino;
                // One grouped exchange through the batch layer, with the
                // state lock dropped for the duration of the round trips
                // (the io.rs convention — unlike the namespace ops, data
                // paths never hold the state lock across an RPC).
                drop(st);
                let replies = self.call_grouped(
                    updates
                        .iter()
                        .map(|u| {
                            (
                                u.ino.server,
                                Request::SetSize {
                                    fd: u.fd,
                                    size: u.size,
                                },
                            )
                        })
                        .collect(),
                    false,
                );
                let mut st = self.state.lock();
                let mut target_result = Ok(());
                for (u, r) in updates.iter().zip(replies) {
                    match expect_reply!(r, Reply::Unit => ()) {
                        Ok(()) => {
                            for &n in &u.fds {
                                if let Ok(e) = st.fds.get_mut(n) {
                                    // The server now knows the file holds
                                    // at least `u.size` bytes, which
                                    // subsumes this descriptor's (equal or
                                    // smaller) view.
                                    e.published_size = e.published_size.max(u.size);
                                }
                            }
                        }
                        // Only the target file's reply decides the fsync
                        // result — other files report their own errors at
                        // their own fsync or close.
                        Err(e) if u.ino == target_ino => target_result = Err(e),
                        Err(_) => {}
                    }
                }
                target_result
            }
            // Shared descriptors are server-mediated: nothing to flush.
            FdMode::Shared => Ok(()),
        }
    }

    pub(crate) fn ftruncate_impl(&self, num: u32, len: u64) -> FsResult<()> {
        self.syscall();
        let mut st = self.state.lock();
        let entry = st.fds.get_mut(num)?;
        if entry.is_pipe() {
            return Err(Errno::EINVAL);
        }
        if !entry.flags.writable() {
            return Err(Errno::EINVAL);
        }
        // Flush local dirty data first: the server zeroes the truncated
        // tail in DRAM, and this core's copies must be refreshed after.
        let snapshot = entry.clone();
        let (ino, fdid) = (entry.ino, entry.fdid);
        st.readahead.remove(&num);
        self.flush_entry(&snapshot);
        self.call_unit(
            ino.server,
            Request::Truncate {
                fd: fdid,
                size: len,
            },
        )?;
        let entry = st.fds.get_mut(num)?;
        if let FdMode::Local { .. } = entry.mode {
            let keep = (len as usize).div_ceil(BLOCK_SIZE);
            let mut drop_list: Vec<nccmem::BlockId> = Vec::new();
            if entry.blocks.len() > keep {
                drop_list.extend(entry.blocks.split_off(keep));
            }
            // The last kept block had its tail zeroed server-side: drop the
            // stale private copy too.
            if len < entry.size {
                if let Some(b) = entry.blocks.last() {
                    drop_list.push(*b);
                }
            }
            entry.dirty.clear();
            let dropped = self.machine.with_cache(self.params.core, |cache, _| {
                cache.invalidate_all(drop_list.iter().copied())
            });
            self.charge(self.machine.cost.invalidate_blk * dropped as u64);
            entry.size = len;
            // The Truncate made the server's size authoritative: nothing
            // is buffered for this descriptor anymore.
            entry.published_size = len;
            entry.wrote = true;
        }
        Ok(())
    }

    // ----- dup / pipe / fstat ------------------------------------------------

    pub(crate) fn dup_impl(&self, num: u32) -> FsResult<u32> {
        self.syscall();
        let mut st = self.state.lock();
        let entry = st.fds.get(num)?.clone();
        // Duplicates share one offset: promote to shared state at the
        // server, exactly as a cross-process share would (paper §3.4).
        let offset = match entry.mode {
            FdMode::Local { offset } => {
                self.flush_entry(&entry);
                offset
            }
            FdMode::Shared => 0,
        };
        self.call_unit(
            entry.ino.server,
            Request::FdIncref {
                fd: entry.fdid,
                offset,
            },
        )?;
        let e = st.fds.get_mut(num)?;
        e.mode = FdMode::Shared;
        e.dirty.clear();
        let mut copy = e.clone();
        copy.mode = FdMode::Shared;
        st.readahead.remove(&num);
        st.fds.insert(copy)
    }

    pub(crate) fn pipe_impl(&self) -> FsResult<(u32, u32)> {
        self.syscall();
        // Pipes are placed on the designated nearby server (affinity) or
        // spread by client id when affinity is disabled.
        let server = if self.params.techniques.affinity {
            self.local_server
        } else {
            (self.params.id % self.servers.len() as u64) as u16
        };
        let (ino, rfd, wfd) = expect_reply!(
            self.call(server, Request::PipeCreate),
            Reply::Pipe { ino, rfd, wfd } => (ino, rfd, wfd)
        )?;
        let mut st = self.state.lock();
        let mk = |fdid, flags| FdEntry {
            ino,
            fdid,
            flags,
            ftype: FileType::Pipe,
            mode: FdMode::Shared,
            size: 0,
            blocks: Vec::new(),
            extent: None,
            dirty: HashSet::new(),
            wrote: false,
            published_size: 0,
        };
        let r = st.fds.insert(mk(rfd, OpenFlags::RDONLY))?;
        let w = st.fds.insert(mk(wfd, OpenFlags::WRONLY))?;
        Ok((r, w))
    }

    pub(crate) fn fstat_impl(&self, num: u32) -> FsResult<Stat> {
        self.syscall();
        let st = self.state.lock();
        let entry = st.fds.get(num)?.clone();
        drop(st);
        let mut stat = expect_reply!(
            self.call(
                entry.ino.server,
                Request::StatInode {
                    num: entry.ino.num,
                },
            ),
            Reply::Stat(s) => s
        )?;
        // Local written size is ahead of the server's until close/fsync.
        if let FdMode::Local { .. } = entry.mode {
            if entry.wrote {
                stat.size = stat.size.max(entry.size);
            }
        }
        Ok(stat)
    }

    // ----- spawn support ------------------------------------------------------

    /// Prepares every open descriptor for inheritance by a child process:
    /// flushes local state, increments the server-side reference count, and
    /// flips the descriptor to shared (paper §3.4/§3.5).
    pub fn export_fds(&self) -> FsResult<Vec<ExportedFd>> {
        let mut st = self.state.lock();
        // Every descriptor goes shared: all readahead state is moot.
        st.readahead.clear();
        let mut out = Vec::new();
        for num in st.fds.numbers() {
            let entry = st.fds.get(num)?.clone();
            let offset = match entry.mode {
                FdMode::Local { offset } => {
                    self.flush_entry(&entry);
                    // Drop private copies: subsequent shared I/O moves
                    // through DRAM directly.
                    let dropped = self.machine.with_cache(self.params.core, |cache, _| {
                        cache.invalidate_all(entry.blocks.iter().copied())
                    });
                    self.charge(self.machine.cost.invalidate_blk * dropped as u64);
                    offset
                }
                FdMode::Shared => 0,
            };
            self.call_unit(
                entry.ino.server,
                Request::FdIncref {
                    fd: entry.fdid,
                    offset,
                },
            )?;
            let e = st.fds.get_mut(num)?;
            e.mode = FdMode::Shared;
            e.dirty.clear();
            out.push(ExportedFd {
                num,
                ino: e.ino,
                fdid: e.fdid,
                flags: e.flags,
                ftype: e.ftype,
            });
        }
        Ok(out)
    }

    /// Installs inherited descriptors in a freshly spawned process.
    pub fn import_fds(&self, fds: &[ExportedFd]) {
        let mut st = self.state.lock();
        for f in fds {
            st.fds.insert_at(
                f.num,
                FdEntry {
                    ino: f.ino,
                    fdid: f.fdid,
                    flags: f.flags,
                    ftype: f.ftype,
                    mode: FdMode::Shared,
                    size: 0,
                    blocks: Vec::new(),
                    extent: None,
                    dirty: HashSet::new(),
                    wrote: false,
                    published_size: 0,
                },
            );
        }
    }

    // ----- shared-descriptor data movement -------------------------------------

    /// Applies a server-initiated demotion: the descriptor returns to local
    /// state with a fresh view of the file (treated like a re-open:
    /// invalidate the block copies this core may hold).
    fn apply_demote(&self, num: u32, d: DemoteInfo) {
        let dropped = self.machine.with_cache(self.params.core, |cache, _| {
            cache.invalidate_all(d.blocks.iter().copied())
        });
        self.charge(self.machine.cost.invalidate_blk * dropped as u64);
        let mut st = self.state.lock();
        st.readahead.remove(&num);
        if let Ok(e) = st.fds.get_mut(num) {
            e.mode = FdMode::Local { offset: d.offset };
            e.size = d.size;
            // The server handed this size over, so it already knows it.
            e.published_size = d.size;
            e.blocks = d.blocks;
            e.dirty.clear();
        }
    }

    /// Copies a shared-I/O read range out of DRAM, bypassing the private
    /// cache (shared descriptors must observe a coherent view).
    fn copy_from_dram(&self, offset: u64, len: usize, blocks: &[nccmem::BlockId], buf: &mut [u8]) {
        if len == 0 {
            return;
        }
        let first_bi = offset as usize / BLOCK_SIZE;
        let mut filled = 0usize;
        let mut transfers = 0u64;
        while filled < len {
            let pos = offset as usize + filled;
            let (bi, bo) = (pos / BLOCK_SIZE - first_bi, pos % BLOCK_SIZE);
            let chunk = (BLOCK_SIZE - bo).min(len - filled);
            if let Some(b) = blocks.get(bi) {
                self.machine
                    .dram
                    .read(*b, bo, &mut buf[filled..filled + chunk]);
            } else {
                buf[filled..filled + chunk].fill(0);
            }
            filled += chunk;
            transfers += 1;
        }
        // One aggregated charge for the whole transfer instead of one
        // atomic clock bump per block.
        self.charge(self.machine.cost.dram_direct_blk * transfers);
        // This core's private cache may hold stale copies of these blocks
        // from before the descriptor was shared: drop them.
        self.machine.with_cache(self.params.core, |cache, _| {
            cache.invalidate_all(blocks.iter().copied())
        });
    }

    /// Copies a shared-I/O write range into DRAM, bypassing the private
    /// cache.
    fn copy_to_dram(&self, offset: u64, data: &[u8], blocks: &[nccmem::BlockId]) {
        if data.is_empty() {
            return;
        }
        let first_bi = offset as usize / BLOCK_SIZE;
        let mut written = 0usize;
        let mut transfers = 0u64;
        while written < data.len() {
            let pos = offset as usize + written;
            let (bi, bo) = (pos / BLOCK_SIZE - first_bi, pos % BLOCK_SIZE);
            let chunk = (BLOCK_SIZE - bo).min(data.len() - written);
            debug_assert!(bi < blocks.len(), "server must have allocated blocks");
            self.machine
                .dram
                .write(blocks[bi], bo, &data[written..written + chunk]);
            written += chunk;
            transfers += 1;
        }
        // Aggregated, as in `copy_from_dram`.
        self.charge(self.machine.cost.dram_direct_blk * transfers);
        self.machine.with_cache(self.params.core, |cache, _| {
            cache.invalidate_all(blocks.iter().copied())
        });
    }
}

/// One buffered size publication of fsync's write-behind flush: the
/// inode's size grows to the largest view buffered by this client's
/// descriptors. One `SetSize` per inode ships in a single grouped
/// exchange; successes mark every subsumed descriptor's size published,
/// failures leave them buffered for the next flush.
struct SizeUpdate {
    /// The inode whose size is published (one update per inode).
    ino: crate::types::InodeId,
    /// The descriptor handle carrying the `SetSize` (the one holding the
    /// largest buffered view).
    fd: crate::types::FdId,
    /// The largest buffered size among this client's descriptors of the
    /// inode.
    size: u64,
    /// Every local descriptor number whose buffered view this update
    /// subsumes (marked published on success).
    fds: Vec<u32>,
}
