//! Iterative pathname resolution through the directory cache.
//!
//! "Pathname lookups proceed iteratively, issuing the following RPC to each
//! directory server in turn: `lookup(dir, name) -> (server, inode)`"
//! (paper §3.6.1). Results are cached; servers invalidate stale entries.

use super::dircache::{Cached, CachedDentry};
use super::{expect_reply, ClientLib, ClientState};
use crate::proto::{Reply, Request};
use crate::types::InodeId;
use fsapi::{Errno, FileType, FsResult};

/// A `(parent directory, final name)` pair for each of two resolved paths
/// (the result of lockstep pair resolution).
pub(crate) type ParentPair<'a, 'b> = ((DirRef, &'a str), (DirRef, &'b str));

/// A resolved directory: its inode plus distribution flag (needed to route
/// subsequent entry operations to the right shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirRef {
    /// Directory inode.
    pub ino: InodeId,
    /// Whether its entries are distributed over all servers.
    pub dist: bool,
}

impl ClientLib {
    /// The root directory reference.
    pub(crate) fn root_ref(&self) -> DirRef {
        DirRef {
            ino: InodeId::ROOT,
            dist: self.params.root_distributed && self.params.techniques.distribution,
        }
    }

    /// Consults the directory cache for `(dir, name)`, charging the hit
    /// cost plus invalidation-drain work. `None` when the cache is
    /// disabled or has no slot for the name.
    pub(crate) fn consult_dircache(
        &self,
        st: &mut ClientState,
        dir: InodeId,
        name: &str,
    ) -> Option<Cached> {
        if !self.params.techniques.dircache {
            return None;
        }
        let (hit, drained) = st.dircache.lookup(dir, name);
        self.charge(self.machine.cost.dircache_hit + drained as u64 * 50);
        hit
    }

    /// Records an ENOENT result as a negative dentry, when the technique
    /// is enabled. The single gate for every ENOENT-caching path.
    pub(crate) fn cache_negative(&self, st: &mut ClientState, dir: InodeId, name: &str) {
        if self.params.techniques.dircache && self.params.techniques.neg_dircache {
            st.dircache.insert_negative(dir, name);
        }
    }

    /// Resolves one component inside `dir`, consulting the lookup cache
    /// first (when the technique is enabled). Misses are cached negatively
    /// (when `neg_dircache` is enabled) so repeated probes of absent names
    /// cost no RPC; the server tracks the miss and invalidates the
    /// negative entry when the name is created.
    pub(crate) fn lookup_child(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        match self.consult_dircache(st, dir.ino, name) {
            Some(Cached::Pos(v)) => return Ok(v),
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        self.lookup_child_uncached(st, dir, name)
    }

    /// The RPC half of [`Self::lookup_child`]: resolves at the dentry
    /// shard and updates the cache, without consulting it first (for
    /// callers that already did).
    pub(crate) fn lookup_child_uncached(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        let server = self.shard_of(dir.ino, dir.dist, name);
        let got = expect_reply!(
            self.call(
                server,
                Request::Lookup {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                },
            ),
            Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
        );
        match got {
            Ok(v) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, v);
                }
                Ok(v)
            }
            Err(Errno::ENOENT) => {
                self.cache_negative(st, dir.ino, name);
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    /// Resolves a component list to a directory.
    pub(crate) fn resolve_dir(&self, st: &mut ClientState, comps: &[&str]) -> FsResult<DirRef> {
        let mut cur = self.root_ref();
        for comp in comps {
            let d = self.lookup_child(st, cur, comp)?;
            if d.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            cur = DirRef {
                ino: d.target,
                dist: d.dist && self.params.techniques.distribution,
            };
        }
        Ok(cur)
    }

    /// Resolves `path` to `(parent directory, final name)`.
    pub(crate) fn resolve_parent<'p>(
        &self,
        st: &mut ClientState,
        path: &'p str,
    ) -> FsResult<(DirRef, &'p str)> {
        let (parents, name) = fsapi::path::split_parent(path)?;
        let dir = self.resolve_dir(st, &parents)?;
        Ok((dir, name))
    }

    /// Resolves two paths to their `(parent directory, final name)` pairs
    /// *in lockstep* (multi-component resolution prefetch): at every step
    /// the two chains' frontier lookups are independent of each other, so
    /// they ship through the batched transport — one exchange when both
    /// hash to the same shard server, overlapped exchanges otherwise.
    /// Shared-prefix components are deduplicated, so the RPC count never
    /// exceeds the sequential path's. Used by `rename`, whose two
    /// resolutions are the one hot multi-path pattern.
    ///
    /// Error precedence matches sequential resolution: a failure on the
    /// first path is reported even if the second failed too.
    pub(crate) fn resolve_parent_pair<'a, 'b>(
        &self,
        st: &mut ClientState,
        a: &'a str,
        b: &'b str,
    ) -> FsResult<ParentPair<'a, 'b>> {
        let (pa, na) = fsapi::path::split_parent(a)?;
        let (pb, nb) = fsapi::path::split_parent(b)?;
        let comps = [pa, pb];
        let mut cur = [self.root_ref(), self.root_ref()];
        let mut pos = [0usize; 2];
        let mut err: [Option<Errno>; 2] = [None, None];

        loop {
            // Advance each chain through the directory cache until it needs
            // a real RPC (or finishes).
            let mut frontier: Vec<(usize, crate::types::ServerId, InodeId, &str)> = Vec::new();
            for c in 0..2 {
                if err[c].is_some() {
                    continue;
                }
                while pos[c] < comps[c].len() {
                    let name = comps[c][pos[c]];
                    match self.consult_dircache(st, cur[c].ino, name) {
                        Some(Cached::Pos(d)) => match self.enter_dir(d) {
                            Ok(next) => {
                                cur[c] = next;
                                pos[c] += 1;
                            }
                            Err(e) => {
                                err[c] = Some(e);
                                break;
                            }
                        },
                        Some(Cached::Neg) => {
                            err[c] = Some(Errno::ENOENT);
                            break;
                        }
                        None => break,
                    }
                }
                if err[c].is_none() && pos[c] < comps[c].len() {
                    let name = comps[c][pos[c]];
                    let shard = self.shard_of(cur[c].ino, cur[c].dist, name);
                    frontier.push((c, shard, cur[c].ino, name));
                }
            }
            if frontier.is_empty() {
                break;
            }
            // Identical frontier lookups (shared prefix) collapse to one.
            if frontier.len() == 2
                && frontier[0].2 == frontier[1].2
                && frontier[0].3 == frontier[1].3
            {
                frontier.pop();
            }
            let reqs: Vec<(crate::types::ServerId, Request)> = frontier
                .iter()
                .map(|&(_, shard, dir, name)| {
                    (
                        shard,
                        Request::Lookup {
                            client: self.params.id,
                            dir,
                            name: name.to_string(),
                        },
                    )
                })
                .collect();
            let replies = self.call_grouped(reqs, false);
            for (&(_, _, dir, name), reply) in frontier.iter().zip(replies) {
                let got = expect_reply!(
                    reply,
                    Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
                );
                let outcome = match got {
                    Ok(v) => {
                        if self.params.techniques.dircache {
                            st.dircache.insert(dir, name, v);
                        }
                        self.enter_dir(v)
                    }
                    Err(Errno::ENOENT) => {
                        self.cache_negative(st, dir, name);
                        Err(Errno::ENOENT)
                    }
                    Err(e) => Err(e),
                };
                // Apply to every chain waiting on this (dir, name) — both,
                // when the frontier collapsed.
                for c in 0..2 {
                    if err[c].is_some() || pos[c] >= comps[c].len() {
                        continue;
                    }
                    if cur[c].ino == dir && comps[c][pos[c]] == name {
                        match outcome {
                            Ok(next) => {
                                cur[c] = next;
                                pos[c] += 1;
                            }
                            Err(e) => err[c] = Some(e),
                        }
                    }
                }
            }
        }

        if let Some(e) = err[0] {
            return Err(e);
        }
        if let Some(e) = err[1] {
            return Err(e);
        }
        Ok(((cur[0], na), (cur[1], nb)))
    }

    /// Interprets a resolved dentry as a directory to descend into.
    fn enter_dir(&self, d: CachedDentry) -> FsResult<DirRef> {
        if d.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        Ok(DirRef {
            ino: d.target,
            dist: d.dist && self.params.techniques.distribution,
        })
    }
}
