//! Pathname resolution through the directory cache.
//!
//! "Pathname lookups proceed iteratively, issuing the following RPC to each
//! directory server in turn: `lookup(dir, name) -> (server, inode)`"
//! (paper §3.6.1). Results are cached; servers invalidate stale entries.
//!
//! This reproduction layers three mechanisms on top of the paper's loop,
//! all expressed as [`MultiStepOp`] state machines driven by the operation
//! engine (`engine.rs`):
//!
//! * **Chained resolution** ([`ResolveOp`]): with the `chained_resolution`
//!   technique on, a cold walk ships the *whole remaining component list*
//!   to the first uncached component's shard server as one
//!   [`Request::LookupPath`]; servers resolve what they own and forward
//!   the rest directly to the next owner, so the client pays one exchange
//!   per run of co-located components instead of one round trip per
//!   component.
//! * **Terminal-op fusion** ([`FusedPathOp`]): with `fused_terminal` on,
//!   the chain additionally carries the operation the walk was *for* —
//!   the final component's coalesced stat/open, or the first shard of a
//!   `readdir` listing — and the final server answers it in the same
//!   exchange when its shards align. Cold deep `stat`/`open` becomes one
//!   end-to-end exchange.
//! * **Pair resolution** ([`PairResolveOp`]): rename's two parent chains
//!   advance in lockstep; per round the two frontier requests are
//!   deduplicated — fully when the remainders are identical, and down to
//!   the shared prefix when one remainder is a prefix of the other — and
//!   shipped together (batched when they are plain lookups, overlapped
//!   when they are chains).

use super::dircache::{Cached, CachedDentry};
use super::engine::{MultiStepOp, Next, Step};
use super::{expect_reply, ClientLib, ClientState};
use crate::otrace::Cause;
use crate::proto::{Reply, Request, TerminalOp, TerminalReply, WireReply};
use crate::types::{InodeId, ServerId};
use fsapi::{Errno, FileType, FsResult};

/// A `(parent directory, final name)` pair for each of two resolved paths
/// (the result of lockstep pair resolution).
pub(crate) type ParentPair<'a, 'b> = ((DirRef, &'a str), (DirRef, &'b str));

/// A resolved directory: its inode plus distribution flag (needed to route
/// subsequent entry operations to the right shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirRef {
    /// Directory inode.
    pub ino: InodeId,
    /// Whether its entries are distributed over all servers.
    pub dist: bool,
}

impl ClientLib {
    /// The root directory reference.
    pub(crate) fn root_ref(&self) -> DirRef {
        DirRef {
            ino: InodeId::ROOT,
            dist: self.params.root_distributed && self.params.techniques.distribution,
        }
    }

    /// Consults the directory cache for `(dir, name)`, charging the hit
    /// cost plus invalidation-drain work. `None` when the cache is
    /// disabled or has no slot for the name.
    pub(crate) fn consult_dircache(
        &self,
        st: &mut ClientState,
        dir: InodeId,
        name: &str,
    ) -> Option<Cached> {
        if !self.params.techniques.dircache {
            return None;
        }
        let (hit, drained) = st.dircache.lookup(dir, name);
        self.charge(self.machine.cost.dircache_hit + drained as u64 * 50);
        hit
    }

    /// Records an ENOENT result as a negative dentry, when the technique
    /// is enabled. The single gate for every ENOENT-caching path.
    pub(crate) fn cache_negative(&self, st: &mut ClientState, dir: InodeId, name: &str) {
        if self.params.techniques.dircache && self.params.techniques.neg_dircache {
            st.dircache.insert_negative(dir, name);
        }
    }

    /// Resolves one component inside `dir`, consulting the lookup cache
    /// first (when the technique is enabled). Misses are cached negatively
    /// (when `neg_dircache` is enabled) so repeated probes of absent names
    /// cost no RPC; the server tracks the miss and invalidates the
    /// negative entry when the name is created.
    pub(crate) fn lookup_child(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        match self.consult_dircache(st, dir.ino, name) {
            Some(Cached::Pos(v)) => return Ok(v),
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        self.lookup_child_uncached(st, dir, name)
    }

    /// The RPC half of [`Self::lookup_child`]: resolves at the dentry
    /// shard and updates the cache, without consulting it first (for
    /// callers that already did).
    pub(crate) fn lookup_child_uncached(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        // Read-routed: a replica of the directory may answer the lookup.
        // Only home-served replies (positive or negative) may enter the
        // dircache — replicas keep no tracking lists, so a cached replica
        // answer would never be invalidated.
        let (wire, from_home) =
            self.call_entry_read(dir.ino, dir.dist, name, |lib| Request::Lookup {
                client: lib.params.id,
                dir: dir.ino,
                name: name.to_string(),
            });
        let got = expect_reply!(
            wire,
            Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
        );
        match got {
            Ok(v) => {
                if from_home && self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, v);
                }
                Ok(v)
            }
            Err(Errno::ENOENT) => {
                if from_home {
                    self.cache_negative(st, dir.ino, name);
                }
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    /// Resolves a component list to a directory.
    pub(crate) fn resolve_dir(&self, st: &mut ClientState, comps: &[&str]) -> FsResult<DirRef> {
        self.run_op(st, ResolveOp::new(self.root_ref(), comps))
    }

    /// Resolves `path` to `(parent directory, final name)`.
    pub(crate) fn resolve_parent<'p>(
        &self,
        st: &mut ClientState,
        path: &'p str,
    ) -> FsResult<(DirRef, &'p str)> {
        let (parents, name) = fsapi::path::split_parent(path)?;
        let dir = self.resolve_dir(st, &parents)?;
        Ok((dir, name))
    }

    /// Resolves two paths to their `(parent directory, final name)` pairs
    /// *in lockstep*: per round the two chains' frontier requests ship
    /// together and shared-prefix duplicates collapse to one. Used by
    /// `rename`, whose two resolutions are the one hot multi-path pattern.
    ///
    /// Error precedence matches sequential resolution: a failure on the
    /// first path is reported even if the second failed too.
    pub(crate) fn resolve_parent_pair<'a, 'b>(
        &self,
        st: &mut ClientState,
        a: &'a str,
        b: &'b str,
    ) -> FsResult<ParentPair<'a, 'b>> {
        let (pa, na) = fsapi::path::split_parent(a)?;
        let (pb, nb) = fsapi::path::split_parent(b)?;
        let (da, db) = self.run_op(st, PairResolveOp::new(self.root_ref(), &pa, &pb))?;
        Ok(((da, na), (db, nb)))
    }

    /// Interprets a resolved dentry as a directory to descend into.
    fn enter_dir(&self, d: CachedDentry) -> FsResult<DirRef> {
        if d.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        Ok(DirRef {
            ino: d.target,
            dist: d.dist && self.params.techniques.distribution,
        })
    }
}

/// The request a resolve chain has in flight.
enum Pending {
    /// Nothing outstanding.
    Idle,
    /// A chained `LookupPath` covering the next `upto` components (all of
    /// them, unless a pair-dedup'd prefix chain asked for fewer).
    Chain {
        /// Components the chain was asked to resolve.
        upto: usize,
    },
    /// A single `Lookup` for the current (non-terminal) component.
    Single,
    /// The final component's coalesced single RPC of a terminal walk
    /// (`LookupStat`/`LookupOpen`, or a plain `Lookup` for `List`).
    Terminal,
}

/// The path-walk state machine: one directory-component cursor advanced by
/// cache hits, chained `LookupPath` exchanges, or per-component lookups.
///
/// With a [`TerminalOp`] other than `None`, the *last* component is the
/// walk's target rather than a directory to descend into: its dentry is
/// captured (`final_dentry`), a chain reaching it carries the terminal op,
/// and a final ENOENT finishes the op with `final_dentry: None` (cached
/// negatively) instead of erroring — callers like `open(O_CREAT)` need the
/// resolved parent in that case.
pub(crate) struct ResolveOp<'p> {
    comps: &'p [&'p str],
    cur: DirRef,
    pos: usize,
    pending: Pending,
    /// Resolve the next component with a plain (parkable) single RPC
    /// before chaining again — set when a chain stopped `EAGAIN` on a
    /// directory marked for deletion.
    single_once: bool,
    /// When the pending single/terminal RPC was read-routed to a
    /// **replica** rather than the directory's home, the server it went
    /// to. The reply then bypasses the dircache (nothing would ever
    /// invalidate it) and a `NotOwner` means that copy is gone, not that
    /// the shard moved.
    sent_replica: Option<ServerId>,
    /// What the walk is for (fused into the chain's tail).
    terminal: TerminalOp,
    /// The final component's dentry, when `terminal` is not `None`.
    final_dentry: Option<CachedDentry>,
    /// The fused terminal result, when the final server answered it.
    term: Option<TerminalReply>,
}

impl<'p> ResolveOp<'p> {
    /// A walk of `comps` starting at `root`, descending every component.
    pub(crate) fn new(root: DirRef, comps: &'p [&'p str]) -> Self {
        Self::with_terminal(root, comps, TerminalOp::None)
    }

    /// A walk whose last component is the target of `terminal`.
    fn with_terminal(root: DirRef, comps: &'p [&'p str], terminal: TerminalOp) -> Self {
        ResolveOp {
            comps,
            cur: root,
            pos: 0,
            pending: Pending::Idle,
            single_once: false,
            sent_replica: None,
            terminal,
            final_dentry: None,
            term: None,
        }
    }

    /// True when the cursor stands on the final component of a terminal
    /// walk (captured, not descended).
    fn at_terminal(&self) -> bool {
        self.terminal != TerminalOp::None && self.pos + 1 == self.comps.len()
    }

    /// Caches (unless the component was replica-served) and descends into
    /// one resolved component.
    fn descend(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        d: CachedDentry,
        cacheable: bool,
    ) -> FsResult<()> {
        if cacheable && lib.params.techniques.dircache {
            st.dircache.insert(self.cur.ino, self.comps[self.pos], d);
        }
        self.cur = lib.enter_dir(d)?;
        self.pos += 1;
        Ok(())
    }

    /// Caches (unless replica-served) and captures the final component of
    /// a terminal walk.
    fn capture_final(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        d: CachedDentry,
        cacheable: bool,
    ) {
        if cacheable && lib.params.techniques.dircache {
            st.dircache.insert(self.cur.ino, self.comps[self.pos], d);
        }
        self.final_dentry = Some(d);
        self.pos += 1;
    }

    /// Records a final-component ENOENT: the miss is cached (unless the
    /// answer came from a replica) and the walk finishes with
    /// `final_dentry: None` (the parent is resolved).
    fn finish_absent(&mut self, lib: &ClientLib, st: &mut ClientState, cacheable: bool) {
        if cacheable {
            lib.cache_negative(st, self.cur.ino, self.comps[self.pos]);
        }
        self.pos = self.comps.len();
    }

    /// Applies the reply of the previously emitted request.
    fn absorb(&mut self, lib: &ClientLib, st: &mut ClientState, reply: WireReply) -> FsResult<()> {
        // A NotOwner redirect (the addressed server no longer holds the
        // directory's migrated shard) is not an outcome for any pending
        // kind: fold it into the routing table and leave the cursor where
        // it is — the next `next_request` re-emits at the owner. Chains
        // never produce one (stale hops re-forward server-side).
        if let Ok(Reply::NotOwner { dir, epoch, owner }) = &reply {
            debug_assert!(!matches!(self.pending, Pending::Chain { .. }));
            self.pending = Pending::Idle;
            // A redirect from a *replica* means that copy is gone —
            // forget the dead route and retry (the next emission routes
            // around it), tolerating a no-news epoch. A redirect from the
            // home keeps the strict rule: no news means the route that
            // produced it is unchanged — re-sending would loop, so treat
            // it as the protocol error it is. Every accepted redirect
            // strictly raises the directory's epoch, which bounds the
            // retries.
            if let Some(server) = self.sent_replica.take() {
                lib.routing.lock().forget_replica(*dir, server);
                let _ = lib.learn_owner(*dir, *owner, *epoch);
                lib.machine.otrace.tag_next(Cause::Redirect);
                return Ok(());
            }
            return if lib.learn_owner(*dir, *owner, *epoch) {
                lib.machine.otrace.tag_next(Cause::Redirect);
                Ok(())
            } else {
                Err(Errno::EIO)
            };
        }
        let from_home = self.sent_replica.take().is_none();
        match std::mem::replace(&mut self.pending, Pending::Idle) {
            Pending::Single => {
                let dir = self.cur.ino;
                let name = self.comps[self.pos];
                let got = expect_reply!(
                    reply,
                    Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
                );
                match got {
                    Ok(v) => self.descend(lib, st, v, from_home),
                    Err(Errno::ENOENT) => {
                        if from_home {
                            lib.cache_negative(st, dir, name);
                        }
                        Err(Errno::ENOENT)
                    }
                    Err(e) => Err(e),
                }
            }
            Pending::Terminal => {
                // All three coalesced final-component replies carry a
                // dentry plus an optional fused result.
                let got = match reply {
                    Ok(Reply::Lookup {
                        target,
                        ftype,
                        dist,
                    }) => ((target, ftype, dist), None),
                    Ok(Reply::LookupStated {
                        target,
                        ftype,
                        dist,
                        stat,
                    }) => ((target, ftype, dist), stat.map(TerminalReply::Stat)),
                    Ok(Reply::LookupOpened {
                        target,
                        ftype,
                        dist,
                        open,
                    }) => ((target, ftype, dist), open.map(TerminalReply::Open)),
                    Ok(other) => {
                        debug_assert!(false, "protocol mismatch: {other:?}");
                        return Err(Errno::EIO);
                    }
                    Err(Errno::ENOENT) => {
                        self.finish_absent(lib, st, from_home);
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                };
                let ((target, ftype, dist), term) = got;
                self.capture_final(
                    lib,
                    st,
                    CachedDentry {
                        target,
                        ftype,
                        dist,
                    },
                    from_home,
                );
                self.term = term;
                Ok(())
            }
            Pending::Chain { upto } => {
                let start = self.pos;
                let (entries, stopped, term) = expect_reply!(
                    reply,
                    Reply::Path { entries, stopped, term } => (entries, stopped, term)
                )?;
                debug_assert!(entries.len() <= upto);
                for e in entries {
                    let d = CachedDentry {
                        target: e.target,
                        ftype: e.ftype,
                        dist: e.dist,
                    };
                    // Replica-served components (`e.replica`) resolve but
                    // never enter the dircache.
                    if self.at_terminal() {
                        // Only reachable when the chain covered the final
                        // component (and therefore carried the terminal).
                        self.capture_final(lib, st, d, !e.replica);
                    } else {
                        // A non-directory intermediate surfaces ENOTDIR
                        // here, exactly like the sequential walk entering
                        // it would.
                        self.descend(lib, st, d, !e.replica)?;
                    }
                }
                debug_assert!(term.is_none() || stopped.is_none());
                if stopped.is_none() {
                    self.term = term;
                }
                match stopped {
                    None => {
                        debug_assert_eq!(self.pos, start + upto);
                        Ok(())
                    }
                    // A chain's ENOENT is always home-authoritative:
                    // replica copies only serve positive hits (a miss
                    // forwards to the owner), so the negative is safely
                    // cacheable.
                    Some(Errno::ENOENT) if self.at_terminal() => {
                        self.finish_absent(lib, st, true);
                        Ok(())
                    }
                    Some(Errno::ENOENT) => {
                        lib.cache_negative(st, self.cur.ino, self.comps[self.pos]);
                        Err(Errno::ENOENT)
                    }
                    // The chain reached a directory marked for deletion:
                    // re-ask that component as a plain single RPC, which
                    // parks at the server until the rmdir commits or
                    // aborts.
                    Some(Errno::EAGAIN) => {
                        self.single_once = true;
                        lib.machine.otrace.tag_next(Cause::Retry);
                        Ok(())
                    }
                    Some(e) => Err(e),
                }
            }
            Pending::Idle => {
                debug_assert!(false, "reply without a pending request");
                Err(Errno::EIO)
            }
        }
    }

    /// Advances the cursor through the directory cache. Returns `true`
    /// when resolution is complete (nothing left to ask a server).
    fn advance_cached(&mut self, lib: &ClientLib, st: &mut ClientState) -> FsResult<bool> {
        while self.pos < self.comps.len() {
            let name = self.comps[self.pos];
            match lib.consult_dircache(st, self.cur.ino, name) {
                Some(Cached::Pos(d)) => {
                    if self.at_terminal() {
                        self.final_dentry = Some(d);
                        self.pos += 1;
                    } else {
                        self.cur = lib.enter_dir(d)?;
                        self.pos += 1;
                    }
                }
                Some(Cached::Neg) => {
                    if self.at_terminal() {
                        // Known absent: finish with no dentry (the
                        // negative entry is already cached).
                        self.pos = self.comps.len();
                    } else {
                        return Err(Errno::ENOENT);
                    }
                }
                None => break,
            }
        }
        Ok(self.pos == self.comps.len())
    }

    /// True when the next emission would be a chained `LookupPath`.
    /// Chaining pays off once two or more uncached components remain; a
    /// single component is exactly one round trip either way, and the
    /// single RPC parks correctly on deletion-marked directories.
    fn would_chain(&self, lib: &ClientLib) -> bool {
        lib.params.techniques.chained_resolution
            && self.comps.len() - self.pos >= 2
            && !self.single_once
    }

    /// Emits a chain covering the next `upto` components. Only a chain
    /// that reaches the final component carries the terminal op; a
    /// pair-dedup'd prefix chain resolves directories only.
    fn chain_request(&mut self, lib: &ClientLib, upto: usize) -> (ServerId, Request) {
        debug_assert!(upto >= 1 && self.pos + upto <= self.comps.len());
        let name = self.comps[self.pos];
        // Hop 0 of a centralized chain is read-routed: a replica of the
        // starting directory serves the components it can from its copy
        // (flagged `replica` in the reply, so they bypass the dircache)
        // and forwards the rest feed-forward like any chain hop. No
        // per-reply bookkeeping is needed here — chains never answer
        // `NotOwner` and the entry flags carry the cacheability.
        let shard = if self.cur.dist {
            lib.shard_of(self.cur.ino, true, name)
        } else {
            lib.read_server_of(self.cur.ino)
        };
        let terminal = if self.pos + upto == self.comps.len() {
            self.terminal
        } else {
            TerminalOp::None
        };
        self.pending = Pending::Chain { upto };
        (
            shard,
            Request::LookupPath {
                client: lib.params.id,
                dir: self.cur.ino,
                dist: self.cur.dist,
                comps: self.comps[self.pos..self.pos + upto]
                    .iter()
                    .map(|c| c.to_string())
                    .collect(),
                acc: Vec::new(),
                hops: 0,
                terminal,
            },
        )
    }

    /// Emits the single RPC for the current component: a plain `Lookup`
    /// for intermediates, the coalesced terminal RPC for the final
    /// component of a terminal walk.
    fn single_request(&mut self, lib: &ClientLib) -> (ServerId, Request) {
        self.single_once = false;
        let name = self.comps[self.pos];
        // Every single emission here is a read (the coalesced terminals
        // included — a create degrades to the coalesced open), so a
        // centralized component is read-routed over the directory's
        // replica set; `sent_replica` remembers a non-home pick so the
        // reply bypasses the dircache.
        let shard = if self.cur.dist {
            lib.shard_of(self.cur.ino, true, name)
        } else {
            let s = lib.read_server_of(self.cur.ino);
            self.sent_replica = (s != lib.dir_home_of(self.cur.ino)).then_some(s);
            if self.sent_replica.is_some() {
                lib.machine.otrace.tag_next(Cause::ReplicaRead);
            }
            s
        };
        if self.at_terminal() {
            self.pending = Pending::Terminal;
            let req = match self.terminal {
                TerminalOp::Stat => Request::LookupStat {
                    client: lib.params.id,
                    dir: self.cur.ino,
                    name: name.to_string(),
                },
                TerminalOp::Open { flags } => Request::LookupOpen {
                    client: lib.params.id,
                    dir: self.cur.ino,
                    name: name.to_string(),
                    flags,
                },
                // The single-RPC form cannot create (only a chain's final
                // server is known to own both halves of the coalesced
                // placement): degrade to the coalesced open — an ENOENT
                // falls through to the client's ordinary create tail.
                TerminalOp::Create { flags, .. } => Request::LookupOpen {
                    client: lib.params.id,
                    dir: self.cur.ino,
                    name: name.to_string(),
                    flags,
                },
                // A listing's final single is a plain lookup (the shard
                // server is not, in general, where the listing lives).
                TerminalOp::List { .. } | TerminalOp::None => Request::Lookup {
                    client: lib.params.id,
                    dir: self.cur.ino,
                    name: name.to_string(),
                },
            };
            return (shard, req);
        }
        self.pending = Pending::Single;
        (
            shard,
            Request::Lookup {
                client: lib.params.id,
                dir: self.cur.ino,
                name: name.to_string(),
            },
        )
    }

    /// Advances through the directory cache, then picks the next request —
    /// a chain covering the remaining components when the technique
    /// applies, a single RPC otherwise. `None` when resolution is
    /// complete.
    fn next_request(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
    ) -> FsResult<Option<(ServerId, Request)>> {
        if self.advance_cached(lib, st)? {
            return Ok(None);
        }
        if self.would_chain(lib) {
            let upto = self.comps.len() - self.pos;
            return Ok(Some(self.chain_request(lib, upto)));
        }
        Ok(Some(self.single_request(lib)))
    }

    /// True when the in-flight request must not travel in a batch
    /// envelope (its reply may come from a different server).
    fn pending_unbatchable(&self) -> bool {
        matches!(self.pending, Pending::Chain { .. })
    }

    /// The `(directory, remaining components)` frontier, for pair
    /// deduplication. Only meaningful after [`Self::advance_cached`].
    fn frontier(&self) -> (InodeId, &'p [&'p str]) {
        (self.cur.ino, &self.comps[self.pos..])
    }
}

impl MultiStepOp for ResolveOp<'_> {
    type Out = DirRef;

    fn step(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<DirRef>> {
        if let Some(mut rs) = replies {
            debug_assert_eq!(rs.len(), 1);
            self.absorb(lib, st, rs.pop().ok_or(Errno::EIO)?)?;
        }
        match self.next_request(lib, st)? {
            Some((server, req)) => Ok(Next::Run(Step::Call(server, req))),
            None => Ok(Next::Done(self.cur)),
        }
    }
}

/// What a terminal walk resolved.
pub(crate) struct FusedOut {
    /// The final component's parent directory (always resolved on
    /// success).
    pub(crate) parent: DirRef,
    /// The final component's dentry; `None` means the name is absent
    /// (`ENOENT`, cached negatively) while every parent resolved —
    /// `open(O_CREAT)` creates into `parent` from here.
    pub(crate) dentry: Option<CachedDentry>,
    /// The fused terminal result, when the final server answered it.
    pub(crate) term: Option<TerminalReply>,
}

/// A full-path walk with a fused terminal: resolves `comps` (parents *and*
/// final component, favoring a single `LookupPath` chain that carries the
/// terminal op) and reports the final dentry plus any fused result.
/// Mid-path errors abort the op; a final-component ENOENT completes with
/// `dentry: None` so callers keep the resolved parent.
pub(crate) struct FusedPathOp<'p>(ResolveOp<'p>);

impl<'p> FusedPathOp<'p> {
    /// A terminal walk of `comps` (which must be non-empty) from `root`.
    pub(crate) fn new(root: DirRef, comps: &'p [&'p str], terminal: TerminalOp) -> Self {
        debug_assert!(!comps.is_empty());
        debug_assert!(terminal != TerminalOp::None);
        FusedPathOp(ResolveOp::with_terminal(root, comps, terminal))
    }
}

impl MultiStepOp for FusedPathOp<'_> {
    type Out = FusedOut;

    fn step(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<FusedOut>> {
        if let Some(mut rs) = replies {
            debug_assert_eq!(rs.len(), 1);
            self.0.absorb(lib, st, rs.pop().ok_or(Errno::EIO)?)?;
        }
        match self.0.next_request(lib, st)? {
            Some((server, req)) => Ok(Next::Run(Step::Call(server, req))),
            None => {
                debug_assert!(self.0.term.is_none() || self.0.final_dentry.is_some());
                Ok(Next::Done(FusedOut {
                    parent: self.0.cur,
                    dentry: self.0.final_dentry,
                    term: self.0.term.take(),
                }))
            }
        }
    }
}

/// Two [`ResolveOp`] chains advanced in lockstep (rename's pair
/// resolution). Each round collects both chains' frontier requests and
/// collapses shared work to one request: identical remainders share the
/// whole chain, and when one remainder is a *prefix* of the other the
/// prefix resolves once (the longer chain continues from there next
/// round). A chain that errors stops advancing while the other finishes,
/// and the first path's error takes precedence.
pub(crate) struct PairResolveOp<'p> {
    ops: [ResolveOp<'p>; 2],
    err: [Option<Errno>; 2],
    done: [Option<DirRef>; 2],
    /// Which chains contributed a request to the in-flight step.
    in_flight: [bool; 2],
    /// The in-flight step was deduplicated: one request answers both.
    dedup: bool,
}

impl<'p> PairResolveOp<'p> {
    /// Lockstep resolution of two component lists from `root`.
    pub(crate) fn new(root: DirRef, a: &'p [&'p str], b: &'p [&'p str]) -> Self {
        PairResolveOp {
            ops: [ResolveOp::new(root, a), ResolveOp::new(root, b)],
            err: [None, None],
            done: [None, None],
            in_flight: [false, false],
            dedup: false,
        }
    }

    /// Feeds one chain's reply, downgrading failures to per-chain errors.
    fn absorb_into(&mut self, i: usize, lib: &ClientLib, st: &mut ClientState, reply: WireReply) {
        if let Err(e) = self.ops[i].absorb(lib, st, reply) {
            self.err[i] = Some(e);
        }
    }

    /// Whether chain `i` still has work (and no recorded outcome).
    fn active(&self, i: usize) -> bool {
        self.err[i].is_none() && self.done[i].is_none()
    }

    /// Builds one request serving both chains, when their frontiers allow
    /// it: same directory and either one remainder a prefix of the other
    /// (shared chain — the identical-remainder case included) or the same
    /// next single lookup. Returns the request plus whether it is a chain
    /// (unbatchable). Both ops' pending states are armed to absorb the
    /// shared reply.
    fn dedup_request(&mut self, lib: &ClientLib) -> Option<((ServerId, Request), bool)> {
        let (d0, r0) = self.ops[0].frontier();
        let (d1, r1) = self.ops[1].frontier();
        if d0 != d1 || r0.is_empty() || r1.is_empty() {
            return None;
        }
        let chain = [self.ops[0].would_chain(lib), self.ops[1].would_chain(lib)];
        let (short, long) = if r0.len() <= r1.len() { (0, 1) } else { (1, 0) };
        let prefix_len = if r0.len() <= r1.len() {
            r1.starts_with(r0).then_some(r0.len())
        } else {
            r0.starts_with(r1).then_some(r1.len())
        };
        if let (Some(upto), [true, true]) = (prefix_len, chain) {
            // Shared-prefix chain: one LookupPath over the common prefix
            // (the shorter remainder in full); the longer chain absorbs
            // the same entries and continues with its own suffix.
            debug_assert!(upto >= 2, "would_chain requires 2+ remaining");
            let req = self.ops[short].chain_request(lib, upto);
            self.ops[long].pending = Pending::Chain { upto };
            return Some((req, true));
        }
        if let ([true, true], None) = (chain, prefix_len) {
            // Diverging suffixes that still share a leading run of 2+
            // components (e.g. rename("a/b/c/x", "a/b/c/y/z")): chain the
            // shared prefix once and split there. With hashed dentry
            // placement a k-component prefix expects 1 + (k-1)(1 - 1/n)
            // distinct server runs, so resolving it twice would forward
            // through ~2x the servers; one shared chain halves that, and
            // both suffixes still resolve (overlapped) next round.
            let upto = r0.iter().zip(r1).take_while(|(a, b)| a == b).count();
            if upto >= 2 {
                let req = self.ops[short].chain_request(lib, upto);
                self.ops[long].pending = Pending::Chain { upto };
                return Some((req, true));
            }
        }
        if chain == [false, false] && r0[0] == r1[0] {
            // Both chains next ask the same single lookup.
            let req = self.ops[short].single_request(lib);
            debug_assert!(matches!(self.ops[short].pending, Pending::Single));
            self.ops[long].single_once = false;
            self.ops[long].pending = Pending::Single;
            return Some((req, false));
        }
        // Mixed chain/single frontiers (or suffixes diverging on the first
        // or second component): resolving them independently overlaps in
        // one round; a forced shared prefix would serialize an extra round
        // for no message saving.
        None
    }
}

impl MultiStepOp for PairResolveOp<'_> {
    type Out = (DirRef, DirRef);

    fn step(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<(DirRef, DirRef)>> {
        if let Some(rs) = replies {
            let mut it = rs.into_iter();
            if self.dedup {
                let r = it.next().ok_or(Errno::EIO)?;
                self.absorb_into(0, lib, st, r.clone());
                self.absorb_into(1, lib, st, r);
            } else {
                for i in 0..2 {
                    if self.in_flight[i] {
                        let r = it.next().ok_or(Errno::EIO)?;
                        self.absorb_into(i, lib, st, r);
                    }
                }
            }
            self.in_flight = [false, false];
            self.dedup = false;
        }

        // Advance both chains through the directory cache first, so the
        // frontiers compared below are the real next requests.
        for i in 0..2 {
            if !self.active(i) {
                continue;
            }
            match self.ops[i].advance_cached(lib, st) {
                Ok(true) => self.done[i] = Some(self.ops[i].cur),
                Ok(false) => {}
                Err(e) => self.err[i] = Some(e),
            }
        }

        let mut reqs: Vec<(ServerId, Request)> = Vec::with_capacity(2);
        let mut unbatchable = false;
        if self.active(0) && self.active(1) {
            if let Some((req, chain)) = self.dedup_request(lib) {
                self.dedup = true;
                self.in_flight = [true, true];
                unbatchable = chain;
                reqs.push(req);
            }
        }
        if reqs.is_empty() {
            for i in 0..2 {
                if !self.active(i) {
                    continue;
                }
                let req = if self.ops[i].would_chain(lib) {
                    let upto = self.ops[i].comps.len() - self.ops[i].pos;
                    self.ops[i].chain_request(lib, upto)
                } else {
                    self.ops[i].single_request(lib)
                };
                unbatchable = unbatchable || self.ops[i].pending_unbatchable();
                reqs.push(req);
                self.in_flight[i] = true;
            }
        }

        if reqs.is_empty() {
            if let Some(e) = self.err[0] {
                return Err(e);
            }
            if let Some(e) = self.err[1] {
                return Err(e);
            }
            let (a, b) = (self.done[0], self.done[1]);
            return Ok(Next::Done((a.ok_or(Errno::EIO)?, b.ok_or(Errno::EIO)?)));
        }
        Ok(Next::Run(if unbatchable {
            Step::Overlapped(reqs)
        } else {
            Step::Grouped(reqs)
        }))
    }
}
