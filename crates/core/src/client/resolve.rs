//! Pathname resolution through the directory cache.
//!
//! "Pathname lookups proceed iteratively, issuing the following RPC to each
//! directory server in turn: `lookup(dir, name) -> (server, inode)`"
//! (paper §3.6.1). Results are cached; servers invalidate stale entries.
//!
//! This reproduction layers two mechanisms on top of the paper's loop, both
//! expressed as [`MultiStepOp`] state machines driven by the operation
//! engine (`engine.rs`):
//!
//! * **Chained resolution** ([`ResolveOp`]): with the `chained_resolution`
//!   technique on, a cold walk ships the *whole remaining component list*
//!   to the first uncached component's shard server as one
//!   [`Request::LookupPath`]; servers resolve what they own and forward
//!   the rest directly to the next owner, so the client pays one exchange
//!   per run of co-located components instead of one round trip per
//!   component.
//! * **Pair resolution** ([`PairResolveOp`]): rename's two parent chains
//!   advance in lockstep; per round the two frontier requests are
//!   deduplicated (shared prefix) and shipped together — batched when they
//!   are plain lookups, overlapped when they are chains.

use super::dircache::{Cached, CachedDentry};
use super::engine::{MultiStepOp, Next, Step};
use super::{expect_reply, ClientLib, ClientState};
use crate::proto::{Reply, Request, WireReply};
use crate::types::{InodeId, ServerId};
use fsapi::{Errno, FileType, FsResult};

/// A `(parent directory, final name)` pair for each of two resolved paths
/// (the result of lockstep pair resolution).
pub(crate) type ParentPair<'a, 'b> = ((DirRef, &'a str), (DirRef, &'b str));

/// A resolved directory: its inode plus distribution flag (needed to route
/// subsequent entry operations to the right shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirRef {
    /// Directory inode.
    pub ino: InodeId,
    /// Whether its entries are distributed over all servers.
    pub dist: bool,
}

impl ClientLib {
    /// The root directory reference.
    pub(crate) fn root_ref(&self) -> DirRef {
        DirRef {
            ino: InodeId::ROOT,
            dist: self.params.root_distributed && self.params.techniques.distribution,
        }
    }

    /// Consults the directory cache for `(dir, name)`, charging the hit
    /// cost plus invalidation-drain work. `None` when the cache is
    /// disabled or has no slot for the name.
    pub(crate) fn consult_dircache(
        &self,
        st: &mut ClientState,
        dir: InodeId,
        name: &str,
    ) -> Option<Cached> {
        if !self.params.techniques.dircache {
            return None;
        }
        let (hit, drained) = st.dircache.lookup(dir, name);
        self.charge(self.machine.cost.dircache_hit + drained as u64 * 50);
        hit
    }

    /// Records an ENOENT result as a negative dentry, when the technique
    /// is enabled. The single gate for every ENOENT-caching path.
    pub(crate) fn cache_negative(&self, st: &mut ClientState, dir: InodeId, name: &str) {
        if self.params.techniques.dircache && self.params.techniques.neg_dircache {
            st.dircache.insert_negative(dir, name);
        }
    }

    /// Resolves one component inside `dir`, consulting the lookup cache
    /// first (when the technique is enabled). Misses are cached negatively
    /// (when `neg_dircache` is enabled) so repeated probes of absent names
    /// cost no RPC; the server tracks the miss and invalidates the
    /// negative entry when the name is created.
    pub(crate) fn lookup_child(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        match self.consult_dircache(st, dir.ino, name) {
            Some(Cached::Pos(v)) => return Ok(v),
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        self.lookup_child_uncached(st, dir, name)
    }

    /// The RPC half of [`Self::lookup_child`]: resolves at the dentry
    /// shard and updates the cache, without consulting it first (for
    /// callers that already did).
    pub(crate) fn lookup_child_uncached(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        let server = self.shard_of(dir.ino, dir.dist, name);
        let got = expect_reply!(
            self.call(
                server,
                Request::Lookup {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                },
            ),
            Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
        );
        match got {
            Ok(v) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, v);
                }
                Ok(v)
            }
            Err(Errno::ENOENT) => {
                self.cache_negative(st, dir.ino, name);
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    /// Resolves a component list to a directory.
    pub(crate) fn resolve_dir(&self, st: &mut ClientState, comps: &[&str]) -> FsResult<DirRef> {
        self.run_op(st, ResolveOp::new(self.root_ref(), comps))
    }

    /// Resolves `path` to `(parent directory, final name)`.
    pub(crate) fn resolve_parent<'p>(
        &self,
        st: &mut ClientState,
        path: &'p str,
    ) -> FsResult<(DirRef, &'p str)> {
        let (parents, name) = fsapi::path::split_parent(path)?;
        let dir = self.resolve_dir(st, &parents)?;
        Ok((dir, name))
    }

    /// Resolves two paths to their `(parent directory, final name)` pairs
    /// *in lockstep*: per round the two chains' frontier requests ship
    /// together and shared-prefix duplicates collapse to one. Used by
    /// `rename`, whose two resolutions are the one hot multi-path pattern.
    ///
    /// Error precedence matches sequential resolution: a failure on the
    /// first path is reported even if the second failed too.
    pub(crate) fn resolve_parent_pair<'a, 'b>(
        &self,
        st: &mut ClientState,
        a: &'a str,
        b: &'b str,
    ) -> FsResult<ParentPair<'a, 'b>> {
        let (pa, na) = fsapi::path::split_parent(a)?;
        let (pb, nb) = fsapi::path::split_parent(b)?;
        let (da, db) = self.run_op(st, PairResolveOp::new(self.root_ref(), &pa, &pb))?;
        Ok(((da, na), (db, nb)))
    }

    /// Interprets a resolved dentry as a directory to descend into.
    fn enter_dir(&self, d: CachedDentry) -> FsResult<DirRef> {
        if d.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR);
        }
        Ok(DirRef {
            ino: d.target,
            dist: d.dist && self.params.techniques.distribution,
        })
    }
}

/// The request a resolve chain has in flight.
enum Pending {
    /// Nothing outstanding.
    Idle,
    /// A chained `LookupPath` covering every remaining component.
    Chain,
    /// A single `Lookup` for the current component.
    Single,
}

/// The path-walk state machine: one directory-component cursor advanced by
/// cache hits, chained `LookupPath` exchanges, or per-component lookups.
pub(crate) struct ResolveOp<'p> {
    comps: &'p [&'p str],
    cur: DirRef,
    pos: usize,
    pending: Pending,
    /// Resolve the next component with a plain (parkable) `Lookup` before
    /// chaining again — set when a chain stopped `EAGAIN` on a directory
    /// marked for deletion.
    single_once: bool,
}

impl<'p> ResolveOp<'p> {
    /// A walk of `comps` starting at `root`.
    pub(crate) fn new(root: DirRef, comps: &'p [&'p str]) -> Self {
        ResolveOp {
            comps,
            cur: root,
            pos: 0,
            pending: Pending::Idle,
            single_once: false,
        }
    }

    /// Caches and descends into one resolved component.
    fn descend(&mut self, lib: &ClientLib, st: &mut ClientState, d: CachedDentry) -> FsResult<()> {
        if lib.params.techniques.dircache {
            st.dircache.insert(self.cur.ino, self.comps[self.pos], d);
        }
        self.cur = lib.enter_dir(d)?;
        self.pos += 1;
        Ok(())
    }

    /// Applies the reply of the previously emitted request.
    fn absorb(&mut self, lib: &ClientLib, st: &mut ClientState, reply: WireReply) -> FsResult<()> {
        match std::mem::replace(&mut self.pending, Pending::Idle) {
            Pending::Single => {
                let dir = self.cur.ino;
                let name = self.comps[self.pos];
                let got = expect_reply!(
                    reply,
                    Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
                );
                match got {
                    Ok(v) => self.descend(lib, st, v),
                    Err(Errno::ENOENT) => {
                        lib.cache_negative(st, dir, name);
                        Err(Errno::ENOENT)
                    }
                    Err(e) => Err(e),
                }
            }
            Pending::Chain => {
                let (entries, stopped) = expect_reply!(
                    reply,
                    Reply::Path { entries, stopped } => (entries, stopped)
                )?;
                debug_assert!(entries.len() <= self.comps.len() - self.pos);
                for e in entries {
                    let d = CachedDentry {
                        target: e.target,
                        ftype: e.ftype,
                        dist: e.dist,
                    };
                    // A non-directory intermediate surfaces ENOTDIR here,
                    // exactly like the sequential walk entering it would.
                    self.descend(lib, st, d)?;
                }
                match stopped {
                    None => {
                        debug_assert_eq!(self.pos, self.comps.len());
                        Ok(())
                    }
                    Some(Errno::ENOENT) => {
                        lib.cache_negative(st, self.cur.ino, self.comps[self.pos]);
                        Err(Errno::ENOENT)
                    }
                    // The chain reached a directory marked for deletion:
                    // re-ask that component as a plain lookup, which parks
                    // at the server until the rmdir commits or aborts.
                    Some(Errno::EAGAIN) => {
                        self.single_once = true;
                        Ok(())
                    }
                    Some(e) => Err(e),
                }
            }
            Pending::Idle => {
                debug_assert!(false, "reply without a pending request");
                Err(Errno::EIO)
            }
        }
    }

    /// Advances through the directory cache, then picks the next request —
    /// a chain covering the remaining components when the technique
    /// applies, a single lookup otherwise. `None` when resolution is
    /// complete (`self.cur` is the result).
    fn next_request(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
    ) -> FsResult<Option<(ServerId, Request)>> {
        while self.pos < self.comps.len() {
            let name = self.comps[self.pos];
            match lib.consult_dircache(st, self.cur.ino, name) {
                Some(Cached::Pos(d)) => {
                    self.cur = lib.enter_dir(d)?;
                    self.pos += 1;
                }
                Some(Cached::Neg) => return Err(Errno::ENOENT),
                None => break,
            }
        }
        if self.pos == self.comps.len() {
            return Ok(None);
        }
        let name = self.comps[self.pos];
        let shard = lib.shard_of(self.cur.ino, self.cur.dist, name);
        let remaining = &self.comps[self.pos..];
        // Chaining pays off once two or more uncached components remain; a
        // single component is exactly one round trip either way, and the
        // plain lookup parks correctly on deletion-marked directories.
        if lib.params.techniques.chained_resolution && remaining.len() >= 2 && !self.single_once {
            self.pending = Pending::Chain;
            return Ok(Some((
                shard,
                Request::LookupPath {
                    client: lib.params.id,
                    dir: self.cur.ino,
                    dist: self.cur.dist,
                    comps: remaining.iter().map(|c| c.to_string()).collect(),
                    acc: Vec::new(),
                    hops: 0,
                },
            )));
        }
        self.single_once = false;
        self.pending = Pending::Single;
        Ok(Some((
            shard,
            Request::Lookup {
                client: lib.params.id,
                dir: self.cur.ino,
                name: name.to_string(),
            },
        )))
    }

    /// True when the in-flight request must not travel in a batch
    /// envelope (its reply may come from a different server).
    fn pending_unbatchable(&self) -> bool {
        matches!(self.pending, Pending::Chain)
    }

    /// The `(directory, remaining components)` frontier of the in-flight
    /// request, for pair deduplication.
    fn frontier(&self) -> (InodeId, &'p [&'p str]) {
        (self.cur.ino, &self.comps[self.pos..])
    }
}

impl MultiStepOp for ResolveOp<'_> {
    type Out = DirRef;

    fn step(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<DirRef>> {
        if let Some(mut rs) = replies {
            debug_assert_eq!(rs.len(), 1);
            self.absorb(lib, st, rs.pop().ok_or(Errno::EIO)?)?;
        }
        match self.next_request(lib, st)? {
            Some((server, req)) => Ok(Next::Run(Step::Call(server, req))),
            None => Ok(Next::Done(self.cur)),
        }
    }
}

/// Two [`ResolveOp`] chains advanced in lockstep (rename's pair
/// resolution). Each round collects both chains' frontier requests,
/// collapses shared-prefix duplicates to one, and ships the round as a
/// batched/overlapped step; a chain that errors stops advancing while the
/// other finishes, and the first path's error takes precedence.
pub(crate) struct PairResolveOp<'p> {
    ops: [ResolveOp<'p>; 2],
    err: [Option<Errno>; 2],
    done: [Option<DirRef>; 2],
    /// Which chains contributed a request to the in-flight step.
    in_flight: [bool; 2],
    /// The in-flight step was deduplicated: one request answers both.
    dedup: bool,
}

impl<'p> PairResolveOp<'p> {
    /// Lockstep resolution of two component lists from `root`.
    pub(crate) fn new(root: DirRef, a: &'p [&'p str], b: &'p [&'p str]) -> Self {
        PairResolveOp {
            ops: [ResolveOp::new(root, a), ResolveOp::new(root, b)],
            err: [None, None],
            done: [None, None],
            in_flight: [false, false],
            dedup: false,
        }
    }

    /// Feeds one chain's reply, downgrading failures to per-chain errors.
    fn absorb_into(&mut self, i: usize, lib: &ClientLib, st: &mut ClientState, reply: WireReply) {
        if let Err(e) = self.ops[i].absorb(lib, st, reply) {
            self.err[i] = Some(e);
        }
    }
}

impl MultiStepOp for PairResolveOp<'_> {
    type Out = (DirRef, DirRef);

    fn step(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<(DirRef, DirRef)>> {
        if let Some(rs) = replies {
            let mut it = rs.into_iter();
            if self.dedup {
                let r = it.next().ok_or(Errno::EIO)?;
                self.absorb_into(0, lib, st, r.clone());
                self.absorb_into(1, lib, st, r);
            } else {
                for i in 0..2 {
                    if self.in_flight[i] {
                        let r = it.next().ok_or(Errno::EIO)?;
                        self.absorb_into(i, lib, st, r);
                    }
                }
            }
            self.in_flight = [false, false];
            self.dedup = false;
        }

        let mut reqs: Vec<(ServerId, Request)> = Vec::with_capacity(2);
        let mut unbatchable = false;
        for i in 0..2 {
            if self.err[i].is_some() || self.done[i].is_some() {
                continue;
            }
            match self.ops[i].next_request(lib, st) {
                Ok(Some((server, req))) => {
                    // Shared prefix: identical frontiers collapse to one
                    // request whose reply feeds both chains.
                    if self.in_flight[0] && i == 1 && frontier_matches(&self.ops[0], &self.ops[1]) {
                        self.dedup = true;
                        continue;
                    }
                    unbatchable = unbatchable || self.ops[i].pending_unbatchable();
                    reqs.push((server, req));
                    self.in_flight[i] = true;
                }
                Ok(None) => self.done[i] = Some(self.ops[i].cur),
                Err(e) => self.err[i] = Some(e),
            }
        }

        if reqs.is_empty() {
            if let Some(e) = self.err[0] {
                return Err(e);
            }
            if let Some(e) = self.err[1] {
                return Err(e);
            }
            let (a, b) = (self.done[0], self.done[1]);
            return Ok(Next::Done((a.ok_or(Errno::EIO)?, b.ok_or(Errno::EIO)?)));
        }
        Ok(Next::Run(if unbatchable {
            Step::Overlapped(reqs)
        } else {
            Step::Grouped(reqs)
        }))
    }
}

/// True when both chains ask the same question next: same directory and —
/// for a single lookup — the same first remaining component, or — for a
/// chain — the same full remainder (so one `LookupPath` answers both).
fn frontier_matches(a: &ResolveOp<'_>, b: &ResolveOp<'_>) -> bool {
    let (da, ra) = a.frontier();
    let (db, rb) = b.frontier();
    if da != db || ra.is_empty() || rb.is_empty() {
        return false;
    }
    match (&a.pending, &b.pending) {
        (Pending::Single, Pending::Single) => ra[0] == rb[0],
        (Pending::Chain, Pending::Chain) => ra == rb,
        _ => false,
    }
}
