//! Iterative pathname resolution through the directory cache.
//!
//! "Pathname lookups proceed iteratively, issuing the following RPC to each
//! directory server in turn: `lookup(dir, name) -> (server, inode)`"
//! (paper §3.6.1). Results are cached; servers invalidate stale entries.

use super::dircache::CachedDentry;
use super::{expect_reply, ClientLib, ClientState};
use crate::proto::{Reply, Request};
use crate::types::InodeId;
use fsapi::{Errno, FileType, FsResult};

/// A resolved directory: its inode plus distribution flag (needed to route
/// subsequent entry operations to the right shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirRef {
    /// Directory inode.
    pub ino: InodeId,
    /// Whether its entries are distributed over all servers.
    pub dist: bool,
}

impl ClientLib {
    /// The root directory reference.
    pub(crate) fn root_ref(&self) -> DirRef {
        DirRef {
            ino: InodeId::ROOT,
            dist: self.params.root_distributed && self.params.techniques.distribution,
        }
    }

    /// Resolves one component inside `dir`, consulting the lookup cache
    /// first (when the technique is enabled).
    pub(crate) fn lookup_child(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        if self.params.techniques.dircache {
            let (hit, drained) = st.dircache.lookup(dir.ino, name);
            self.charge(self.machine.cost.dircache_hit + drained as u64 * 50);
            if let Some(v) = hit {
                return Ok(v);
            }
        }
        let server = self.shard_of(dir.ino, dir.dist, name);
        let got = expect_reply!(
            self.call(
                server,
                Request::Lookup {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                },
            ),
            Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
        )?;
        if self.params.techniques.dircache {
            st.dircache.insert(dir.ino, name, got);
        }
        Ok(got)
    }

    /// Resolves a component list to a directory.
    pub(crate) fn resolve_dir(&self, st: &mut ClientState, comps: &[&str]) -> FsResult<DirRef> {
        let mut cur = self.root_ref();
        for comp in comps {
            let d = self.lookup_child(st, cur, comp)?;
            if d.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            cur = DirRef {
                ino: d.target,
                dist: d.dist && self.params.techniques.distribution,
            };
        }
        Ok(cur)
    }

    /// Resolves `path` to `(parent directory, final name)`.
    pub(crate) fn resolve_parent<'p>(
        &self,
        st: &mut ClientState,
        path: &'p str,
    ) -> FsResult<(DirRef, &'p str)> {
        let (parents, name) = fsapi::path::split_parent(path)?;
        let dir = self.resolve_dir(st, &parents)?;
        Ok((dir, name))
    }
}
