//! Iterative pathname resolution through the directory cache.
//!
//! "Pathname lookups proceed iteratively, issuing the following RPC to each
//! directory server in turn: `lookup(dir, name) -> (server, inode)`"
//! (paper §3.6.1). Results are cached; servers invalidate stale entries.

use super::dircache::{Cached, CachedDentry};
use super::{expect_reply, ClientLib, ClientState};
use crate::proto::{Reply, Request};
use crate::types::InodeId;
use fsapi::{Errno, FileType, FsResult};

/// A resolved directory: its inode plus distribution flag (needed to route
/// subsequent entry operations to the right shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirRef {
    /// Directory inode.
    pub ino: InodeId,
    /// Whether its entries are distributed over all servers.
    pub dist: bool,
}

impl ClientLib {
    /// The root directory reference.
    pub(crate) fn root_ref(&self) -> DirRef {
        DirRef {
            ino: InodeId::ROOT,
            dist: self.params.root_distributed && self.params.techniques.distribution,
        }
    }

    /// Consults the directory cache for `(dir, name)`, charging the hit
    /// cost plus invalidation-drain work. `None` when the cache is
    /// disabled or has no slot for the name.
    pub(crate) fn consult_dircache(
        &self,
        st: &mut ClientState,
        dir: InodeId,
        name: &str,
    ) -> Option<Cached> {
        if !self.params.techniques.dircache {
            return None;
        }
        let (hit, drained) = st.dircache.lookup(dir, name);
        self.charge(self.machine.cost.dircache_hit + drained as u64 * 50);
        hit
    }

    /// Records an ENOENT result as a negative dentry, when the technique
    /// is enabled. The single gate for every ENOENT-caching path.
    pub(crate) fn cache_negative(&self, st: &mut ClientState, dir: InodeId, name: &str) {
        if self.params.techniques.dircache && self.params.techniques.neg_dircache {
            st.dircache.insert_negative(dir, name);
        }
    }

    /// Resolves one component inside `dir`, consulting the lookup cache
    /// first (when the technique is enabled). Misses are cached negatively
    /// (when `neg_dircache` is enabled) so repeated probes of absent names
    /// cost no RPC; the server tracks the miss and invalidates the
    /// negative entry when the name is created.
    pub(crate) fn lookup_child(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        match self.consult_dircache(st, dir.ino, name) {
            Some(Cached::Pos(v)) => return Ok(v),
            Some(Cached::Neg) => return Err(Errno::ENOENT),
            None => {}
        }
        self.lookup_child_uncached(st, dir, name)
    }

    /// The RPC half of [`Self::lookup_child`]: resolves at the dentry
    /// shard and updates the cache, without consulting it first (for
    /// callers that already did).
    pub(crate) fn lookup_child_uncached(
        &self,
        st: &mut ClientState,
        dir: DirRef,
        name: &str,
    ) -> FsResult<CachedDentry> {
        let server = self.shard_of(dir.ino, dir.dist, name);
        let got = expect_reply!(
            self.call(
                server,
                Request::Lookup {
                    client: self.params.id,
                    dir: dir.ino,
                    name: name.to_string(),
                },
            ),
            Reply::Lookup { target, ftype, dist } => CachedDentry { target, ftype, dist }
        );
        match got {
            Ok(v) => {
                if self.params.techniques.dircache {
                    st.dircache.insert(dir.ino, name, v);
                }
                Ok(v)
            }
            Err(Errno::ENOENT) => {
                self.cache_negative(st, dir.ino, name);
                Err(Errno::ENOENT)
            }
            Err(e) => Err(e),
        }
    }

    /// Resolves a component list to a directory.
    pub(crate) fn resolve_dir(&self, st: &mut ClientState, comps: &[&str]) -> FsResult<DirRef> {
        let mut cur = self.root_ref();
        for comp in comps {
            let d = self.lookup_child(st, cur, comp)?;
            if d.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR);
            }
            cur = DirRef {
                ino: d.target,
                dist: d.dist && self.params.techniques.distribution,
            };
        }
        Ok(cur)
    }

    /// Resolves `path` to `(parent directory, final name)`.
    pub(crate) fn resolve_parent<'p>(
        &self,
        st: &mut ClientState,
        path: &'p str,
    ) -> FsResult<(DirRef, &'p str)> {
        let (parents, name) = fsapi::path::split_parent(path)?;
        let dir = self.resolve_dir(st, &parents)?;
        Ok((dir, name))
    }
}
