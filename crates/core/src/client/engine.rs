//! The multi-step operation engine.
//!
//! Hare composes every multi-server protocol — pathname resolution, the
//! two-path rename dance, the three-phase distributed `rmdir` — out of
//! single-server RPCs (paper §3.3).
//! Before this module each protocol hand-rolled its own driver loop; now an
//! operation is a small state machine ([`MultiStepOp`]) that *declares* one
//! transport [`Step`] at a time, and [`ClientLib::run_op`] drives it:
//! execute the step, hand the replies back, repeat until the op finishes.
//!
//! The engine owns the *transport choice* for each declared step:
//!
//! * [`Step::Call`] — one request, one server, one round trip. When the
//!   request is a [`Request::LookupPath`] chain this is still a single
//!   exchange from the client's point of view, even though the reply may
//!   come from a different server than the request went to — and with a
//!   fused [`crate::proto::TerminalOp`] riding the chain, that one
//!   exchange can carry the whole operation (resolution *plus* the final
//!   stat/open/list) end to end.
//! * [`Step::Grouped`] — independent requests; same-server runs share one
//!   batched exchange and distinct servers' exchanges overlap. Degrades to
//!   independent (overlapped or sequential) RPCs per the `batching` and
//!   `broadcast` toggles, so ablations shed exactly one mechanism at a
//!   time.
//! * [`Step::Ordered`] — a fail-fast sequence (rename's ADD_MAP + RM_MAP):
//!   consecutive same-server runs share an exchange and nothing after the
//!   first failure executes.
//! * [`Step::Overlapped`] — requests that must *not* share a batch
//!   envelope (forwardable `LookupPath` chains reply from arbitrary
//!   servers), sent back-to-back with the replies collected in order.
//!
//! Which mode a step uses is decided by the op that declares it — e.g. the
//! resolve op in `resolve.rs` emits a chained `LookupPath` call when the
//! `chained_resolution` technique is on and at least two uncached
//! components remain (fusing the terminal stat/open/list into the chain
//! when `fused_terminal` allows), and per-component `Lookup` calls
//! otherwise — so the policy reads in one place per operation instead of
//! being interleaved with transport plumbing.

use super::{ClientLib, ClientState};
use crate::proto::{Request, WireReply};
use crate::types::ServerId;
use fsapi::FsResult;

/// One transport step declared by a multi-step operation.
pub(crate) enum Step {
    /// A single request to one server.
    Call(ServerId, Request),
    /// Independent requests shipped through the batch layer: same-server
    /// runs share an exchange, distinct servers overlap.
    Grouped(Vec<(ServerId, Request)>),
    /// Ordered fail-fast sequence: consecutive same-server runs share an
    /// exchange; entries after the first failure are answered `EAGAIN`
    /// without executing.
    Ordered(Vec<(ServerId, Request)>),
    /// Back-to-back sends with in-order reply collection, no batch
    /// envelopes (for requests a batch cannot carry, like forwardable
    /// `LookupPath` chains).
    Overlapped(Vec<(ServerId, Request)>),
}

/// What a multi-step operation does next.
pub(crate) enum Next<T> {
    /// Execute this step; its replies arrive at the next
    /// [`MultiStepOp::step`] call, in request order.
    Run(Step),
    /// The operation is complete.
    Done(T),
}

/// A multi-step operation: a state machine over transport steps.
///
/// `step` is called with `None` first, then once per executed [`Step`] with
/// that step's replies (one per request, in declaration order). Returning
/// an error aborts the operation; ops that must run cleanup steps even on
/// failure (like `rmdir` releasing its serialization lock) carry the
/// outcome in their `Out` type instead of erroring mid-protocol.
pub(crate) trait MultiStepOp {
    /// The operation's result type.
    type Out;

    /// Consumes the previous step's replies and declares the next step.
    fn step(
        &mut self,
        lib: &ClientLib,
        st: &mut ClientState,
        replies: Option<Vec<WireReply>>,
    ) -> FsResult<Next<Self::Out>>;
}

impl ClientLib {
    /// Drives a multi-step operation to completion.
    pub(crate) fn run_op<O: MultiStepOp>(
        &self,
        st: &mut ClientState,
        mut op: O,
    ) -> FsResult<O::Out> {
        let mut replies = None;
        loop {
            match op.step(self, st, replies.take())? {
                Next::Done(v) => return Ok(v),
                Next::Run(step) => replies = Some(self.exec_step(step)),
            }
        }
    }

    /// Executes one transport step, returning replies in request order.
    fn exec_step(&self, step: Step) -> Vec<WireReply> {
        match step {
            Step::Call(server, req) => vec![self.call(server, req)],
            Step::Grouped(reqs) => self.call_grouped(reqs, false),
            Step::Ordered(reqs) => self.call_grouped(reqs, true),
            // Per-request RPCs with the legacy overlap rules: fan-out
            // parallelism stays gated on the broadcast technique (inside
            // `call_ungrouped`), so the ablations remain orthogonal —
            // with it off, the requests go out as sequential round trips.
            Step::Overlapped(reqs) => self.call_ungrouped(reqs, false),
        }
    }
}
