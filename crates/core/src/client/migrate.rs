//! The client half of the dynamic placement subsystem: the live-migration
//! driver and the load-aware rebalancer (see `crate::placement` for the
//! routing model and the protocol walkthrough).
//!
//! Migration is composed from single-server RPCs like every other
//! multi-server protocol in Hare: `MigrateBegin` at the source (parks the
//! shard), `MigrateInstall` at the destination, `MigrateCommit` back at
//! the source (which starts redirecting and replays parked operations).
//! The rebalancer reads every server's load counters in one grouped
//! exchange, asks [`crate::placement::plan_rebalance`] for a decision, and
//! drives the migration it returns. Everything here is a no-op with the
//! `rebalancing` technique off, so the ablation (and every pinned exchange
//! count) sees the static system.

use super::{expect_reply, ClientLib};
use crate::placement::{
    plan_rebalance, plan_rebalance_actions, LoadReport, MigrationPlan, RebalanceAction,
    RebalancePolicy, Rebalancer,
};
use crate::proto::{Reply, Request};
use crate::types::{InodeId, ServerId};
use fsapi::{Errno, FsResult};

impl ClientLib {
    /// Reads every server's load counters (total operations served plus
    /// hottest directories) in one grouped exchange. With `reset`, the
    /// counters restart so successive probes cover disjoint windows.
    pub fn server_loads(&self, reset: bool) -> FsResult<Vec<LoadReport>> {
        let reqs: Vec<(ServerId, Request)> = (0..self.servers.len() as ServerId)
            .map(|s| (s, Request::LoadReport { reset }))
            .collect();
        let mut out = Vec::with_capacity(reqs.len());
        for (server, r) in self.call_grouped(reqs, false).into_iter().enumerate() {
            let (ops, hot_dirs) =
                expect_reply!(r, Reply::Load { ops, hot_dirs } => (ops, hot_dirs))?;
            out.push(LoadReport {
                server: server as ServerId,
                ops,
                hot_dirs,
            });
        }
        Ok(out)
    }

    /// Migrates the dentry shard of the **centralized** directory at
    /// `path` to server `to`. Returns `Ok(false)` without touching
    /// anything when the `rebalancing` technique is off or the directory
    /// already lives at `to`; errors if the path is not a centralized
    /// directory (distributed directories have no single shard to move)
    /// or the migration loses to a concurrent removal.
    pub fn migrate_dir(&self, path: &str, to: ServerId) -> FsResult<bool> {
        if !self.params.techniques.rebalancing {
            return Ok(false);
        }
        self.syscall();
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;
        let dir = self.resolve_dir(&mut st, &comps)?;
        drop(st);
        if dir.ino == InodeId::ROOT {
            return Err(Errno::EBUSY);
        }
        if dir.dist {
            return Err(Errno::EINVAL);
        }
        self.drive_migration(dir.ino, to)
    }

    /// One rebalancing pass: probe every server's load, nominate the hot
    /// server's dominant directories, and drive the first migratable one
    /// to the least-loaded server. Returns the migration performed, if
    /// any. No-op (`Ok(None)`) with the `rebalancing` technique off, when
    /// the load is balanced, or when no candidate turns out migratable —
    /// a hot-but-unmigratable directory (distributed, concurrently
    /// removed, or racing an rmdir) is skipped, not allowed to mask a
    /// migratable runner-up.
    pub fn rebalance_once(&self, policy: &RebalancePolicy) -> FsResult<Option<MigrationPlan>> {
        if !self.params.techniques.rebalancing {
            return Ok(None);
        }
        let reports = self.server_loads(true)?;
        for plan in plan_rebalance(&reports, policy) {
            match self.drive_migration(plan.dir, plan.to) {
                Ok(true) => return Ok(Some(plan)),
                // Not migratable after all (the source refused:
                // distributed or already gone; EAGAIN: lost a race with an
                // rmdir or another migration) — try the next candidate.
                Ok(false) | Err(Errno::EINVAL) | Err(Errno::ENOENT) | Err(Errno::ENOTDIR)
                | Err(Errno::EAGAIN) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// One tick of the **background** rebalancer: the cadence-driven
    /// sibling of [`ClientLib::rebalance_once`]. Call it periodically
    /// from whatever loop owns the virtual clock (a trace replay's window
    /// boundaries, a bench's inter-burst points); the [`Rebalancer`]
    /// decides whether this tick probes at all (cadence), and whether a
    /// nomination has been confirmed by enough consecutive probes to act
    /// on (hysteresis) — so calling it too often is harmless and a single
    /// skewed probe never triggers an action. The planner classifies each
    /// confirmed hot directory by its write share: read-mostly ones gain
    /// a read **replica** on the coolest server, churny ones **migrate**
    /// wholesale. Returns the action performed, if any; `Ok(None)` covers
    /// every quiet case, and the whole tick is a no-op with the
    /// `rebalancing` technique off. With `replication` off (but
    /// `rebalancing` on) the tick runs the migrate-only planner, exactly
    /// the pre-replication dynamic system.
    pub fn rebalance_tick(&self, reb: &mut Rebalancer) -> FsResult<Option<RebalanceAction>> {
        if !self.params.techniques.rebalancing || !reb.due(self.vnow()) {
            return Ok(None);
        }
        let reports = self.server_loads(true)?;
        if !self.params.techniques.replication {
            let nominated = plan_rebalance(&reports, reb.policy());
            for plan in reb.observe(self.vnow(), &nominated) {
                match self.drive_migration(plan.dir, plan.to) {
                    Ok(true) => {
                        reb.committed(self.vnow());
                        return Ok(Some(RebalanceAction::Migrate(plan)));
                    }
                    // Same skip set as `rebalance_once`: an unmigratable
                    // candidate must not mask a migratable runner-up.
                    Ok(false) | Err(Errno::EINVAL) | Err(Errno::ENOENT) | Err(Errno::ENOTDIR)
                    | Err(Errno::EAGAIN) => {}
                    Err(e) => return Err(e),
                }
            }
            return Ok(None);
        }
        let nominated = {
            let routing = self.routing.lock();
            plan_rebalance_actions(&reports, reb.policy(), &routing)
        };
        for action in reb.observe_actions(self.vnow(), &nominated) {
            let done = match &action {
                RebalanceAction::Migrate(p) => self.drive_migration(p.dir, p.to),
                RebalanceAction::Replicate(p) => self.drive_replication(p.dir, p.to),
            };
            match done {
                Ok(true) => {
                    reb.committed(self.vnow());
                    return Ok(Some(action));
                }
                // Same skip set as `rebalance_once`: an unactionable
                // candidate must not mask an actionable runner-up.
                Ok(false) | Err(Errno::EINVAL) | Err(Errno::ENOENT) | Err(Errno::ENOTDIR)
                | Err(Errno::EAGAIN) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Drives one migration of `dir`'s shard to `to`, following `NotOwner`
    /// redirects to find the current source. Returns whether a migration
    /// actually happened (`Ok(false)` when the shard already lives at
    /// `to`).
    pub(crate) fn drive_migration(&self, dir: InodeId, to: ServerId) -> FsResult<bool> {
        if (to as usize) >= self.servers.len() {
            return Err(Errno::EINVAL);
        }
        for _ in 0..self.servers.len() + 2 {
            let from = self.dir_home_of(dir);
            if from == to {
                return Ok(false);
            }
            match self.call(from, Request::MigrateBegin { dir }) {
                Ok(Reply::NotOwner {
                    dir: d,
                    epoch,
                    owner,
                }) => {
                    if !self.learn_owner(d, owner, epoch) {
                        return Err(Errno::EIO);
                    }
                }
                Ok(Reply::MigrateSnapshot { epoch, entries }) => {
                    let epoch = epoch + 1;
                    match self.call(
                        to,
                        Request::MigrateInstall {
                            dir,
                            epoch,
                            entries,
                        },
                    ) {
                        Ok(Reply::Unit) => {
                            self.call_unit(from, Request::MigrateCommit { dir, epoch, to })?;
                            self.learn_owner(dir, to, epoch);
                            return Ok(true);
                        }
                        other => {
                            // Unwind: clear the source's migrating mark so
                            // the parked operations replay against the
                            // unchanged shard.
                            let _ = self.call(from, Request::MigrateAbort { dir });
                            return match other {
                                Ok(_) => Err(Errno::EIO),
                                Err(e) => Err(e),
                            };
                        }
                    }
                }
                Ok(other) => {
                    debug_assert!(false, "protocol mismatch: {other:?}");
                    return Err(Errno::EIO);
                }
                Err(e) => return Err(e),
            }
        }
        Err(Errno::EIO)
    }

    /// Grows a read **replica** of the centralized directory at `path`
    /// on server `to` (the manual sibling of the planner's
    /// [`crate::placement::RebalanceAction::Replicate`]). Returns
    /// `Ok(false)` without touching anything when the `replication`
    /// technique is off, `to` is the directory's home, or this client
    /// already knows `to` holds a copy; errors mirror
    /// [`ClientLib::migrate_dir`].
    pub fn replicate_dir(&self, path: &str, to: ServerId) -> FsResult<bool> {
        if !self.params.techniques.replication {
            return Ok(false);
        }
        self.syscall();
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;
        let dir = self.resolve_dir(&mut st, &comps)?;
        drop(st);
        if dir.ino == InodeId::ROOT {
            return Err(Errno::EBUSY);
        }
        if dir.dist {
            return Err(Errno::EINVAL);
        }
        self.drive_replication(dir.ino, to)
    }

    /// Drives one replica installation of `dir`'s entries onto `to`,
    /// following `NotOwner` redirects to find the current home. The same
    /// two-exchange shape as [`ClientLib::drive_migration`] minus the
    /// commit: `ReplicaExport` at the home registers `to` in the read set
    /// (bumping the epoch — the snapshot already carries the *new* epoch,
    /// so unlike a migration there is nothing to bump here) and
    /// `ReplicaInstall` lands the copy. An install failure unwinds with a
    /// `ReplicaDrop` at the home so the read set never names a server
    /// that refused the copy. On success this client adopts the
    /// advertisement; other processes learn it only if the workload
    /// spreads it (see [`ClientLib::adopt_replicas`]).
    pub(crate) fn drive_replication(&self, dir: InodeId, to: ServerId) -> FsResult<bool> {
        if !self.params.techniques.replication {
            return Ok(false);
        }
        if (to as usize) >= self.servers.len() {
            return Err(Errno::EINVAL);
        }
        for _ in 0..self.servers.len() + 2 {
            let home = self.dir_home_of(dir);
            if home == to {
                return Ok(false);
            }
            if self
                .routing
                .lock()
                .replicas_of(dir)
                .is_some_and(|r| r.servers.contains(&to))
            {
                return Ok(false);
            }
            match self.call(home, Request::ReplicaExport { dir, replica: to }) {
                Ok(Reply::NotOwner {
                    dir: d,
                    epoch,
                    owner,
                }) => {
                    if !self.learn_owner(d, owner, epoch) {
                        return Err(Errno::EIO);
                    }
                }
                Ok(Reply::MigrateSnapshot { epoch, entries }) => {
                    match self.call(
                        to,
                        Request::ReplicaInstall {
                            dir,
                            home,
                            epoch,
                            entries,
                        },
                    ) {
                        Ok(Reply::Unit) => {
                            // Adopt locally: the union with the known set
                            // covers replicas another driver added that
                            // this export's reply does not enumerate; a
                            // member dropped since merely costs one
                            // replica-aware NotOwner on first use.
                            let mut routing = self.routing.lock();
                            let mut set: Vec<ServerId> = routing
                                .replicas_of(dir)
                                .map(|r| r.servers.clone())
                                .unwrap_or_default();
                            if !set.contains(&to) {
                                set.push(to);
                            }
                            routing.learn_replicas(dir, set, epoch);
                            return Ok(true);
                        }
                        other => {
                            // Unwind: unregister the copy that never
                            // landed, so readers are not routed at it.
                            let _ = self.call(home, Request::ReplicaDrop { dir, replica: to });
                            return match other {
                                Ok(_) => Err(Errno::EIO),
                                Err(e) => Err(e),
                            };
                        }
                    }
                }
                Ok(other) => {
                    debug_assert!(false, "protocol mismatch: {other:?}");
                    return Err(Errno::EIO);
                }
                Err(e) => return Err(e),
            }
        }
        Err(Errno::EIO)
    }

    /// Resolves `path` and reports the directory's inode id (the key for
    /// [`ClientLib::adopt_replicas`]/[`ClientLib::replica_advert`], so a
    /// workload can spread replica knowledge between its processes).
    pub fn dir_inode(&self, path: &str) -> FsResult<InodeId> {
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;
        let dir = self.resolve_dir(&mut st, &comps)?;
        drop(st);
        Ok(dir.ino)
    }

    /// Test/diagnostic hook: number of directories this client believes
    /// have a live replica set.
    pub fn routing_replica_dirs(&self) -> usize {
        self.routing.lock().replica_dirs()
    }

    /// Resolves `path` and reports the server currently holding its
    /// dentry-shard home (diagnostics for examples and tests; for a
    /// migrated centralized directory this is the override owner).
    pub fn dir_owner(&self, path: &str) -> FsResult<ServerId> {
        let mut st = self.state.lock();
        let comps = fsapi::path::components(path)?;
        let dir = self.resolve_dir(&mut st, &comps)?;
        drop(st);
        Ok(self.dir_home_of(dir.ino))
    }

    /// Test/diagnostic hook: number of placement overrides this client has
    /// learned.
    pub fn routing_overrides(&self) -> usize {
        self.routing.lock().len()
    }
}
